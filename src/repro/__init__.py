"""IOCov reproduction: input/output coverage for file-system testing.

Reproduces "Input and Output Coverage Needed in File System Testing"
(Liu et al., HotStorage '23).  Public entry points:

* :class:`repro.core.IOCov` — the analyzer: traces in, coverage out.
* :mod:`repro.vfs` — the in-memory POSIX file system the simulated
  testers run against.
* :mod:`repro.trace` — trace capture and parsing (LTTng text, strace,
  syzkaller logs).
* :mod:`repro.testsuites` — CrashMonkey- and xfstests-style workload
  generators.
* :mod:`repro.bugstudy` — the Section 2 bug-study dataset and
  analytics.
* :mod:`repro.kernelsim` — the instrumented kernel-FS model used to
  demonstrate the code-coverage blind spot.
"""

__version__ = "1.0.0"
