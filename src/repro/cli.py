"""Command-line interface: IOCov as a tool, not just a library.

Subcommands:

* ``analyze`` — compute input/output coverage of a trace file
  (LTTng text, strace, or syzkaller format) and print or dump it.
* ``compare`` — side-by-side coverage of two trace files.
* ``suites`` — run the simulated CrashMonkey/xfstests and report
  coverage (the paper's evaluation in one command).
* ``bugstudy`` — print the Section 2 bug-study table.
* ``difftest`` — run the coverage-guided differential tester against
  the built-in faulty kernel model.
* ``replay`` — replay a trace against a fresh VFS.
* ``lint`` — static consistency checks over the syscall spec and the
  VFS implementation (no trace needed).
* ``predict`` — static upper bound on the input partitions each
  built-in suite can reach, optionally checked against a live run.
* ``serve`` — the long-running coverage observability daemon: HTTP
  trace ingest, live snapshots, Prometheus ``/metrics``, durable runs.
* ``convert`` — re-encode a text trace as a compact binary ``.rbt``
  file (parsed once at conversion; analyzed at decode speed forever).
* ``push`` — stream a trace file to a running daemon (text or binary,
  optionally gzipped on the wire).
* ``history`` — the stored-run timeline from a run store.
* ``diff-runs`` — cross-run regression gate (lost partitions, TCD
  drift, count collapses) between two stored runs.

Exit codes are uniform across subcommands: 0 = clean, 1 = findings
(coverage gaps, lint errors, divergences, unexposed bugs, coverage
regressions), 2 = usage or internal error.  Every subcommand accepts
``--json``; the output is a single object carrying ``command``,
``status``, and ``exit_code`` alongside the subcommand's payload.

Examples::

    python -m repro analyze --format strace capture.log --mount /mnt/test
    python -m repro analyze trace.lttng.txt --json > coverage.json
    python -m repro analyze trace.lttng.txt --jobs 0 --store runs.sqlite
    python -m repro compare a.lttng.txt b.lttng.txt --syscall open --arg flags
    python -m repro suites --suite crashmonkey --scale 1.0 --seed 7
    python -m repro bugstudy
    python -m repro difftest --rounds 6
    python -m repro lint --json
    python -m repro predict --suite xfstests --compare --scale 0.002
    python -m repro serve --port 9177 --mount /mnt/test --store runs.sqlite
    python -m repro convert trace.lttng.txt trace.rbt
    python -m repro analyze trace.rbt --json
    python -m repro push trace.lttng.txt --url 127.0.0.1:9177 --finalize
    python -m repro push trace.rbt --format binary --gzip
    python -m repro history --store runs.sqlite
    python -m repro diff-runs latest~1 latest --store runs.sqlite
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from repro.core import IOCov, SuiteComparison
from repro.core.report import CoverageReport

#: Uniform exit codes (see module docstring).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Text trace formats (what parsers, workers, and the daemon accept).
_TEXT_FORMATS = ("lttng", "strace", "syzkaller")

_FORMAT_READERS = {
    "lttng": "consume_lttng_file",
    "strace": "consume_strace_file",
    "syzkaller": "consume_syzkaller_file",
    "rbt": "consume_rbt_file",
}


def _guess_format(path: str) -> str:
    lowered = path.lower()
    if lowered.endswith(".rbt"):
        return "rbt"
    try:
        from repro.trace.binary import MAGIC

        with open(path, "rb") as handle:
            if handle.read(len(MAGIC)) == MAGIC:
                return "rbt"
    except OSError:
        pass
    if lowered.endswith((".syz", ".syzkaller")):
        return "syzkaller"
    if "strace" in lowered:
        return "strace"
    return "lttng"


def _load_report(
    path: str, fmt: str | None, mount: str | None, name: str
) -> tuple[CoverageReport, dict | None]:
    """Serial analysis of one trace; returns (report, parse stats)."""
    fmt = fmt or _guess_format(path)
    iocov = IOCov(mount_point=mount, suite_name=name)
    getattr(iocov, _FORMAT_READERS[fmt])(path)
    return iocov.report(), iocov.parse_stats


def _emit_json(command: str, exit_code: int, payload: dict) -> int:
    """Print the uniform JSON envelope: payload keys stay top-level."""
    status = {EXIT_CLEAN: "clean", EXIT_FINDINGS: "findings"}.get(exit_code, "error")
    document = dict(payload)
    document["command"] = command
    document["status"] = status
    document["exit_code"] = exit_code
    print(json.dumps(document, indent=2, default=str))
    return exit_code


# -- subcommand handlers --------------------------------------------------------


def _warn_degraded_jobs(requested: int | None, stats: dict) -> None:
    """Tell the user when an explicit ``--jobs N`` silently degraded.

    The bench history shows ``shards: 1`` at ``--jobs 4`` with no
    user-visible signal; this puts the reason on stderr.  Auto mode
    (``--jobs 0``) adapts by design, so only explicit requests warn.
    """
    if not requested or requested < 2:
        return
    reason = stats.get("degrade_reason")
    if reason is None:
        return
    effective = stats.get("jobs_effective")
    shards = stats.get("shards")
    detail = {
        "cpu_clamp": f"only {effective} CPU(s) available",
        "small_file": "the trace is too small to split",
        "min_shard_events": "too few events to amortize the worker pool",
    }.get(reason, reason)
    print(
        f"repro analyze: --jobs {requested} degraded to "
        f"{shards} shard(s): {detail}",
        file=sys.stderr,
    )


def cmd_analyze(args: argparse.Namespace) -> int:
    name = args.name or args.trace
    fmt = args.format or _guess_format(args.trace)
    shard_stats: dict = {}
    parse_stats: dict | None = None
    started = time.monotonic()
    if args.jobs is not None and fmt != "rbt":
        from repro.parallel import run_sharded

        report = run_sharded(
            args.trace,
            fmt=fmt,
            jobs=args.jobs or None,  # 0 = auto (one worker per CPU)
            mount_point=args.mount,
            suite_name=name,
            stats=shard_stats,
        )
        parse_stats = shard_stats.get("parse")
        _warn_degraded_jobs(args.jobs, shard_stats)
    else:
        # Binary traces decode so fast that sharding has nothing to
        # win; --jobs is accepted but the serial reader runs.
        report, parse_stats = _load_report(args.trace, fmt, args.mount, name)
    wall_seconds = time.monotonic() - started
    run_id = None
    if args.store:
        from repro.obs.store import open_store

        with open_store(args.store) as store:
            run_id = store.save_report(
                report,
                trace_path=args.trace,
                trace_format=fmt,
                jobs=args.jobs,
                wall_seconds=wall_seconds,
                meta=shard_stats or None,
            )
    if args.json:
        payload = report.to_dict()
        if parse_stats is not None:
            payload["parse"] = parse_stats
        if shard_stats:
            # How the parallel run actually executed — requested vs
            # effective workers, pool warm/cold state, and why the
            # topology degraded, if it did.
            payload["jobs"] = {
                "requested": shard_stats.get("jobs_requested"),
                "effective": shard_stats.get("jobs_effective"),
                "shards": shard_stats.get("shards"),
                "pool": shard_stats.get("pool"),
                "pool_skipped": shard_stats.get("pool_skipped"),
                "sequential_fallback": shard_stats.get("sequential_fallback"),
                "degrade_reason": shard_stats.get("degrade_reason"),
            }
        if args.suggest:
            from repro.core.suggestions import suggest_tests

            payload["suggestions"] = [
                {
                    "syscall": s.syscall,
                    "partition": s.partition,
                    "priority": s.priority,
                    "gain": round(s.gain, 6),
                    "recipe": s.recipe,
                }
                for s in suggest_tests(report, limit=args.suggest)
            ]
        if run_id is not None:
            payload["run_id"] = run_id
            payload["store"] = args.store
        return _emit_json("analyze", EXIT_CLEAN, payload)
    print(report.render_text())
    if args.syscall:
        print()
        if args.arg:
            print(report.render_frequency_table("input", args.syscall, args.arg))
        print()
        print(report.render_frequency_table("output", args.syscall))
    if args.suggest:
        from repro.core.suggestions import render_suggestions

        print()
        print(render_suggestions(report, limit=args.suggest))
    if run_id is not None:
        print(f"\nstored as run {run_id} in {args.store}")
    return EXIT_CLEAN


def cmd_compare(args: argparse.Namespace) -> int:
    report_a, _ = _load_report(args.trace_a, args.format, args.mount, args.trace_a)
    report_b, _ = _load_report(args.trace_b, args.format, args.mount, args.trace_b)
    comparison = SuiteComparison(report_a, report_b)
    syscall = args.syscall or "open"
    only_a, only_b = comparison.only_covered_by(syscall, args.arg or "flags")
    if args.json:
        return _emit_json(
            "compare",
            EXIT_CLEAN,
            {
                "suite_a": report_a.suite_name,
                "suite_b": report_b.suite_name,
                "syscall": syscall,
                "arg": args.arg or "flags",
                "only_a": only_a,
                "only_b": only_b,
            },
        )
    if args.arg:
        print(comparison.render_text(syscall, args.arg))
    print()
    print(comparison.render_text(syscall))
    print(f"\nonly {report_a.suite_name}: {only_a or 'none'}")
    print(f"only {report_b.suite_name}: {only_b or 'none'}")
    return EXIT_CLEAN


def cmd_suites(args: argparse.Namespace) -> int:
    from repro.testsuites import CrashMonkeySuite, SuiteRunner, XfstestsSuite

    reports = []  # (label, scale, event_count, report)
    if args.suite == "fuzzer":
        from repro.testsuites.fuzzer import CoverageGuidedFuzzer

        fuzzer = CoverageGuidedFuzzer(seed=args.seed or 0)
        fuzzer.run(iterations=args.iterations)
        report = (
            IOCov(mount_point=fuzzer.mount_point, suite_name="fuzzer")
            .consume(fuzzer.all_events)
            .report()
        )
        reports.append(("fuzzer", None, len(fuzzer.all_events), report))
    else:
        runs = []
        if args.suite in ("crashmonkey", "both"):
            runs.append(("CrashMonkey", CrashMonkeySuite, args.scale if args.scale is not None else 1.0))
        if args.suite in ("xfstests", "both"):
            runs.append(("xfstests", XfstestsSuite, args.scale if args.scale is not None else 0.01))
        for label, suite_cls, scale in runs:
            run = SuiteRunner(suite_cls(scale=scale, seed=args.seed)).run()
            report = (
                IOCov(mount_point=run.mount_point, suite_name=label)
                .consume(run.events)
                .report()
            )
            reports.append((label, scale, run.event_count(), report))
    stored = []
    if args.store:
        from repro.obs.store import open_store

        with open_store(args.store) as store:
            for label, scale, _events, report in reports:
                stored.append(
                    store.save_report(
                        report,
                        trace_format="simulated",
                        seed=args.seed,
                        meta={"scale": scale} if scale is not None else None,
                    )
                )
    payload_runs = []
    for index, (label, scale, events, report) in enumerate(reports):
        if args.json:
            entry = {
                "suite": label,
                "scale": scale,
                "seed": args.seed,
                "events": events,
                "coverage": report.to_dict(),
            }
            if stored:
                entry["run_id"] = stored[index]
            payload_runs.append(entry)
        else:
            scale_note = f", scale {scale}" if scale is not None else ""
            seed_note = f", seed {args.seed}" if args.seed is not None else ""
            print(f"{label}: {events:,} events{scale_note}{seed_note}")
            print(report.render_text())
            if stored:
                print(f"stored as run {stored[index]} in {args.store}")
            print()
    if args.json:
        return _emit_json("suites", EXIT_CLEAN, {"runs": payload_runs})
    return EXIT_CLEAN


def cmd_bugstudy(args: argparse.Namespace) -> int:
    from repro.bugstudy import BugStudy

    study = BugStudy()
    deviations = study.verify_paper_statistics()
    exit_code = EXIT_FINDINGS if deviations else EXIT_CLEAN
    if args.json:
        return _emit_json(
            "bugstudy",
            exit_code,
            {
                "statistics": [
                    {
                        "name": stat.name,
                        "count": stat.count,
                        "total": stat.total,
                        "percent": stat.percent,
                        "paper_percent": stat.paper_percent,
                    }
                    for stat in study.statistics()
                ],
                "deviations": deviations,
            },
        )
    print(study.render_text())
    if deviations:
        print(f"DEVIATIONS from the paper: {deviations}")
        return exit_code
    print("\nall aggregates match the paper.")
    return exit_code


def cmd_difftest(args: argparse.Namespace) -> int:
    from repro.difftest import DifferentialTester, make_faulty, make_reference
    from repro.vfs.filesystem import FileSystem

    reference = make_reference(FileSystem(total_blocks=4096))
    under_test = make_faulty(FileSystem(total_blocks=4096))
    tester = DifferentialTester(reference, under_test)
    report = tester.run(rounds=args.rounds, max_ops_per_round=args.ops)
    exposed = sorted({bug_id for bug_id, _ in under_test.corruptions_applied})
    exit_code = EXIT_CLEAN if report.found_bugs else EXIT_FINDINGS
    if args.json:
        return _emit_json(
            "difftest",
            exit_code,
            {
                "found_bugs": report.found_bugs,
                "divergences": [d.describe() for d in report.divergences],
                "exposed": exposed,
            },
        )
    print(report.render_text())
    print(f"\ninjected bugs exposed: {exposed}")
    return exit_code


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.trace.lttng import LttngParser
    from repro.trace.replay import TraceReplayer
    from repro.trace.strace import StraceParser
    from repro.trace.syzkaller import SyzkallerParser
    from repro.vfs.filesystem import FileSystem
    from repro.vfs.syscalls import SyscallInterface

    fmt = args.format or _guess_format(args.trace)
    if fmt == "rbt":
        from repro.trace.binary import read_rbt_events

        events = read_rbt_events(args.trace)
    else:
        parser = {
            "lttng": LttngParser(),
            "strace": StraceParser(),
            "syzkaller": SyzkallerParser(),
        }[fmt]
        events = parser.parse_file(args.trace)
    target = SyscallInterface(FileSystem(total_blocks=args.blocks))
    report = TraceReplayer(target).replay(events)
    exit_code = EXIT_CLEAN if report.faithful else EXIT_FINDINGS
    if args.json:
        return _emit_json(
            "replay",
            exit_code,
            {
                "faithful": report.faithful,
                "replayed": report.replayed,
                "skipped": report.skipped,
                "divergences": [d.describe() for d in report.divergences],
            },
        )
    print(report.render_text())
    return exit_code


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint_registry
    from repro.analysis.reachability import analyze_repo

    if args.concurrency:
        return _cmd_lint_concurrency(args)
    speclint = lint_registry()
    reachability = analyze_repo()
    exit_code = max(speclint.exit_code(), reachability.exit_code())
    if args.json:
        return _emit_json(
            "lint",
            exit_code,
            {
                "errors": len(speclint.errors) + len(reachability.errors),
                "warnings": len(speclint.warnings) + len(reachability.warnings),
                "reports": {
                    "speclint": speclint.to_dict(),
                    "reachability": reachability.to_dict(),
                },
            },
        )
    print(speclint.render_text())
    print()
    print(reachability.render_text())
    return exit_code


def _cmd_lint_concurrency(args: argparse.Namespace) -> int:
    from repro.analysis.concurrency import DEFAULT_BASELINE, analyze_concurrency

    baseline = args.baseline
    if baseline is None and os.path.isfile(DEFAULT_BASELINE):
        baseline = DEFAULT_BASELINE
    try:
        report = analyze_concurrency(targets=args.path or None, baseline=baseline)
    except (FileNotFoundError, OSError, ValueError) as exc:
        if args.json:
            return _emit_json("lint", EXIT_ERROR, {"error": str(exc)})
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    exit_code = report.exit_code()
    if args.json:
        return _emit_json(
            "lint",
            exit_code,
            {
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "reports": {"concurrency": report.to_dict()},
            },
        )
    print(report.render_text())
    return exit_code


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.analysis.predict import (
        StaticPredictor,
        compare_with_dynamic,
        report_from_predictions,
    )

    suites = (
        ("crashmonkey", "xfstests") if args.suite == "both" else (args.suite,)
    )
    predictor = StaticPredictor()
    preds = [predictor.predict(name) for name in suites]
    report = report_from_predictions(preds)
    comparisons = []
    if args.compare:
        from repro.testsuites import CrashMonkeySuite, SuiteRunner, XfstestsSuite

        suite_classes = {"crashmonkey": CrashMonkeySuite, "xfstests": XfstestsSuite}
        default_scales = {"crashmonkey": 1.0, "xfstests": 0.01}
        for prediction in preds:
            scale = args.scale if args.scale is not None else default_scales[prediction.suite]
            suite = suite_classes[prediction.suite](scale=scale)
            run = SuiteRunner(suite).run()
            coverage = IOCov(
                mount_point=run.mount_point, suite_name=prediction.suite
            ).consume(run.events)
            comparison = compare_with_dynamic(prediction, coverage.input)
            comparisons.append(comparison)
            report.findings.extend(comparison.findings)
    exit_code = report.exit_code()
    if args.json:
        return _emit_json(
            "predict",
            exit_code,
            {
                "predictions": [p.to_dict() for p in preds],
                "comparisons": [c.to_dict() for c in comparisons],
                "errors": len(report.errors),
                "warnings": len(report.warnings),
            },
        )
    print(report.render_text())
    for prediction in preds:
        print()
        print(f"{prediction.suite}: {prediction.call_sites} syscall sites")
        for (base, arg), keys in sorted(prediction.partitions.items()):
            bound = "unbounded" if (base, arg) in prediction.unbounded else "bounded"
            print(f"  {base}.{arg}: {len(keys)} partitions predicted ({bound})")
    for comparison in comparisons:
        print()
        print(comparison.render_text())
    return exit_code


def _default_store() -> str:
    return os.environ.get("IOCOV_STORE", "iocov-runs.sqlite")


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.server import StoreLockError, make_server

    try:
        server, recovered = make_server(
            args.host,
            args.port,
            fmt=args.format,
            mount_point=args.mount,
            suite_name=args.name,
            store_path=args.store,
            queue_size=args.queue_size,
            error_budget=args.error_budget,
            backend=args.backend,
            journal_batch=args.journal_batch,
            workers=args.workers,
            tenant=args.tenant,
            project=args.project,
            analysis_workers=args.analysis_workers,
        )
    except StoreLockError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return EXIT_ERROR
    server.install_signal_handlers()
    host, port = server.server_address[:2]
    if recovered:
        print(f"recovered {recovered} journaled lines", file=sys.stderr)
    # Readiness line carries the *actual* bound port (supports --port 0).
    print(f"serving on http://{host}:{port} (format={args.format})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.drain_and_stop()
    finally:
        server.server_close()
    return EXIT_CLEAN


def cmd_convert(args: argparse.Namespace) -> int:
    from repro.trace.binary import convert_file

    fmt = args.format or _guess_format(args.trace)
    if fmt == "rbt":
        print(f"repro convert: {args.trace} is already a .rbt trace", file=sys.stderr)
        return EXIT_ERROR
    info = convert_file(
        args.trace, args.output, fmt, frame_events=args.frame_events
    )
    if args.json:
        payload = dict(info)
        payload["output"] = args.output
        return _emit_json("convert", EXIT_CLEAN, payload)
    src_bytes = os.path.getsize(args.trace)
    dst_bytes = os.path.getsize(args.output)
    ratio = src_bytes / dst_bytes if dst_bytes else 0.0
    stats = info.get("parse_stats") or {}
    print(
        f"converted {args.trace} ({fmt}) -> {args.output}: "
        f"{info['events']:,} events in {info['frames']} frames, "
        f"{src_bytes:,} -> {dst_bytes:,} bytes ({ratio:.1f}x smaller)"
    )
    dropped = stats.get("skipped_lines", 0)
    if dropped:
        print(f"note: {dropped} input lines were skipped (recorded in header)")
    return EXIT_CLEAN


def cmd_push(args: argparse.Namespace) -> int:
    from repro.obs.client import PushError, push_file

    try:
        result = push_file(
            args.url,
            args.trace,
            finalize=args.finalize,
            transport=args.transport,
            gzip_body=args.gzip,
            timeout=args.timeout,
            tenant=args.tenant,
            project=args.project,
            retries=args.retries,
        )
    except ValueError as exc:
        print(f"push: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as exc:
        print(f"push failed: {exc}", file=sys.stderr)
        if args.json:
            return _emit_json("push", EXIT_ERROR, {"error": str(exc)})
        return EXIT_ERROR
    except PushError as exc:
        if args.json:
            return _emit_json(
                "push", EXIT_ERROR, {"error": str(exc), "http_status": exc.status}
            )
        print(f"push rejected: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        return _emit_json("push", EXIT_CLEAN, result)
    print(
        f"pushed {args.trace}: {result.get('accepted_bytes', '?')} bytes, "
        f"{result.get('events_counted', '?')} events counted, "
        f"{result.get('new_parse_errors', 0)} new parse errors"
    )
    run = result.get("run")
    if run:
        print(f"stored as run {run['run_id']}")
    return EXIT_CLEAN


def cmd_history(args: argparse.Namespace) -> int:
    from repro.obs.regress import render_history
    from repro.obs.store import open_store

    with open_store(args.store or _default_store()) as store:
        if args.json:
            runs = [
                record.to_dict()
                for record in store.list_runs(
                    limit=args.limit, tenant=args.tenant,
                    project=args.project, campaign=args.campaign,
                )
            ]
            return _emit_json("history", EXIT_CLEAN, {"runs": runs})
        print(
            render_history(
                store, limit=args.limit,
                tenant=args.tenant, project=args.project,
                campaign=args.campaign,
            )
        )
    return EXIT_CLEAN


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignError,
        CampaignRunner,
        default_stop_conditions,
    )

    stop_conditions = default_stop_conditions(
        rounds=args.rounds,
        plateau_rounds=args.plateau_rounds,
        min_delta=args.min_delta,
        max_seconds=args.max_seconds,
    )
    store_cm = None
    if args.store:
        from repro.obs.store import open_store

        store_cm = open_store(args.store)
    try:
        runner = CampaignRunner(
            seed=args.seed,
            iterations=args.iterations,
            campaign=args.campaign,
            stop_conditions=stop_conditions,
            store=store_cm,
            tenant=args.tenant or "default",
            project=args.project or "default",
            serve_url=args.serve_url,
            jobs=args.jobs,
            boost=args.boost,
            mount_point=args.mount,
            trace_dir=args.trace_dir,
        )
        result = runner.run()
    except CampaignError as exc:
        if args.json:
            return _emit_json("campaign", EXIT_ERROR, {"error": str(exc)})
        print(f"campaign: {exc}", file=sys.stderr)
        return EXIT_ERROR
    finally:
        if store_cm is not None:
            store_cm.close()
    exit_code = EXIT_CLEAN if result.improved() else EXIT_FINDINGS
    if args.json:
        payload = result.to_dict()
        if args.store:
            payload["store"] = args.store
        return _emit_json("campaign", exit_code, payload)
    print(
        f"campaign {result.campaign}: {len(result.rounds)} rounds "
        f"(seed {result.seed}, {result.iterations} iterations/round), "
        f"stopped: {result.stop_reason}"
    )
    print(f"{'round':>5} {'events':>8} {'corpus':>7} {'tcd':>10} "
          f"{'delta':>9} {'new in':>7} {'new out':>8}")
    for entry in result.rounds:
        print(
            f"{entry.index:>5} {entry.events:>8,} {entry.corpus_size:>7} "
            f"{entry.tcd:>10.4f} {entry.tcd_delta:>9.4f} "
            f"{len(entry.new_input_partitions):>7} "
            f"{len(entry.new_output_partitions):>8}"
        )
    new_in, new_out = result.new_partitions_after_baseline()
    print(
        f"TCD {result.baseline_tcd:.4f} -> {result.final_tcd:.4f}; "
        f"{len(new_in)} input / {len(new_out)} output partitions newly "
        f"covered beyond the round-0 baseline"
    )
    if args.store:
        ids = [e.run_id for e in result.rounds if e.run_id is not None]
        if ids:
            print(f"rounds stored as runs {ids[0]}..{ids[-1]} in {args.store}")
    if not result.improved():
        print("no improvement over the baseline (exit 1)")
    return exit_code


def cmd_diff_runs(args: argparse.Namespace) -> int:
    from repro.obs.regress import diff_stored_runs
    from repro.obs.store import open_store

    with open_store(args.store or _default_store()) as store:
        report, id_a, id_b = diff_stored_runs(
            store,
            args.run_a,
            args.run_b,
            tcd_threshold=args.tcd_threshold,
            collapse_factor=args.collapse_factor,
            tenant=args.tenant,
            project=args.project,
        )
    exit_code = report.exit_code()
    if args.json:
        payload = report.to_dict()
        payload["run_a"] = id_a
        payload["run_b"] = id_b
        return _emit_json("diff-runs", exit_code, payload)
    print(f"comparing run {id_a} -> run {id_b}")
    print(report.render_text())
    return exit_code


def cmd_migrate_store(args: argparse.Namespace) -> int:
    from repro.obs.sharded import migrate_single_to_sharded

    try:
        summary = migrate_single_to_sharded(
            args.source, args.dest, journal_batch=args.journal_batch
        )
    except FileExistsError as exc:
        print(f"migrate-store: {exc}", file=sys.stderr)
        return EXIT_ERROR
    total_runs = sum(summary["runs"].values())
    total_journal = sum(summary["journal_records"].values())
    if args.json:
        payload = dict(summary)
        payload["source"] = args.source
        payload["dest"] = args.dest
        return _emit_json("migrate-store", EXIT_CLEAN, payload)
    print(
        f"migrated {args.source} -> {args.dest}: {total_runs} runs, "
        f"{total_journal} journal records, "
        f"{len(summary['runs']) or 1} namespace(s)"
    )
    for namespace, count in sorted(summary["runs"].items()):
        print(f"  {namespace}: {count} runs")
    return EXIT_CLEAN


# -- parser -----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IOCov: input/output coverage for file-system testing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="coverage of one trace file")
    analyze.add_argument("trace", help="trace file path")
    analyze.add_argument("--format", choices=sorted(_FORMAT_READERS))
    analyze.add_argument("--mount", help="tester mount point (scoping filter)")
    analyze.add_argument("--name", help="suite label for the report")
    analyze.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="analyze with N parallel shard workers (results are "
        "bit-identical to the serial path); 0 = one per CPU",
    )
    analyze.add_argument("--json", action="store_true", help="dump JSON")
    analyze.add_argument("--syscall", help="print one syscall's tables")
    analyze.add_argument("--arg", help="input argument for --syscall")
    analyze.add_argument(
        "--suggest",
        type=int,
        nargs="?",
        const=15,
        default=0,
        help="print up to N concrete test suggestions for the gaps "
        "(with --json, included as a 'suggestions' list)",
    )
    analyze.add_argument(
        "--store",
        metavar="DB",
        help="persist the run into this SQLite run store",
    )
    analyze.set_defaults(handler=cmd_analyze)

    compare = sub.add_parser("compare", help="coverage of two trace files")
    compare.add_argument("trace_a")
    compare.add_argument("trace_b")
    compare.add_argument("--format", choices=sorted(_FORMAT_READERS))
    compare.add_argument("--mount")
    compare.add_argument("--syscall", default="open")
    compare.add_argument("--arg", default="flags")
    compare.add_argument("--json", action="store_true", help="dump JSON")
    compare.set_defaults(handler=cmd_compare)

    suites = sub.add_parser("suites", help="run the simulated testers")
    suites.add_argument(
        "--suite",
        choices=("crashmonkey", "xfstests", "both", "fuzzer"),
        default="both",
    )
    suites.add_argument("--scale", type=float, default=None)
    suites.add_argument(
        "--seed",
        type=int,
        default=None,
        help="deterministic RNG seed for the suite generators / fuzzer",
    )
    suites.add_argument(
        "--iterations",
        type=int,
        default=200,
        help="fuzzer iterations (only with --suite fuzzer)",
    )
    suites.add_argument(
        "--store",
        metavar="DB",
        help="persist each suite run into this SQLite run store",
    )
    suites.add_argument("--json", action="store_true", help="dump JSON")
    suites.set_defaults(handler=cmd_suites)

    bugstudy = sub.add_parser("bugstudy", help="the Section 2 table")
    bugstudy.add_argument("--json", action="store_true", help="dump JSON")
    bugstudy.set_defaults(handler=cmd_bugstudy)

    difftest = sub.add_parser("difftest", help="coverage-guided differential run")
    difftest.add_argument("--rounds", type=int, default=8)
    difftest.add_argument("--ops", type=int, default=80)
    difftest.add_argument("--json", action="store_true", help="dump JSON")
    difftest.set_defaults(handler=cmd_difftest)

    replay = sub.add_parser("replay", help="replay a trace against a fresh VFS")
    replay.add_argument("trace")
    replay.add_argument("--format", choices=sorted(_FORMAT_READERS))
    replay.add_argument(
        "--blocks", type=int, default=262144, help="target device size in 4K blocks"
    )
    replay.add_argument("--json", action="store_true", help="dump JSON")
    replay.set_defaults(handler=cmd_replay)

    lint = sub.add_parser(
        "lint", help="static spec/implementation consistency checks"
    )
    lint.add_argument("--json", action="store_true", help="dump JSON")
    lint.add_argument(
        "--concurrency",
        action="store_true",
        help="run the static concurrency pass (lock-order, guarded "
        "fields, blocking-under-lock) instead of the spec linters",
    )
    lint.add_argument(
        "--path",
        action="append",
        metavar="TARGET",
        help="with --concurrency: analyze this path (relative to the "
        "repro package; a directory, a .py file, or '.' for the whole "
        "package); repeatable, default is the concurrent subsystems",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="with --concurrency: baseline JSON of accepted findings "
        f"(default: {'.concurrency-baseline.json'} when present)",
    )
    lint.set_defaults(handler=cmd_lint)

    predict = sub.add_parser(
        "predict", help="static upper bound on per-suite input partitions"
    )
    predict.add_argument(
        "--suite", choices=("crashmonkey", "xfstests", "both"), default="both"
    )
    predict.add_argument(
        "--compare",
        action="store_true",
        help="also run the suite(s) and check the traced coverage is a "
        "subset of the prediction",
    )
    predict.add_argument(
        "--scale", type=float, default=None, help="suite scale for --compare"
    )
    predict.add_argument("--json", action="store_true", help="dump JSON")
    predict.set_defaults(handler=cmd_predict)

    serve = sub.add_parser(
        "serve", help="run the coverage observability daemon"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=9177,
        help="listen port (0 = pick a free port; printed on startup)",
    )
    serve.add_argument(
        "--format",
        choices=sorted(_TEXT_FORMATS),
        default="lttng",
        help="text trace format pushed to /ingest (binary .rbt bodies "
        "are self-describing and accepted regardless)",
    )
    serve.add_argument("--mount", help="tester mount point (scoping filter)")
    serve.add_argument("--name", default="live", help="suite label for /live")
    serve.add_argument(
        "--store",
        metavar="PATH",
        help="run store for POST /runs snapshots, the crash journal, "
        "and GET /runs: a .sqlite file (single backend) or a directory "
        "(sharded backend); omitted = in-memory only",
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "single", "sharded"),
        default="auto",
        help="store backend (auto: directories are sharded, files are "
        "single-file SQLite)",
    )
    serve.add_argument(
        "--journal-batch",
        type=int,
        default=None,
        metavar="N",
        help="sharded-journal group-commit size: records per fsync",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=8,
        help="HTTP worker-pool size (concurrent request handlers)",
    )
    serve.add_argument(
        "--tenant",
        default="default",
        help="default namespace tenant for unprefixed routes",
    )
    serve.add_argument(
        "--project",
        default="default",
        help="default namespace project for unprefixed routes",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=None,
        help="bounded ingest queue depth (backpressure threshold)",
    )
    serve.add_argument(
        "--error-budget",
        type=float,
        default=None,
        help="max malformed-line fraction before the session degrades",
    )
    serve.add_argument(
        "--analysis-workers",
        type=int,
        default=None,
        metavar="N",
        help="offload trace parsing to N persistent worker processes "
        "(namespace→worker affinity preserves per-session ordering); "
        "omitted = parse in-process",
    )
    serve.set_defaults(handler=cmd_serve)

    convert = sub.add_parser(
        "convert", help="convert a text trace to the binary .rbt format"
    )
    convert.add_argument("trace", help="text trace file path")
    convert.add_argument("output", help="output .rbt path")
    convert.add_argument(
        "--format",
        choices=sorted(_TEXT_FORMATS),
        help="input trace format (default: guessed from the path)",
    )
    convert.add_argument(
        "--frame-events",
        type=int,
        default=8192,
        metavar="N",
        help="events per .rbt frame (streaming granularity)",
    )
    convert.add_argument("--json", action="store_true", help="dump JSON")
    convert.set_defaults(handler=cmd_convert)

    push = sub.add_parser("push", help="stream a trace file to a daemon")
    push.add_argument("trace", help="trace file path")
    push.add_argument(
        "--url",
        default="127.0.0.1:9177",
        help="daemon address (host:port or http://host:port)",
    )
    push.add_argument(
        "--finalize",
        action="store_true",
        help="snapshot the live coverage into the daemon's run store",
    )
    push.add_argument(
        "--format",
        dest="transport",
        choices=("auto", "text", "binary"),
        default="auto",
        help="wire format: binary requires a .rbt file (see `repro "
        "convert`); auto sniffs the file's magic",
    )
    push.add_argument(
        "--gzip",
        action="store_true",
        help="gzip the request body (Content-Encoding: gzip)",
    )
    push.add_argument(
        "--tenant", default=None, help="namespace tenant to push into"
    )
    push.add_argument(
        "--project", default=None, help="namespace project to push into"
    )
    push.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-request timeout in seconds",
    )
    push.add_argument(
        "--retries",
        type=int,
        default=3,
        help="transparent retries of connect failures and 503 answers "
        "(exponential backoff with jitter)",
    )
    push.add_argument("--json", action="store_true", help="dump JSON")
    push.set_defaults(handler=cmd_push)

    history = sub.add_parser("history", help="stored-run timeline")
    history.add_argument(
        "--store", default=None, help="run store path (default: $IOCOV_STORE)"
    )
    history.add_argument("--limit", type=int, default=20)
    history.add_argument(
        "--tenant", default=None, help="only runs from this tenant"
    )
    history.add_argument(
        "--project", default=None, help="only runs from this project"
    )
    history.add_argument(
        "--campaign",
        default=None,
        help="only rounds of this campaign (matches the campaign meta "
        "tag `repro campaign` writes)",
    )
    history.add_argument("--json", action="store_true", help="dump JSON")
    history.set_defaults(handler=cmd_history)

    campaign = sub.add_parser(
        "campaign",
        help="run a coverage-guided feedback campaign "
        "(generate → trace → analyze → re-weight until TCD plateaus)",
    )
    campaign.add_argument(
        "--seed",
        type=int,
        default=0,
        help="master seed; the whole campaign (rounds, weights, JSON "
        "envelope) is deterministic under it",
    )
    campaign.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="weighted-round budget (round 0, the unbiased baseline, "
        "is free)",
    )
    campaign.add_argument(
        "--iterations",
        type=int,
        default=200,
        help="fuzzer executions per round",
    )
    campaign.add_argument(
        "--plateau-rounds",
        type=int,
        default=2,
        metavar="K",
        help="stop after K consecutive rounds below --min-delta",
    )
    campaign.add_argument(
        "--min-delta",
        type=float,
        default=1e-3,
        help="TCD improvement under this counts toward the plateau",
    )
    campaign.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock budget for the whole campaign",
    )
    campaign.add_argument(
        "--boost",
        type=float,
        default=8.0,
        help="mutation-weight boost on targeted untested partitions",
    )
    campaign.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="analyze round traces with N shard workers (0 = auto)",
    )
    campaign.add_argument(
        "--campaign",
        default=None,
        metavar="NAME",
        help="campaign id for store/history grouping (default: "
        "derived from the seed)",
    )
    campaign.add_argument(
        "--store",
        metavar="DB",
        help="persist each round into this run store (file or sharded "
        "directory)",
    )
    campaign.add_argument(
        "--serve-url",
        default=None,
        help="also push each round's trace to this obs daemon "
        "(host:port; runs the campaign as a long-lived obs job)",
    )
    campaign.add_argument(
        "--tenant", default=None, help="store/daemon namespace tenant"
    )
    campaign.add_argument(
        "--project", default=None, help="store/daemon namespace project"
    )
    campaign.add_argument(
        "--mount",
        default="/mnt/fuzz",
        help="mount point the generated programs run under",
    )
    campaign.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="keep per-round trace files here (default: a temp dir)",
    )
    campaign.add_argument("--json", action="store_true", help="dump JSON")
    campaign.set_defaults(handler=cmd_campaign)

    diff_runs = sub.add_parser(
        "diff-runs", help="cross-run coverage regression gate"
    )
    diff_runs.add_argument(
        "run_a", help="baseline run: an id, 'latest', or 'latest~N'"
    )
    diff_runs.add_argument("run_b", help="candidate run (same forms)")
    diff_runs.add_argument(
        "--store", default=None, help="run store path (default: $IOCOV_STORE)"
    )
    diff_runs.add_argument(
        "--tcd-threshold",
        type=float,
        default=0.5,
        help="TCD drift beyond this is a regression",
    )
    diff_runs.add_argument(
        "--collapse-factor",
        type=float,
        default=100.0,
        help="normalized count drop by this factor is a collapse warning",
    )
    diff_runs.add_argument(
        "--tenant", default=None, help="resolve refs inside this tenant"
    )
    diff_runs.add_argument(
        "--project", default=None, help="resolve refs inside this project"
    )
    diff_runs.add_argument("--json", action="store_true", help="dump JSON")
    diff_runs.set_defaults(handler=cmd_diff_runs)

    migrate = sub.add_parser(
        "migrate-store",
        help="copy a single-file run store into a sharded directory",
    )
    migrate.add_argument("source", help="existing .sqlite store file")
    migrate.add_argument("dest", help="destination sharded store directory")
    migrate.add_argument(
        "--journal-batch",
        type=int,
        default=64,
        metavar="N",
        help="group-commit size for the destination's journals",
    )
    migrate.add_argument("--json", action="store_true", help="dump JSON")
    migrate.set_defaults(handler=cmd_migrate_store)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits 0 for --help and 2 for usage errors; keep the
        # convention but always *return* so callers get an int.
        return exc.code if isinstance(exc.code, int) else EXIT_ERROR
    try:
        return args.handler(args)
    except BrokenPipeError:
        raise
    except Exception as exc:  # internal error -> 2, message on stderr
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
