"""Command-line interface: IOCov as a tool, not just a library.

Subcommands:

* ``analyze`` — compute input/output coverage of a trace file
  (LTTng text, strace, or syzkaller format) and print or dump it.
* ``compare`` — side-by-side coverage of two trace files.
* ``suites`` — run the simulated CrashMonkey/xfstests and report
  coverage (the paper's evaluation in one command).
* ``bugstudy`` — print the Section 2 bug-study table.
* ``difftest`` — run the coverage-guided differential tester against
  the built-in faulty kernel model.

Examples::

    python -m repro analyze --format strace capture.log --mount /mnt/test
    python -m repro analyze trace.lttng.txt --json > coverage.json
    python -m repro compare a.lttng.txt b.lttng.txt --syscall open --arg flags
    python -m repro suites --suite crashmonkey --scale 1.0
    python -m repro bugstudy
    python -m repro difftest --rounds 6
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core import IOCov, SuiteComparison
from repro.core.report import CoverageReport

_FORMAT_READERS = {
    "lttng": "consume_lttng_file",
    "strace": "consume_strace_file",
    "syzkaller": "consume_syzkaller_file",
}


def _guess_format(path: str) -> str:
    lowered = path.lower()
    if lowered.endswith((".syz", ".syzkaller")):
        return "syzkaller"
    if "strace" in lowered:
        return "strace"
    return "lttng"


def _load_report(path: str, fmt: str | None, mount: str | None, name: str) -> CoverageReport:
    fmt = fmt or _guess_format(path)
    iocov = IOCov(mount_point=mount, suite_name=name)
    getattr(iocov, _FORMAT_READERS[fmt])(path)
    return iocov.report()


# -- subcommand handlers --------------------------------------------------------


def cmd_analyze(args: argparse.Namespace) -> int:
    report = _load_report(args.trace, args.format, args.mount, args.name or args.trace)
    if args.json:
        print(report.to_json())
        return 0
    print(report.render_text())
    if args.syscall:
        print()
        if args.arg:
            print(report.render_frequency_table("input", args.syscall, args.arg))
        print()
        print(report.render_frequency_table("output", args.syscall))
    if args.suggest:
        from repro.core.suggestions import render_suggestions

        print()
        print(render_suggestions(report, limit=args.suggest))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    report_a = _load_report(args.trace_a, args.format, args.mount, args.trace_a)
    report_b = _load_report(args.trace_b, args.format, args.mount, args.trace_b)
    comparison = SuiteComparison(report_a, report_b)
    syscall = args.syscall or "open"
    if args.arg:
        print(comparison.render_text(syscall, args.arg))
    print()
    print(comparison.render_text(syscall))
    only_a, only_b = comparison.only_covered_by(syscall, args.arg or "flags")
    print(f"\nonly {report_a.suite_name}: {only_a or 'none'}")
    print(f"only {report_b.suite_name}: {only_b or 'none'}")
    return 0


def cmd_suites(args: argparse.Namespace) -> int:
    from repro.testsuites import CrashMonkeySuite, SuiteRunner, XfstestsSuite

    if args.suite in ("crashmonkey", "both"):
        scale = args.scale if args.scale is not None else 1.0
        run = SuiteRunner(CrashMonkeySuite(scale=scale)).run()
        report = (
            IOCov(mount_point=run.mount_point, suite_name="CrashMonkey")
            .consume(run.events)
            .report()
        )
        print(f"CrashMonkey: {run.event_count():,} events, scale {scale}")
        print(report.render_text())
        print()
    if args.suite in ("xfstests", "both"):
        scale = args.scale if args.scale is not None else 0.01
        run = SuiteRunner(XfstestsSuite(scale=scale)).run()
        report = (
            IOCov(mount_point=run.mount_point, suite_name="xfstests")
            .consume(run.events)
            .report()
        )
        print(f"xfstests: {run.event_count():,} events, scale {scale}")
        print(report.render_text())
    return 0


def cmd_bugstudy(args: argparse.Namespace) -> int:
    from repro.bugstudy import BugStudy

    study = BugStudy()
    print(study.render_text())
    deviations = study.verify_paper_statistics()
    if deviations:
        print(f"DEVIATIONS from the paper: {deviations}")
        return 1
    print("\nall aggregates match the paper.")
    return 0


def cmd_difftest(args: argparse.Namespace) -> int:
    from repro.difftest import DifferentialTester, make_faulty, make_reference
    from repro.vfs.filesystem import FileSystem

    reference = make_reference(FileSystem(total_blocks=4096))
    under_test = make_faulty(FileSystem(total_blocks=4096))
    tester = DifferentialTester(reference, under_test)
    report = tester.run(rounds=args.rounds, max_ops_per_round=args.ops)
    print(report.render_text())
    exposed = sorted({bug_id for bug_id, _ in under_test.corruptions_applied})
    print(f"\ninjected bugs exposed: {exposed}")
    return 0 if report.found_bugs else 1


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.trace.lttng import LttngParser
    from repro.trace.replay import TraceReplayer
    from repro.trace.strace import StraceParser
    from repro.trace.syzkaller import SyzkallerParser
    from repro.vfs.filesystem import FileSystem
    from repro.vfs.syscalls import SyscallInterface

    fmt = args.format or _guess_format(args.trace)
    parser = {
        "lttng": LttngParser(),
        "strace": StraceParser(),
        "syzkaller": SyzkallerParser(),
    }[fmt]
    events = parser.parse_file(args.trace)
    target = SyscallInterface(FileSystem(total_blocks=args.blocks))
    report = TraceReplayer(target).replay(events)
    print(report.render_text())
    return 0 if report.faithful else 1


# -- parser -----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IOCov: input/output coverage for file-system testing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="coverage of one trace file")
    analyze.add_argument("trace", help="trace file path")
    analyze.add_argument("--format", choices=sorted(_FORMAT_READERS))
    analyze.add_argument("--mount", help="tester mount point (scoping filter)")
    analyze.add_argument("--name", help="suite label for the report")
    analyze.add_argument("--json", action="store_true", help="dump JSON")
    analyze.add_argument("--syscall", help="print one syscall's tables")
    analyze.add_argument("--arg", help="input argument for --syscall")
    analyze.add_argument(
        "--suggest",
        type=int,
        nargs="?",
        const=15,
        default=0,
        help="print up to N concrete test suggestions for the gaps",
    )
    analyze.set_defaults(handler=cmd_analyze)

    compare = sub.add_parser("compare", help="coverage of two trace files")
    compare.add_argument("trace_a")
    compare.add_argument("trace_b")
    compare.add_argument("--format", choices=sorted(_FORMAT_READERS))
    compare.add_argument("--mount")
    compare.add_argument("--syscall", default="open")
    compare.add_argument("--arg", default="flags")
    compare.set_defaults(handler=cmd_compare)

    suites = sub.add_parser("suites", help="run the simulated testers")
    suites.add_argument(
        "--suite", choices=("crashmonkey", "xfstests", "both"), default="both"
    )
    suites.add_argument("--scale", type=float, default=None)
    suites.set_defaults(handler=cmd_suites)

    bugstudy = sub.add_parser("bugstudy", help="the Section 2 table")
    bugstudy.set_defaults(handler=cmd_bugstudy)

    difftest = sub.add_parser("difftest", help="coverage-guided differential run")
    difftest.add_argument("--rounds", type=int, default=8)
    difftest.add_argument("--ops", type=int, default=80)
    difftest.set_defaults(handler=cmd_difftest)

    replay = sub.add_parser("replay", help="replay a trace against a fresh VFS")
    replay.add_argument("trace")
    replay.add_argument("--format", choices=sorted(_FORMAT_READERS))
    replay.add_argument(
        "--blocks", type=int, default=262144, help="target device size in 4K blocks"
    )
    replay.set_defaults(handler=cmd_replay)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
