"""The instrumented kernel-FS model: covered code vs triggered bugs.

This is the substrate for reproducing Section 2's central observation.
It models the kernel-side implementation of the traced syscalls as a
set of named functions with explicit line/branch structure, collects
Gcov-style coverage while a test suite runs, and evaluates the injected
bug catalogue's triggers on every call.

The model attaches to a live :class:`~repro.vfs.syscalls.SyscallInterface`
as a tracepoint listener: every syscall event drives the corresponding
modeled kernel path.  A test suite therefore *covers* these functions'
lines merely by invoking the syscalls — but each bug *triggers* only
on its specific boundary input, so high code coverage coexists with
undetected bugs, exactly as the bug study found (53% of bugs lived in
covered lines yet were missed).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.kernelsim.bugs import BUG_CATALOGUE, BugReport, InjectedBug
from repro.kernelsim.coverage import CodeCoverage, FunctionSpec
from repro.trace.events import SyscallEvent
from repro.vfs import constants
from repro.vfs.fd import OpenFileDescription
from repro.vfs.inode import FileInode
from repro.vfs.syscalls import SyscallInterface

#: The modeled kernel source: functions, line counts, branches.
KERNEL_FUNCTIONS: list[FunctionSpec] = [
    FunctionSpec("ext4_find_entry", "fs/ext4/namei.c", 9, ("found",)),
    FunctionSpec("ext4_file_open", "fs/ext4/file.c", 14, ("creat", "trunc")),
    FunctionSpec("ext4_file_read_iter", "fs/ext4/file.c", 10, ("past_eof",)),
    FunctionSpec("ext4_get_branch", "fs/ext4/indirect.c", 8, ("depth",)),
    FunctionSpec("ext4_file_write_iter", "fs/ext4/file.c", 16, ("append", "clamp")),
    FunctionSpec("btrfs_buffered_write", "fs/btrfs/file.c", 10, ("nowait",)),
    FunctionSpec("ext4_truncate", "fs/ext4/inode.c", 10, ("grow",)),
    FunctionSpec("ext4_xattr_ibody_set", "fs/ext4/xattr.c", 9, ("space",)),
    FunctionSpec("ext4_xattr_get", "fs/ext4/xattr.c", 7, ("found",)),
    FunctionSpec("ext4_setattr", "fs/ext4/inode.c", 6, ()),
    FunctionSpec("ext4_llseek", "fs/ext4/file.c", 8, ("seek_data",)),
    FunctionSpec("ext4_mkdir", "fs/ext4/namei.c", 8, ("nospace",)),
    FunctionSpec("ext4_fc_replay_scan", "fs/ext4/fast_commit.c", 12, ("tail",)),
]

_OPEN_FAMILY = frozenset({"open", "openat", "openat2", "creat"})
_READ_FAMILY = frozenset({"read", "pread64", "readv"})
_WRITE_FAMILY = frozenset({"write", "pwrite64", "writev"})
_TRUNC_FAMILY = frozenset({"truncate", "ftruncate"})
_SETX_FAMILY = frozenset({"setxattr", "lsetxattr", "fsetxattr"})
_GETX_FAMILY = frozenset({"getxattr", "lgetxattr", "fgetxattr"})
_CHMOD_FAMILY = frozenset({"chmod", "fchmod", "fchmodat"})
_MKDIR_FAMILY = frozenset({"mkdir", "mkdirat"})
_SYNC_FAMILY = frozenset({"fsync", "fdatasync"})


class InstrumentedKernel:
    """Coverage collector + bug oracle attached to a syscall interface.

    Args:
        interface: the live syscall interface to observe.
        enabled_bugs: bug ids to inject (default: the whole catalogue).
    """

    def __init__(
        self,
        interface: SyscallInterface,
        enabled_bugs: list[str] | None = None,
    ) -> None:
        self.interface = interface
        self.cov = CodeCoverage()
        self.cov.register_all(KERNEL_FUNCTIONS)
        ids = list(BUG_CATALOGUE) if enabled_bugs is None else enabled_bugs
        self.bugs: dict[str, InjectedBug] = {
            bug_id: BUG_CATALOGUE[bug_id] for bug_id in ids
        }
        self.reports: list[BugReport] = []
        interface.subscribe(self.on_event)

    def detach(self) -> None:
        self.interface.unsubscribe(self.on_event)

    # -- state probes -----------------------------------------------------------

    def _fd_state(self, fd: Any) -> dict[str, Any]:
        """Best-effort view of the file behind *fd* (size, open flags)."""
        state: dict[str, Any] = {"free_ratio": self._free_ratio()}
        if not isinstance(fd, int):
            return state
        table = self.interface.process.fd_table
        if fd not in table:
            return state
        ofd: OpenFileDescription = table.get(fd)
        state["open_flags"] = ofd.flags
        if isinstance(ofd.inode, FileInode):
            state["file_size"] = ofd.inode.size
        return state

    def _path_state(self, path: Any) -> dict[str, Any]:
        state: dict[str, Any] = {"free_ratio": self._free_ratio()}
        if isinstance(path, str):
            try:
                inode = self.interface.fs.lookup(path)
            except Exception:
                return state
            if isinstance(inode, FileInode):
                state["file_size"] = inode.size
        return state

    def _free_ratio(self) -> float:
        device = self.interface.fs.device
        return device.free_blocks / device.total_blocks if device.total_blocks else 0.0

    # -- bug oracle -----------------------------------------------------------

    def _check_bugs(
        self, function: str, event: SyscallEvent, state: Mapping[str, Any]
    ) -> None:
        for bug in self.bugs.values():
            if bug.function != function:
                continue
            if bug.trigger(event.args, state):
                self.reports.append(
                    BugReport(bug_id=bug.bug_id, syscall=event.name, detail=bug.effect)
                )

    def triggered_bug_ids(self) -> set[str]:
        return {report.bug_id for report in self.reports}

    def missed_covered_bugs(self) -> list[InjectedBug]:
        """Bugs whose host function is covered but never triggered —
        the study's "covered yet missed" class."""
        triggered = self.triggered_bug_ids()
        return [
            bug
            for bug in self.bugs.values()
            if bug.bug_id not in triggered and self.cov.function_covered(bug.function)
        ]

    # -- modeled kernel paths ------------------------------------------------

    def on_event(self, event: SyscallEvent) -> None:
        """Tracepoint entry: route the event to its modeled kernel path."""
        name = event.name
        if name in _OPEN_FAMILY:
            self._k_open(event)
        elif name in _READ_FAMILY:
            self._k_read(event)
        elif name in _WRITE_FAMILY:
            self._k_write(event)
        elif name in _TRUNC_FAMILY:
            self._k_truncate(event)
        elif name in _SETX_FAMILY:
            self._k_setxattr(event)
        elif name in _GETX_FAMILY:
            self._k_getxattr(event)
        elif name in _CHMOD_FAMILY:
            self._k_chmod(event)
        elif name in _MKDIR_FAMILY:
            self._k_mkdir(event)
        elif name == "lseek":
            self._k_lseek(event)
        elif name in _SYNC_FAMILY:
            self._k_fsync(event)

    def _k_open(self, event: SyscallEvent) -> None:
        cov = self.cov
        path = event.arg("pathname")
        cov.lines("ext4_find_entry", 1, 4)
        cov.branch("ext4_find_entry", "found", event.ok)
        if event.ok:
            cov.lines("ext4_find_entry", 5, 7)
        else:
            cov.lines("ext4_find_entry", 8, 9)

        cov.lines("ext4_file_open", 1, 5)
        flags = event.arg("flags", 0) or 0
        creating = bool(flags & constants.O_CREAT)
        cov.branch("ext4_file_open", "creat", creating)
        if creating:
            cov.lines("ext4_file_open", 6, 8)
        truncating = bool(flags & constants.O_TRUNC)
        cov.branch("ext4_file_open", "trunc", truncating)
        if truncating:
            cov.lines("ext4_file_open", 9, 10)
        cov.lines("ext4_file_open", 11, 14)
        state = self._path_state(path)
        state["open_flags"] = flags
        self._check_bugs("ext4_file_open", event, state)

    def _k_read(self, event: SyscallEvent) -> None:
        cov = self.cov
        cov.lines("ext4_file_read_iter", 1, 6)
        state = self._fd_state(event.arg("fd"))
        pos = event.arg("pos")
        past_eof = (
            isinstance(pos, int)
            and isinstance(state.get("file_size"), int)
            and pos > state["file_size"]
        )
        cov.branch("ext4_file_read_iter", "past_eof", past_eof)
        if past_eof:
            cov.lines("ext4_file_read_iter", 7, 8)
            # past-EOF reads walk the block-mapping tree
            cov.lines("ext4_get_branch", 1, 5)
            cov.branch("ext4_get_branch", "depth", True)
            cov.lines("ext4_get_branch", 6, 8)
            self._check_bugs("ext4_get_branch", event, state)
        else:
            cov.lines("ext4_get_branch", 1, 5)
            cov.branch("ext4_get_branch", "depth", False)
        cov.lines("ext4_file_read_iter", 9, 10)
        self._check_bugs("ext4_file_read_iter", event, state)

    def _k_write(self, event: SyscallEvent) -> None:
        cov = self.cov
        cov.lines("ext4_file_write_iter", 1, 7)
        state = self._fd_state(event.arg("fd"))
        flags = state.get("open_flags", 0)
        appending = bool(flags & constants.O_APPEND)
        cov.branch("ext4_file_write_iter", "append", appending)
        if appending:
            cov.lines("ext4_file_write_iter", 8, 9)
        count = event.arg("count", 0) or 0
        clamped = isinstance(count, int) and count >= constants.MAX_RW_COUNT
        cov.branch("ext4_file_write_iter", "clamp", clamped)
        if clamped:
            cov.lines("ext4_file_write_iter", 10, 11)
        cov.lines("ext4_file_write_iter", 12, 16)
        self._check_bugs("ext4_file_write_iter", event, state)

        cov.lines("btrfs_buffered_write", 1, 6)
        nowait = bool(flags & constants.O_NONBLOCK)
        cov.branch("btrfs_buffered_write", "nowait", nowait)
        if nowait:
            cov.lines("btrfs_buffered_write", 7, 8)
        cov.lines("btrfs_buffered_write", 9, 10)
        self._check_bugs("btrfs_buffered_write", event, state)

    def _k_truncate(self, event: SyscallEvent) -> None:
        cov = self.cov
        cov.lines("ext4_truncate", 1, 5)
        target = event.arg("length", 0) or 0
        key = event.arg("pathname") if "pathname" in event.args else event.arg("path")
        state = (
            self._path_state(key)
            if isinstance(key, str)
            else self._fd_state(event.arg("fd"))
        )
        growing = isinstance(target, int) and target > state.get("file_size", 0)
        cov.branch("ext4_truncate", "grow", growing)
        cov.lines("ext4_truncate", 6 if growing else 8, 7 if growing else 10)
        self._check_bugs("ext4_truncate", event, state)

    def _k_setxattr(self, event: SyscallEvent) -> None:
        cov = self.cov
        cov.lines("ext4_xattr_ibody_set", 1, 4)
        # The (buggy) space check: the fixed kernel tests remaining
        # xattr room; the modeled source always executes the check line.
        state = self._path_state(event.arg("pathname"))
        has_room = event.ok
        cov.branch("ext4_xattr_ibody_set", "space", has_room)
        cov.lines("ext4_xattr_ibody_set", 5, 7 if has_room else 9)
        self._check_bugs("ext4_xattr_ibody_set", event, state)

    def _k_getxattr(self, event: SyscallEvent) -> None:
        cov = self.cov
        cov.lines("ext4_xattr_get", 1, 4)
        cov.branch("ext4_xattr_get", "found", event.ok)
        cov.lines("ext4_xattr_get", 5, 6 if event.ok else 7)
        self._check_bugs("ext4_xattr_get", event, self._path_state(event.arg("pathname")))

    def _k_chmod(self, event: SyscallEvent) -> None:
        self.cov.lines("ext4_setattr", 1, 6)
        self._check_bugs("ext4_setattr", event, {})

    def _k_mkdir(self, event: SyscallEvent) -> None:
        cov = self.cov
        cov.lines("ext4_mkdir", 1, 5)
        nospace = event.errno != 0 and event.retval == -28  # -ENOSPC
        cov.branch("ext4_mkdir", "nospace", nospace)
        cov.lines("ext4_mkdir", 6, 7 if not nospace else 8)
        self._check_bugs("ext4_mkdir", event, {})

    def _k_lseek(self, event: SyscallEvent) -> None:
        cov = self.cov
        cov.lines("ext4_llseek", 1, 4)
        whence = event.arg("whence", 0)
        is_data_hole = whence in (constants.SEEK_DATA, constants.SEEK_HOLE)
        cov.branch("ext4_llseek", "seek_data", is_data_hole)
        cov.lines("ext4_llseek", 5, 6 if is_data_hole else 8)
        self._check_bugs("ext4_llseek", event, self._fd_state(event.arg("fd")))

    def _k_fsync(self, event: SyscallEvent) -> None:
        cov = self.cov
        state = self._fd_state(event.arg("fd"))
        cov.lines("ext4_fc_replay_scan", 1, 6)
        length = state.get("file_size", 0)
        tail = (
            isinstance(length, int)
            and length > 0
            and length % constants.DEFAULT_BLOCK_SIZE
            == constants.DEFAULT_BLOCK_SIZE - 8
        )
        cov.branch("ext4_fc_replay_scan", "tail", tail)
        cov.lines("ext4_fc_replay_scan", 7, 9 if tail else 12)
        self._check_bugs(
            "ext4_fc_replay_scan",
            event,
            state | {"length": length},
        )
