"""Injectable kernel-FS bugs modeled on the paper's cited real bugs.

Each :class:`InjectedBug` lives inside one modeled kernel function
(:mod:`repro.kernelsim.instrumented`): the function's lines execute —
and count as covered — on *every* call, but the bug only **triggers**
when its specific argument/state predicate holds.  That is exactly the
phenomenon the bug study quantifies: 53% of studied bugs sat in code
xfstests covered yet never tripped, because tripping needed a boundary
or corner-case input.

The catalogue mirrors the real bugs the paper cites:

* ``xattr-ibody-overflow`` — Figure 1 (Ts'o 2022): lsetxattr with the
  maximum allowed ``size`` overflowed ``min_offs``; the guard tested
  ``i_extra_isize == 0`` instead of "does the inode have xattr room",
  so the error case (ENOSPC) was decided wrongly.  Input + output bug.
* ``open-largefile-overflow`` — (Wilcox & Chinner 2022): opening a
  >2 GiB file without O_LARGEFILE must fail EOVERFLOW; the check was
  missing.  Input + output bug.
* ``fc-replay-oob`` — (Ye Bin 2022): out-of-bound read in
  ``ext4_fc_replay_scan`` for a region length at the block boundary.
  Input bug.
* ``get-branch-errcode`` — (Henriques 2022): wrong error code returned
  to user space from ``ext4_get_branch`` on a read past the last
  mapped block.  Output bug.
* ``nowait-write-enospc`` — (Manana 2022, BtrFS): NOWAIT buffered
  write spuriously returning -ENOSPC under low-but-sufficient free
  space.  Output bug.
* ``write-max-count-short`` — a MAX_RW_COUNT boundary truncation bug
  (composite of several size-boundary fixes in the study).  Input bug.
* ``refcount-leak-any`` — a "neither" control: triggers on every call,
  so plain code coverage suffices to expose it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping


class BugKind(enum.Enum):
    """The Section 2 classification."""

    INPUT = "input"
    OUTPUT = "output"
    BOTH = "both"
    NEITHER = "neither"


@dataclass
class BugReport:
    """One observed trigger of an injected bug."""

    bug_id: str
    syscall: str
    detail: str


@dataclass(frozen=True)
class InjectedBug:
    """A latent defect inside one modeled kernel function.

    Attributes:
        bug_id: stable identifier.
        kind: input/output/both/neither classification.
        function: the modeled kernel function hosting the bug.
        trigger: predicate over (args, state) deciding whether this
            call trips the bug.  ``state`` is the instrumented FS's
            view (free-space ratio, file sizes, …).
        effect: short description of the misbehaviour when tripped
            (wrong retval, corruption, oob read).
        reference: the real-world bug it is modeled on.
    """

    bug_id: str
    kind: BugKind
    function: str
    trigger: Callable[[Mapping[str, Any], Mapping[str, Any]], bool]
    effect: str
    reference: str


def _xattr_ibody_trigger(args: Mapping[str, Any], state: Mapping[str, Any]) -> bool:
    # Maximum allowed xattr size: min_offs arithmetic overflows.
    from repro.vfs import constants

    size = args.get("size", 0)
    return isinstance(size, int) and size >= constants.XATTR_SIZE_MAX - 16


def _largefile_trigger(args: Mapping[str, Any], state: Mapping[str, Any]) -> bool:
    from repro.vfs import constants

    flags = args.get("flags", 0)
    file_size = state.get("file_size", 0)
    return (
        isinstance(flags, int)
        and not flags & constants.O_LARGEFILE
        and file_size > 2**31 - 1
    )


def _fc_replay_trigger(args: Mapping[str, Any], state: Mapping[str, Any]) -> bool:
    from repro.vfs import constants

    length = args.get("length", state.get("length", -1))
    # A replay region ending exactly one tail short of a block boundary
    # walks one entry past the buffer.
    return (
        isinstance(length, int)
        and length > 0
        and length % constants.DEFAULT_BLOCK_SIZE
        == constants.DEFAULT_BLOCK_SIZE - 8
    )


def _get_branch_trigger(args: Mapping[str, Any], state: Mapping[str, Any]) -> bool:
    # Positional read starting beyond the last mapped block: error code
    # computed from uninitialized branch depth.
    pos = args.get("pos")
    file_size = state.get("file_size", 0)
    return isinstance(pos, int) and file_size > 0 and pos > file_size

def _nowait_enospc_trigger(args: Mapping[str, Any], state: Mapping[str, Any]) -> bool:
    from repro.vfs import constants

    flags = state.get("open_flags", 0)
    free_ratio = state.get("free_ratio", 1.0)
    return bool(flags & constants.O_NONBLOCK) and free_ratio < 0.10


def _max_count_trigger(args: Mapping[str, Any], state: Mapping[str, Any]) -> bool:
    from repro.vfs import constants

    count = args.get("count", 0)
    return isinstance(count, int) and count >= constants.MAX_RW_COUNT


def _always_trigger(args: Mapping[str, Any], state: Mapping[str, Any]) -> bool:
    return True


#: The injectable catalogue, keyed by bug id.
BUG_CATALOGUE: dict[str, InjectedBug] = {
    bug.bug_id: bug
    for bug in (
        InjectedBug(
            bug_id="xattr-ibody-overflow",
            kind=BugKind.BOTH,
            function="ext4_xattr_ibody_set",
            trigger=_xattr_ibody_trigger,
            effect="min_offs overflow: accepts xattr that must fail ENOSPC",
            reference="Ts'o 2022, ext4: fix use-after-free in ext4_xattr_set_entry",
        ),
        InjectedBug(
            bug_id="open-largefile-overflow",
            kind=BugKind.BOTH,
            function="ext4_file_open",
            trigger=_largefile_trigger,
            effect="missing EOVERFLOW check for >2GiB file without O_LARGEFILE",
            reference="Wilcox & Chinner 2022, xfs: use generic_file_open()",
        ),
        InjectedBug(
            bug_id="fc-replay-oob",
            kind=BugKind.INPUT,
            function="ext4_fc_replay_scan",
            trigger=_fc_replay_trigger,
            effect="out-of-bound read scanning the fast-commit region",
            reference="Ye Bin 2022, ext4: fix potential out of bound read",
        ),
        InjectedBug(
            bug_id="get-branch-errcode",
            kind=BugKind.OUTPUT,
            function="ext4_get_branch",
            trigger=_get_branch_trigger,
            effect="wrong errno propagated to user space on exit path",
            reference="Henriques 2022, ext4: fix error code return to user-space",
        ),
        InjectedBug(
            bug_id="nowait-write-enospc",
            kind=BugKind.OUTPUT,
            function="btrfs_buffered_write",
            trigger=_nowait_enospc_trigger,
            effect="NOWAIT write returns -ENOSPC though space exists",
            reference="Manana 2022, btrfs: fix NOWAIT buffered write returning -ENOSPC",
        ),
        InjectedBug(
            bug_id="write-max-count-short",
            kind=BugKind.INPUT,
            function="ext4_file_write_iter",
            trigger=_max_count_trigger,
            effect="MAX_RW_COUNT clamp drops the final partial page",
            reference="composite of size-boundary fixes in the 2022 study window",
        ),
        InjectedBug(
            bug_id="refcount-leak-any",
            kind=BugKind.NEITHER,
            function="ext4_file_open",
            trigger=_always_trigger,
            effect="module refcount leak on every open (any test exposes it)",
            reference="control case: detectable by any covering test",
        ),
    )
}


def bugs_for_function(function: str) -> list[InjectedBug]:
    """All catalogue bugs hosted in *function*."""
    return [bug for bug in BUG_CATALOGUE.values() if bug.function == function]
