"""Instrumented kernel-FS model: code coverage vs bug triggering.

The Section 2 comparator: a Gcov-like collector
(:class:`CodeCoverage`), a catalogue of injected bugs modeled on the
paper's cited real kernel fixes (:data:`BUG_CATALOGUE`), and the
instrumented kernel model (:class:`InstrumentedKernel`) that marks
lines/branches covered on every syscall while bugs trigger only on
their boundary inputs.
"""

from repro.kernelsim.bugs import (
    BUG_CATALOGUE,
    BugKind,
    BugReport,
    InjectedBug,
    bugs_for_function,
)
from repro.kernelsim.coverage import CodeCoverage, CoverageSnapshot, FunctionSpec
from repro.kernelsim.instrumented import KERNEL_FUNCTIONS, InstrumentedKernel

__all__ = [
    "BUG_CATALOGUE",
    "BugKind",
    "BugReport",
    "CodeCoverage",
    "CoverageSnapshot",
    "FunctionSpec",
    "InjectedBug",
    "InstrumentedKernel",
    "KERNEL_FUNCTIONS",
    "bugs_for_function",
]
