"""Gcov-like code-coverage collection over the modeled kernel FS.

The bug study in Section 2 runs xfstests under Gcov and asks, per
bug-fix commit, whether the buggy lines/functions/branches were
*covered* and whether the bug was *detected*.  This module provides the
Gcov side: a registry of modeled source functions (each with a line
count and named branches) and a collector that the modeled kernel code
calls as it executes.

Coverage here has the same semantics as Gcov's:

* a **line** is covered when executed at least once;
* a **function** is covered when any of its lines is;
* a **branch** is covered when both of its outcomes were taken at
  least once (Gcov's branch coverage counts outcomes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class FunctionSpec:
    """One modeled kernel function: file, line span, branch names."""

    name: str
    file: str
    n_lines: int
    branches: tuple[str, ...] = ()


@dataclass
class CoverageSnapshot:
    """Aggregated coverage figures (the Gcov report)."""

    line_total: int
    line_covered: int
    function_total: int
    function_covered: int
    branch_outcomes_total: int
    branch_outcomes_covered: int

    @property
    def line_percent(self) -> float:
        return 100.0 * self.line_covered / self.line_total if self.line_total else 0.0

    @property
    def function_percent(self) -> float:
        return (
            100.0 * self.function_covered / self.function_total
            if self.function_total
            else 0.0
        )

    @property
    def branch_percent(self) -> float:
        return (
            100.0 * self.branch_outcomes_covered / self.branch_outcomes_total
            if self.branch_outcomes_total
            else 0.0
        )


class CodeCoverage:
    """The collector the modeled kernel calls at every line/branch."""

    def __init__(self) -> None:
        self._functions: dict[str, FunctionSpec] = {}
        self._line_hits: Counter = Counter()
        self._branch_hits: Counter = Counter()

    # -- registration ------------------------------------------------------

    def register(self, spec: FunctionSpec) -> None:
        """Declare a modeled function (its lines start uncovered)."""
        if spec.name in self._functions:
            raise ValueError(f"function {spec.name} already registered")
        self._functions[spec.name] = spec

    def register_all(self, specs: list[FunctionSpec]) -> None:
        for spec in specs:
            self.register(spec)

    @property
    def functions(self) -> dict[str, FunctionSpec]:
        return dict(self._functions)

    # -- collection (called by modeled kernel code) ---------------------------

    def line(self, function: str, line_no: int) -> None:
        """Record execution of one line (1-based within the function)."""
        spec = self._functions[function]
        if not 1 <= line_no <= spec.n_lines:
            raise ValueError(f"{function} has no line {line_no}")
        self._line_hits[(function, line_no)] += 1

    def lines(self, function: str, first: int, last: int) -> None:
        """Record a straight-line run of lines [first, last]."""
        for line_no in range(first, last + 1):
            self.line(function, line_no)

    def branch(self, function: str, branch: str, taken: bool) -> None:
        """Record one outcome of a named branch."""
        spec = self._functions[function]
        if branch not in spec.branches:
            raise ValueError(f"{function} has no branch {branch!r}")
        self._branch_hits[(function, branch, taken)] += 1

    # -- queries ------------------------------------------------------------

    def line_covered(self, function: str, line_no: int) -> bool:
        return self._line_hits[(function, line_no)] > 0

    def line_hit_count(self, function: str, line_no: int) -> int:
        return self._line_hits[(function, line_no)]

    def function_covered(self, function: str) -> bool:
        spec = self._functions[function]
        return any(
            self._line_hits[(function, line)] for line in range(1, spec.n_lines + 1)
        )

    def branch_fully_covered(self, function: str, branch: str) -> bool:
        """Both outcomes taken (Gcov branch coverage)."""
        return (
            self._branch_hits[(function, branch, True)] > 0
            and self._branch_hits[(function, branch, False)] > 0
        )

    def function_lines_covered(self, function: str) -> int:
        spec = self._functions[function]
        return sum(
            1
            for line in range(1, spec.n_lines + 1)
            if self._line_hits[(function, line)]
        )

    def snapshot(self) -> CoverageSnapshot:
        line_total = sum(spec.n_lines for spec in self._functions.values())
        line_covered = sum(
            self.function_lines_covered(name) for name in self._functions
        )
        function_covered = sum(
            1 for name in self._functions if self.function_covered(name)
        )
        branch_total = sum(
            2 * len(spec.branches) for spec in self._functions.values()
        )
        branch_covered = sum(
            1
            for name, spec in self._functions.items()
            for branch in spec.branches
            for taken in (True, False)
            if self._branch_hits[(name, branch, taken)] > 0
        )
        return CoverageSnapshot(
            line_total=line_total,
            line_covered=line_covered,
            function_total=len(self._functions),
            function_covered=function_covered,
            branch_outcomes_total=branch_total,
            branch_outcomes_covered=branch_covered,
        )

    def reset(self) -> None:
        self._line_hits.clear()
        self._branch_hits.clear()
