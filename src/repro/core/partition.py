"""Input- and output-space partitioning.

Section 3 of the paper partitions each argument's space by class:

* **bitmap** — one partition per flag (plus combination-size analysis
  for Table 1);
* **numeric** — powers of two as boundary values, with a dedicated
  partition for the boundary value 0 ("Equal to 0" in Figure 3) and one
  for negative values;
* **categorical** — one partition per allowed value, plus an "invalid"
  partition for out-of-domain values;
* **identifier** — range partitions for file descriptors, depth/length
  partitions for paths.

Outputs partition into success (one partition, or powers-of-two buckets
for byte-count returns) and one partition per errno.

Every partitioner exposes the same protocol:

* ``domain()`` — the fixed, ordered list of partition keys;
* ``classify(value)`` — the list of keys a concrete value falls into
  (bitmaps may credit several; everything else exactly one).

The *totality* invariant — every value lands in at least one partition,
and non-bitmap classes in exactly one — is property-tested in
``tests/core/test_partition_properties.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.argspec import ArgClass, ArgSpec, OutputKind, SyscallSpec
from repro.vfs import constants
from repro.vfs.errors import errno_name

# ---------------------------------------------------------------------------
# numeric partitions
# ---------------------------------------------------------------------------

#: Partition key for the value 0 (a boundary value easily neglected by
#: testing — POSIX allows write(fd, buf, 0)).
ZERO_KEY = "equal_to_0"
#: Partition key for negative values (invalid for sizes; meaningful for
#: lseek offsets).
NEGATIVE_KEY = "negative"


def power_of_two_key(exponent: int) -> str:
    """Key for the bucket [2**exponent, 2**(exponent+1) - 1]."""
    return f"2^{exponent}"


class NumericPartitioner:
    """Powers-of-two bucketing with explicit 0 and negative partitions.

    A value v > 0 falls in bucket ``2^k`` where ``k = floor(log2 v)`` —
    i.e. buckets are [1,1], [2,3], [4,7], …, matching Figure 3 where
    x = 10 holds all write sizes 1024–2047.

    Args:
        max_exponent: the largest bucket exponent; values at or above
            ``2**(max_exponent + 1)`` still land in the last bucket's
            overflow key ``>=2^(max+1)``.  64-bit sizes fit in 63.
        include_negative: whether the domain carries a negative bucket
            (sizes are unsigned, offsets are signed).
    """

    def __init__(self, max_exponent: int = 63, include_negative: bool = True) -> None:
        if max_exponent < 0:
            raise ValueError("max_exponent must be >= 0")
        self.max_exponent = max_exponent
        self.include_negative = include_negative
        self._overflow_key = f">=2^{max_exponent + 1}"

    def domain(self) -> list[str]:
        keys = [NEGATIVE_KEY] if self.include_negative else []
        keys.append(ZERO_KEY)
        keys.extend(power_of_two_key(exp) for exp in range(self.max_exponent + 1))
        keys.append(self._overflow_key)
        return keys

    def classify(self, value: object) -> list[str]:
        if not isinstance(value, int):
            return []
        if value < 0:
            return [NEGATIVE_KEY if self.include_negative else ZERO_KEY]
        if value == 0:
            return [ZERO_KEY]
        exponent = value.bit_length() - 1
        if exponent > self.max_exponent:
            return [self._overflow_key]
        return [power_of_two_key(exponent)]

    @staticmethod
    def bucket_exponent(key: str) -> int | None:
        """Inverse helper: ``"2^10"`` -> 10; None for special keys."""
        if key.startswith("2^"):
            return int(key[2:])
        return None


# ---------------------------------------------------------------------------
# bitmap partitions
# ---------------------------------------------------------------------------


class BitmapPartitioner:
    """Per-flag partitions for bitmask arguments (open flags, modes).

    Composite flags (O_SYNC ⊃ O_DSYNC, O_TMPFILE ⊃ O_DIRECTORY) are
    matched longest-mask-first, and their constituent bits are masked
    out so one open(O_SYNC) credits O_SYNC but not O_DSYNC — the same
    decoding strace performs.

    Enumerated fields (open's access mode, where O_RDONLY/O_WRONLY/
    O_RDWR share a 2-bit field) are decoded by value, not by bit, via
    the spec's ``access_mask`` / ``access_names``.
    """

    def __init__(self, spec: ArgSpec) -> None:
        if spec.arg_class is not ArgClass.BITMAP or spec.bitmap is None:
            raise ValueError(f"not a bitmap arg: {spec.name}")
        self.spec = spec
        # Longest mask first so composites win over their constituents.
        self._flags_by_popcount = sorted(
            spec.bitmap.items(), key=lambda item: bin(item[1]).count("1"), reverse=True
        )

    def domain(self) -> list[str]:
        keys: list[str] = []
        if self.spec.access_names:
            keys.extend(self.spec.access_names.values())
        elif self.spec.zero_name:
            keys.append(self.spec.zero_name)
        keys.extend(self.spec.bitmap or {})
        keys.append("unknown_bits")
        # Preserve order, drop duplicates (zero_name may also be a flag).
        seen: set[str] = set()
        ordered = [key for key in keys if not (key in seen or seen.add(key))]
        return ordered

    def decode(self, value: int) -> list[str]:
        """Decode *value* into the list of flag names it contains."""
        names: list[str] = []
        remaining = value
        if self.spec.access_names is not None and self.spec.access_mask:
            mode = value & self.spec.access_mask
            remaining &= ~self.spec.access_mask
            names.append(self.spec.access_names.get(mode, "unknown_bits"))
        for name, mask in self._flags_by_popcount:
            if mask and remaining & mask == mask:
                names.append(name)
                remaining &= ~mask
        if remaining and "unknown_bits" not in names:
            names.append("unknown_bits")
        if not names:
            # No access field and no bits set: the zero partition.
            names.append(self.spec.zero_name or "0")
        return names

    def classify(self, value: object) -> list[str]:
        if not isinstance(value, int):
            return []
        return self.decode(value)

    def combination_size(self, value: int) -> int:
        """Number of distinct flags combined in *value* (Table 1).

        The access mode always counts as one flag (O_RDONLY alone is
        "1 flag"); unknown bits count as one.
        """
        names = self.decode(value) if isinstance(value, int) else []
        return len(names)


# ---------------------------------------------------------------------------
# categorical partitions
# ---------------------------------------------------------------------------


class CategoricalPartitioner:
    """One partition per allowed value, plus an invalid-value bucket."""

    INVALID_KEY = "invalid"

    def __init__(self, spec: ArgSpec) -> None:
        if spec.arg_class is not ArgClass.CATEGORICAL or spec.categories is None:
            raise ValueError(f"not a categorical arg: {spec.name}")
        self.spec = spec
        self._by_value = {value: name for name, value in spec.categories.items()}

    def domain(self) -> list[str]:
        return [*self.spec.categories, self.INVALID_KEY]

    def classify(self, value: object) -> list[str]:
        if not isinstance(value, int):
            return []
        return [self._by_value.get(value, self.INVALID_KEY)]


# ---------------------------------------------------------------------------
# identifier partitions
# ---------------------------------------------------------------------------


class IdentifierPartitioner:
    """Range partitions for identifier arguments (fds, paths).

    File descriptors partition by the standing of the descriptor
    number: the three standard descriptors, AT_FDCWD, small/medium/
    large ranges, and negatives (boundary / invalid values).  Paths
    partition by component depth (shallow vs nested) and whether the
    path is absolute, relative, or boundary-length.
    """

    FD_KEYS = (
        "fd_negative",
        "fd_at_fdcwd",
        "fd_stdin",
        "fd_stdout",
        "fd_stderr",
        "fd_3_to_63",
        "fd_64_to_1023",
        "fd_ge_1024",
    )
    PATH_KEYS = (
        "path_empty",
        "path_root",
        "path_absolute_depth_1",
        "path_absolute_deep",
        "path_relative_dot",
        "path_relative_dotdot",
        "path_relative_depth_1",
        "path_relative_deep",
        "path_name_max_boundary",
        "path_max_boundary",
    )

    def domain(self) -> list[str]:
        return [*self.FD_KEYS, *self.PATH_KEYS]

    def classify(self, value: object) -> list[str]:
        if isinstance(value, int):
            return [self._classify_fd(value)]
        if isinstance(value, str):
            return [self._classify_path(value)]
        return []

    @staticmethod
    def _classify_fd(fd: int) -> str:
        if fd == constants.AT_FDCWD:
            return "fd_at_fdcwd"
        if fd < 0:
            return "fd_negative"
        if fd == 0:
            return "fd_stdin"
        if fd == 1:
            return "fd_stdout"
        if fd == 2:
            return "fd_stderr"
        if fd < 64:
            return "fd_3_to_63"
        if fd < 1024:
            return "fd_64_to_1023"
        return "fd_ge_1024"

    @staticmethod
    def _classify_path(path: str) -> str:
        if not path:
            return "path_empty"
        if len(path) >= constants.PATH_MAX:
            return "path_max_boundary"
        components = [part for part in path.split("/") if part]
        if any(len(part) >= constants.NAME_MAX for part in components):
            return "path_name_max_boundary"
        if path.startswith("/"):
            if not components:
                return "path_root"
            return (
                "path_absolute_depth_1"
                if len(components) == 1
                else "path_absolute_deep"
            )
        if path == ".":
            return "path_relative_dot"
        if path == "..":
            return "path_relative_dotdot"
        return "path_relative_depth_1" if len(components) == 1 else "path_relative_deep"


# ---------------------------------------------------------------------------
# output partitions
# ---------------------------------------------------------------------------

#: Key for the success partition of FLAG-output syscalls (Figure 4's
#: "OK (>= 0)").
OK_KEY = "OK"


class OutputPartitioner:
    """Partitions syscall return values: success vs per-errno.

    For FLAG-output syscalls there is one success partition (``OK``).
    For SIZE-output syscalls success is partitioned by powers of two of
    the returned byte count (with the 0 boundary separate), mirroring
    the input-size treatment.

    Errnos outside the manpage domain land in per-errno keys anyway —
    the paper notes the manpage list "may not be consistent with the
    actual implementation", and IOCov must count reality, not the
    documentation; :meth:`domain` returns the documented keys, and
    undocumented-but-observed errnos appear only in counts.
    """

    def __init__(self, spec: SyscallSpec, max_exponent: int = 63) -> None:
        self.spec = spec
        self._numeric = NumericPartitioner(max_exponent, include_negative=False)

    def domain(self) -> list[str]:
        if self.spec.output_kind is OutputKind.SIZE:
            success = [f"{OK_KEY}:{key}" for key in self._numeric.domain()]
        else:
            success = [OK_KEY]
        return success + list(self.spec.errnos)

    def classify(self, retval: int, errno: int = 0) -> list[str]:
        """Classify one return: *errno* > 0 wins over *retval*."""
        if errno > 0 or retval < 0:
            err = errno if errno > 0 else -retval
            return [errno_name(err)]
        if self.spec.output_kind is OutputKind.SIZE:
            keys = self._numeric.classify(retval)
            return [f"{OK_KEY}:{key}" for key in keys]
        return [OK_KEY]


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------


def make_input_partitioner(spec: ArgSpec):
    """Build the partitioner matching an argument's class."""
    if spec.arg_class is ArgClass.BITMAP:
        return BitmapPartitioner(spec)
    if spec.arg_class is ArgClass.NUMERIC:
        # Keep a negative partition even for nominally unsigned sizes:
        # a tester passing (size_t)-1 is exactly the kind of boundary
        # input the paper wants counted, and strace renders it signed.
        return NumericPartitioner(include_negative=True)
    if spec.arg_class is ArgClass.CATEGORICAL:
        return CategoricalPartitioner(spec)
    if spec.arg_class is ArgClass.IDENTIFIER:
        return IdentifierPartitioner()
    raise ValueError(f"unhandled arg class {spec.arg_class}")
