"""IOCov core: the paper's contribution.

Public surface:

* :class:`IOCov` — the analyzer (filter → variant merge → partitioning).
* :class:`TraceFilter` — mount-point scoping.
* :class:`VariantHandler` — syscall-variant merging.
* Partitioners for the four argument classes and output spaces.
* :func:`tcd` and friends — the Test Coverage Deviation metric.
* :class:`CoverageReport` / :class:`SuiteComparison` — results.
"""

from repro.core.analyzer import IOCov, analyze_events
from repro.core.combinations import CombinationCoverage, pairwise_coverage_from
from repro.core.argspec import (
    ArgClass,
    ArgSpec,
    BASE_SYSCALLS,
    OutputKind,
    SyscallSpec,
    TRACKED_ARG_COUNT,
    TRACKED_SYSCALLS,
    VARIANT_TO_BASE,
    base_name,
    spec_for,
)
from repro.core.filter import AcceptAllFilter, TraceFilter
from repro.core.input_coverage import ArgCoverage, InputCoverage
from repro.core.output_coverage import OutputCoverage, SyscallOutputCoverage
from repro.core.partition import (
    BitmapPartitioner,
    CategoricalPartitioner,
    IdentifierPartitioner,
    NumericPartitioner,
    OutputPartitioner,
    OK_KEY,
    ZERO_KEY,
    make_input_partitioner,
)
from repro.core.report import CoverageReport, SuiteComparison
from repro.core.suggestions import Suggestion, render_suggestions, suggest_tests
from repro.core.tcd import (
    PartitionAssessment,
    assess_partitions,
    find_crossover,
    tcd,
    tcd_curve,
    tcd_uniform,
    uniform_target,
    weighted_target,
)
from repro.core.variants import VariantHandler

__all__ = [
    "ArgClass",
    "ArgCoverage",
    "ArgSpec",
    "AcceptAllFilter",
    "BASE_SYSCALLS",
    "BitmapPartitioner",
    "CategoricalPartitioner",
    "CombinationCoverage",
    "CoverageReport",
    "IOCov",
    "IdentifierPartitioner",
    "InputCoverage",
    "NumericPartitioner",
    "OK_KEY",
    "OutputCoverage",
    "OutputKind",
    "OutputPartitioner",
    "PartitionAssessment",
    "SuiteComparison",
    "SyscallOutputCoverage",
    "SyscallSpec",
    "TRACKED_ARG_COUNT",
    "TRACKED_SYSCALLS",
    "TraceFilter",
    "VARIANT_TO_BASE",
    "VariantHandler",
    "ZERO_KEY",
    "analyze_events",
    "assess_partitions",
    "base_name",
    "find_crossover",
    "make_input_partitioner",
    "Suggestion",
    "pairwise_coverage_from",
    "render_suggestions",
    "spec_for",
    "suggest_tests",
    "tcd",
    "tcd_curve",
    "tcd_uniform",
    "uniform_target",
    "weighted_target",
]
