"""Test Coverage Deviation (TCD): the paper's scalar adequacy metric.

Given an input or output coverage for a syscall with N partitions,
where partition i was exercised F_i times and the developer's target
for it is T_i, the paper defines

    TCD_T = sqrt( (1/N) * sum_i (log10 F_i - log10 T_i)^2 )

— the root-mean-square deviation of log frequencies from the log
target.  Logarithms downplay over-testing relative to under-testing; a
lower TCD is better (closer to the target).  The target array T encodes
developer preference: uniform in the paper's study, but non-uniform
(e.g. persistence-weighted for crash-consistency work) in its future
work, which :func:`weighted_target` supports.

Zero frequencies need a convention for ``log 0``; we use
``log10(max(x, zero_floor))`` with ``zero_floor = 1`` so an untested
partition contributes ``(log10 T)^2`` — maximal penalty against any
target above 1 — and the metric stays finite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

#: Values below this are floored before taking log10.
DEFAULT_ZERO_FLOOR = 1.0


def safe_log10(value: float, zero_floor: float = DEFAULT_ZERO_FLOOR) -> float:
    """log10 with a floor so zero frequencies stay finite."""
    return math.log10(max(value, zero_floor))


def tcd(
    frequencies: Sequence[float],
    target: Sequence[float],
    zero_floor: float = DEFAULT_ZERO_FLOOR,
) -> float:
    """Test Coverage Deviation of *frequencies* against *target*.

    Args:
        frequencies: observed count per partition (F).
        target: desired count per partition (T); same length as F.
        zero_floor: floor applied before log10.

    Raises:
        ValueError: length mismatch or empty partition list.
    """
    if len(frequencies) != len(target):
        raise ValueError(
            f"frequency/target length mismatch: {len(frequencies)} vs {len(target)}"
        )
    if not frequencies:
        raise ValueError("TCD of zero partitions is undefined")
    total = 0.0
    for freq, tgt in zip(frequencies, target):
        deviation = safe_log10(freq, zero_floor) - safe_log10(tgt, zero_floor)
        total += deviation * deviation
    return math.sqrt(total / len(frequencies))


def uniform_target(n_partitions: int, value: float) -> list[float]:
    """A target array with the same value everywhere (the paper's study)."""
    if n_partitions <= 0:
        raise ValueError("n_partitions must be positive")
    return [value] * n_partitions


def weighted_target(
    domain: Sequence[str],
    base_value: float,
    weights: Mapping[str, float],
) -> list[float]:
    """Non-uniform target: ``base_value`` scaled per partition.

    The paper's future work suggests larger targets for
    persistence-related partitions (O_SYNC, O_DSYNC); express that as
    ``weighted_target(domain, 1000, {"O_SYNC": 10, "O_DSYNC": 10})``.
    """
    return [base_value * weights.get(key, 1.0) for key in domain]


def tcd_uniform(
    frequencies: Sequence[float],
    target_value: float,
    zero_floor: float = DEFAULT_ZERO_FLOOR,
) -> float:
    """TCD against a uniform target of *target_value*."""
    return tcd(frequencies, uniform_target(len(frequencies), target_value), zero_floor)


def tcd_curve(
    frequencies: Sequence[float],
    target_values: Iterable[float],
    zero_floor: float = DEFAULT_ZERO_FLOOR,
) -> list[tuple[float, float]]:
    """TCD swept over uniform targets (Figure 5's per-suite series)."""
    return [
        (value, tcd_uniform(frequencies, value, zero_floor))
        for value in target_values
    ]


def find_crossover(
    frequencies_a: Sequence[float],
    frequencies_b: Sequence[float],
    low: float = 1.0,
    high: float = 1e7,
    tolerance: float = 0.5,
    zero_floor: float = DEFAULT_ZERO_FLOOR,
) -> float | None:
    """Uniform target value where the two suites' TCD curves cross.

    Finds T* such that ``TCD_a(T) < TCD_b(T)`` on one side and
    ``>`` on the other (Figure 5's ≈5,237 point).  Returns None when no
    sign change exists in [low, high].  Bisection runs in log space.
    """

    def diff(value: float) -> float:
        return tcd_uniform(frequencies_a, value, zero_floor) - tcd_uniform(
            frequencies_b, value, zero_floor
        )

    lo, hi = low, high
    d_lo, d_hi = diff(lo), diff(hi)
    if d_lo == 0:
        return lo
    if d_hi == 0:
        return hi
    if d_lo * d_hi > 0:
        return None
    while hi - lo > tolerance:
        mid = math.sqrt(lo * hi)  # geometric midpoint (log-space bisection)
        d_mid = diff(mid)
        if d_mid == 0:
            return mid
        if d_lo * d_mid < 0:
            hi = mid
        else:
            lo, d_lo = mid, d_mid
    return math.sqrt(lo * hi)


# ---------------------------------------------------------------------------
# under-/over-testing classification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionAssessment:
    """How one partition's testing compares to its target."""

    key: str
    frequency: float
    target: float
    log_deviation: float
    verdict: str  # "under", "over", or "on-target"


def assess_partitions(
    domain: Sequence[str],
    frequencies: Sequence[float],
    target: Sequence[float],
    tolerance_decades: float = 1.0,
    zero_floor: float = DEFAULT_ZERO_FLOOR,
) -> list[PartitionAssessment]:
    """Classify each partition as under-, over-, or on-target-tested.

    A partition is on-target when its log10 frequency is within
    *tolerance_decades* of the log10 target (default: within one order
    of magnitude).  Under-testing can miss bugs; over-testing wastes
    resources better diverted to under-tested partitions.
    """
    if not len(domain) == len(frequencies) == len(target):
        raise ValueError("domain/frequencies/target length mismatch")
    assessments: list[PartitionAssessment] = []
    for key, freq, tgt in zip(domain, frequencies, target):
        deviation = safe_log10(freq, zero_floor) - safe_log10(tgt, zero_floor)
        if deviation < -tolerance_decades:
            verdict = "under"
        elif deviation > tolerance_decades:
            verdict = "over"
        else:
            verdict = "on-target"
        assessments.append(
            PartitionAssessment(
                key=key,
                frequency=freq,
                target=tgt,
                log_deviation=deviation,
                verdict=verdict,
            )
        )
    return assessments
