"""Coverage reports: rendering, serialization, and suite comparison.

The evaluation artifacts the paper derives from coverage state all live
here:

* per-partition frequency tables (Figures 2–4);
* untested-partition inventories ("many possible error codes remain
  untested");
* suite-vs-suite comparison (xfstests vs CrashMonkey: who covers each
  partition more, who uniquely covers what);
* under-/over-testing assessment against a target array (Section 4's
  "Application: syscall test adequacy").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.argspec import SyscallSpec

from repro.core.input_coverage import InputCoverage
from repro.core.output_coverage import OutputCoverage
from repro.core.tcd import (
    PartitionAssessment,
    assess_partitions,
    tcd_uniform,
    uniform_target,
)


@dataclass
class CoverageReport:
    """Frozen result of one IOCov analysis run."""

    suite_name: str
    input_coverage: InputCoverage
    output_coverage: OutputCoverage
    events_processed: int = 0
    events_admitted: int = 0
    untracked: dict[str, int] = field(default_factory=dict)

    # -- structured access -----------------------------------------------------

    def input_frequencies(self, syscall: str, arg: str) -> dict[str, int]:
        return self.input_coverage.arg(syscall, arg).frequencies()

    def output_frequencies(self, syscall: str) -> dict[str, int]:
        return self.output_coverage.syscall(syscall).frequencies()

    def untested_inputs(self) -> dict[tuple[str, str], list[str]]:
        return self.input_coverage.all_untested()

    def untested_outputs(self) -> dict[str, list[str]]:
        return self.output_coverage.all_untested_errnos()

    # -- TCD ------------------------------------------------------------

    def input_tcd(self, syscall: str, arg: str, target_value: float) -> float:
        """TCD of one input argument against a uniform target."""
        frequencies = list(self.input_frequencies(syscall, arg).values())
        return tcd_uniform(frequencies, target_value)

    def output_tcd(self, syscall: str, target_value: float) -> float:
        """TCD of one syscall's output space against a uniform target."""
        frequencies = list(self.output_frequencies(syscall).values())
        return tcd_uniform(frequencies, target_value)

    def assess_input(
        self, syscall: str, arg: str, target_value: float, tolerance: float = 1.0
    ) -> list[PartitionAssessment]:
        """Under/over/on-target verdict per input partition."""
        coverage = self.input_coverage.arg(syscall, arg)
        frequencies = coverage.frequencies()
        keys = list(frequencies)
        values = [frequencies[key] for key in keys]
        return assess_partitions(
            keys, values, uniform_target(len(keys), target_value), tolerance
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready structure with all frequency tables."""
        inputs: dict[str, dict[str, dict[str, int]]] = {}
        for syscall, arg in self.input_coverage.tracked_pairs():
            inputs.setdefault(syscall, {})[arg] = self.input_frequencies(syscall, arg)
        outputs = {
            syscall: self.output_frequencies(syscall)
            for syscall in self.output_coverage.tracked_syscalls()
        }
        return {
            "suite": self.suite_name,
            "events_processed": self.events_processed,
            "events_admitted": self.events_admitted,
            "untracked_syscalls": dict(sorted(self.untracked.items())),
            "input_coverage": inputs,
            "output_coverage": outputs,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Any],
        registry: Mapping[str, SyscallSpec] | None = None,
    ) -> "CoverageReport":
        """Rebuild a report from :meth:`to_dict` output (the inverse).

        Lossless with respect to ``to_dict``: for any report ``r``,
        ``CoverageReport.from_dict(r.to_dict()).to_dict() == r.to_dict()``
        (the run store depends on this round trip).  Flag-combination
        multisets and unclassified tallies are not part of the wire
        format, so they come back empty.

        Args:
            data: a ``to_dict`` document.
            registry: the syscall registry the report was built with;
                defaults to the paper's 27-syscall selection.

        Raises:
            ValueError: missing keys, wrong value types, or coverage
                entries that the registry does not track.
        """
        for key in ("suite", "input_coverage", "output_coverage"):
            if key not in data:
                raise ValueError(f"coverage document missing {key!r}")
        input_coverage = InputCoverage(registry)
        output_coverage = OutputCoverage(registry)
        inputs = data["input_coverage"]
        if not isinstance(inputs, Mapping):
            raise ValueError("input_coverage must be a mapping")
        for syscall, args in inputs.items():
            for arg_name, frequencies in args.items():
                try:
                    coverage = input_coverage.arg(syscall, arg_name)
                except KeyError:
                    raise ValueError(
                        f"untracked input pair {syscall}.{arg_name} in document"
                    ) from None
                for partition, count in frequencies.items():
                    if not isinstance(count, int) or count < 0:
                        raise ValueError(
                            f"bad count for {syscall}.{arg_name}:{partition}: {count!r}"
                        )
                    if count:
                        coverage.counts[partition] = count
        outputs = data["output_coverage"]
        if not isinstance(outputs, Mapping):
            raise ValueError("output_coverage must be a mapping")
        for syscall, frequencies in outputs.items():
            try:
                coverage = output_coverage.syscall(syscall)
            except KeyError:
                raise ValueError(f"untracked syscall {syscall} in document") from None
            for partition, count in frequencies.items():
                if not isinstance(count, int) or count < 0:
                    raise ValueError(
                        f"bad count for {syscall}:{partition}: {count!r}"
                    )
                if count:
                    coverage.counts[partition] = count
        return cls(
            suite_name=str(data["suite"]),
            input_coverage=input_coverage,
            output_coverage=output_coverage,
            events_processed=int(data.get("events_processed", 0)),
            events_admitted=int(data.get("events_admitted", 0)),
            untracked=dict(data.get("untracked_syscalls", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "CoverageReport":
        return cls.from_dict(json.loads(text))

    # -- text rendering ------------------------------------------------------

    def render_text(self, max_rows: int = 12) -> str:
        """Human-readable summary of the whole report."""
        lines = [
            f"IOCov report for suite: {self.suite_name}",
            f"  events processed: {self.events_processed:,}"
            f" (in scope: {self.events_admitted:,})",
        ]
        untested_in = self.untested_inputs()
        untested_out = self.untested_outputs()
        lines.append(f"  tracked args with untested partitions: {len(untested_in)}")
        lines.append(f"  syscalls with untested errnos: {len(untested_out)}")
        lines.append("")
        for (syscall, arg), missing in list(untested_in.items())[:max_rows]:
            shown = ", ".join(missing[:8]) + ("…" if len(missing) > 8 else "")
            lines.append(f"  input  {syscall}.{arg}: untested = {shown}")
        for syscall, missing in list(untested_out.items())[:max_rows]:
            shown = ", ".join(missing[:8]) + ("…" if len(missing) > 8 else "")
            lines.append(f"  output {syscall}: untested errnos = {shown}")
        return "\n".join(lines)

    def render_chart(
        self,
        kind: str,
        syscall: str,
        arg: str | None = None,
        width: int = 50,
        nonzero_only: bool = False,
    ) -> str:
        """ASCII log-scale bar chart of one figure's series.

        Renders the same view the paper's log-frequency figures use:
        bar length proportional to log10 of the count, zeros shown as
        explicit gaps — which makes untested partitions visually loud.
        """
        import math

        if kind == "input":
            if arg is None:
                raise ValueError("input charts need an arg name")
            frequencies = self.input_frequencies(syscall, arg)
            title = f"{syscall}.{arg} input coverage ({self.suite_name}, log scale)"
        elif kind == "output":
            frequencies = self.output_frequencies(syscall)
            title = f"{syscall} output coverage ({self.suite_name}, log scale)"
        else:
            raise ValueError(f"unknown chart kind {kind!r}")
        rows = [
            (key, count)
            for key, count in frequencies.items()
            if count or not nonzero_only
        ]
        if not rows:
            return title + "\n(no data)"
        peak = max((count for _, count in rows), default=1)
        scale = width / max(math.log10(peak + 1), 1e-9)
        label_width = max(len(key) for key, _ in rows)
        lines = [title, "-" * len(title)]
        for key, count in rows:
            bar = "#" * int(math.log10(count + 1) * scale) if count else ""
            marker = bar if count else "· untested"
            lines.append(f"{key:<{label_width}} |{marker}  {count:,}" if count else f"{key:<{label_width}} |{marker}")
        return "\n".join(lines)

    def render_frequency_table(
        self, kind: str, syscall: str, arg: str | None = None, nonzero_only: bool = False
    ) -> str:
        """One figure's worth of data as an aligned text table."""
        if kind == "input":
            if arg is None:
                raise ValueError("input tables need an arg name")
            frequencies = self.input_frequencies(syscall, arg)
            title = f"input coverage: {syscall}.{arg} ({self.suite_name})"
        elif kind == "output":
            frequencies = self.output_frequencies(syscall)
            title = f"output coverage: {syscall} ({self.suite_name})"
        else:
            raise ValueError(f"unknown table kind {kind!r}")
        rows = [
            (key, count)
            for key, count in frequencies.items()
            if count or not nonzero_only
        ]
        width = max((len(key) for key, _ in rows), default=8)
        lines = [title, "-" * len(title)]
        lines.extend(f"{key:<{width}}  {count:>12,}" for key, count in rows)
        return "\n".join(lines)


@dataclass
class SuiteComparison:
    """Figure 2/3/4-style side-by-side view of two suites."""

    report_a: CoverageReport
    report_b: CoverageReport

    def input_table(self, syscall: str, arg: str) -> dict[str, tuple[int, int]]:
        """partition -> (count_a, count_b), over the union of keys."""
        freq_a = self.report_a.input_frequencies(syscall, arg)
        freq_b = self.report_b.input_frequencies(syscall, arg)
        keys = list(freq_a)
        keys.extend(key for key in freq_b if key not in freq_a)
        return {key: (freq_a.get(key, 0), freq_b.get(key, 0)) for key in keys}

    def output_table(self, syscall: str) -> dict[str, tuple[int, int]]:
        freq_a = self.report_a.output_frequencies(syscall)
        freq_b = self.report_b.output_frequencies(syscall)
        keys = list(freq_a)
        keys.extend(key for key in freq_b if key not in freq_a)
        return {key: (freq_a.get(key, 0), freq_b.get(key, 0)) for key in keys}

    def only_covered_by(self, syscall: str, arg: str) -> tuple[list[str], list[str]]:
        """Partitions covered by exactly one suite: (only_a, only_b)."""
        table = self.input_table(syscall, arg)
        only_a = [key for key, (count_a, count_b) in table.items() if count_a and not count_b]
        only_b = [key for key, (count_a, count_b) in table.items() if count_b and not count_a]
        return only_a, only_b

    def dominance(self, syscall: str, arg: str) -> dict[str, str]:
        """Per partition, which suite exercised it more."""
        verdicts: dict[str, str] = {}
        for key, (count_a, count_b) in self.input_table(syscall, arg).items():
            if count_a == count_b:
                verdicts[key] = "tie"
            elif count_a > count_b:
                verdicts[key] = self.report_a.suite_name
            else:
                verdicts[key] = self.report_b.suite_name
        return verdicts

    def render_text(self, syscall: str, arg: str | None = None) -> str:
        """Aligned two-column table (input if arg given, else output)."""
        if arg is not None:
            table = self.input_table(syscall, arg)
            title = f"{syscall}.{arg}"
        else:
            table = self.output_table(syscall)
            title = f"{syscall} outputs"
        name_a = self.report_a.suite_name
        name_b = self.report_b.suite_name
        width = max((len(key) for key in table), default=8)
        lines = [
            f"{title}: {name_a} vs {name_b}",
            f"{'partition':<{width}}  {name_a:>14}  {name_b:>14}",
        ]
        lines.extend(
            f"{key:<{width}}  {count_a:>14,}  {count_b:>14,}"
            for key, (count_a, count_b) in table.items()
        )
        return "\n".join(lines)
