"""Input-coverage accounting: partition counts per tracked argument.

Input coverage is defined as how much a tester exercises an argument's
input partitions.  For each of the 14 tracked arguments this module
counts how many traced calls fell into each partition, exposes the
untested partitions, and — for bitmap arguments — keeps the full
multiset of flag *combinations* so Table 1's combination-size analysis
(and the future-work bit-combination metric) can be computed exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.argspec import ArgClass, ArgSpec, BASE_SYSCALLS, SyscallSpec
from repro.core.partition import BitmapPartitioner, make_input_partitioner


#: Cap on per-argument classification caches.  Flag words and size
#: values repeat massively across a trace, so a memo on
#: ``value -> partition keys`` eliminates most classify work; the cap
#: bounds memory on adversarial traces (cache simply stops growing).
CLASSIFY_CACHE_CAP = 65536

#: Cache-miss sentinel (``None`` is a legitimate traced value).
_MISS = object()


@dataclass
class ArgCoverage:
    """Coverage state for one (base syscall, argument) pair."""

    syscall: str
    spec: ArgSpec
    partitioner: Any
    counts: Counter = field(default_factory=Counter)
    #: full decoded flag combinations (bitmap args only)
    combinations: Counter = field(default_factory=Counter)
    #: values that failed to classify (wrong type in a malformed trace)
    unclassified: int = 0

    def __post_init__(self) -> None:
        self._is_bitmap = isinstance(self.partitioner, BitmapPartitioner)
        # value -> (keys, combo-or-None); keyed by (type, value) so that
        # e.g. a stray 1.0 never aliases the int 1 entry.
        self._classify_cache: dict = {}

    def __getstate__(self) -> dict:
        # The classify memo is derived state; shipping it between
        # shard workers and the parent would waste IPC bandwidth.
        state = self.__dict__.copy()
        state["_classify_cache"] = {}
        return state

    def _classified(self, value: Any) -> tuple[tuple[str, ...], frozenset | None]:
        """Classify *value*, memoized on hashable values."""
        try:
            cache_key = (value.__class__, value)
            entry = self._classify_cache.get(cache_key, _MISS)
        except TypeError:  # unhashable (iovec length lists) — no memo
            keys = tuple(self.partitioner.classify(value))
            combo = frozenset(keys) if (keys and self._is_bitmap) else None
            return keys, combo
        if entry is _MISS:
            keys = tuple(self.partitioner.classify(value))
            combo = frozenset(keys) if (keys and self._is_bitmap) else None
            entry = (keys, combo)
            if len(self._classify_cache) < CLASSIFY_CACHE_CAP:
                self._classify_cache[cache_key] = entry
        return entry

    def record(self, value: Any) -> None:
        """Credit *value*'s partitions with one occurrence."""
        keys, combo = self._classified(value)
        if not keys:
            self.unclassified += 1
            return
        counts = self.counts
        for key in keys:
            counts[key] += 1
        if combo is not None:
            self.combinations[combo] += 1

    # -- merging ------------------------------------------------------------

    def merge(self, other: "ArgCoverage") -> "ArgCoverage":
        """Fold another shard's state into this one (exact: counts add).

        Raises:
            ValueError: the two states track different arguments.
        """
        if (self.syscall, self.spec.name) != (other.syscall, other.spec.name):
            raise ValueError(
                f"cannot merge {other.syscall}.{other.spec.name} "
                f"into {self.syscall}.{self.spec.name}"
            )
        self.counts.update(other.counts)
        self.combinations.update(other.combinations)
        self.unclassified += other.unclassified
        return self

    # -- queries ------------------------------------------------------------

    def domain(self) -> list[str]:
        return self.partitioner.domain()

    def frequencies(self) -> dict[str, int]:
        """Count per domain partition (0 for untested), domain order."""
        counts_get = self.counts.get
        return {key: counts_get(key, 0) for key in self.domain()}

    def partition_status(self) -> tuple[list[str], list[str]]:
        """``(tested, untested)`` partition keys from one frequency pass."""
        tested: list[str] = []
        untested: list[str] = []
        for key, count in self.frequencies().items():
            (tested if count > 0 else untested).append(key)
        return tested, untested

    def tested_partitions(self) -> list[str]:
        return self.partition_status()[0]

    def untested_partitions(self) -> list[str]:
        return self.partition_status()[1]

    def coverage_ratio(self) -> float:
        """Fraction of domain partitions exercised at least once."""
        tested, untested = self.partition_status()
        total = len(tested) + len(untested)
        if not total:
            return 1.0
        return len(tested) / total

    @property
    def total_observations(self) -> int:
        return sum(self.counts.values())

    # -- bitmap combination analysis (Table 1) --------------------------------

    def combination_size_histogram(
        self, required_flag: str | None = None
    ) -> Counter:
        """How many calls used 1, 2, 3… flags together.

        Args:
            required_flag: restrict to combinations including this flag
                (Table 1's "O_RDONLY" rows).
        """
        histogram: Counter = Counter()
        for combo, count in self.combinations.items():
            if required_flag is not None and required_flag not in combo:
                continue
            histogram[len(combo)] += count
        return histogram

    def combination_size_percentages(
        self, required_flag: str | None = None
    ) -> dict[int, float]:
        """Table 1's row: % of calls per combination size."""
        histogram = self.combination_size_histogram(required_flag)
        total = sum(histogram.values())
        if total == 0:
            return {}
        return {size: 100.0 * count / total for size, count in sorted(histogram.items())}

    def top_combinations(self, n: int = 10) -> list[tuple[tuple[str, ...], int]]:
        """The most common exact flag combinations."""
        ranked = self.combinations.most_common(n)
        return [(tuple(sorted(combo)), count) for combo, count in ranked]


class InputCoverage:
    """Input-coverage state across all tracked syscalls.

    Instantiates one :class:`ArgCoverage` per (base syscall, tracked
    argument) — 14 in total — and routes normalized events to them.
    """

    def __init__(self, registry: Mapping[str, SyscallSpec] | None = None) -> None:
        self.registry = dict(registry) if registry is not None else dict(BASE_SYSCALLS)
        self._args: dict[tuple[str, str], ArgCoverage] = {}
        for name, spec in self.registry.items():
            for arg_spec in spec.tracked_args:
                self._args[(name, arg_spec.name)] = ArgCoverage(
                    syscall=name,
                    spec=arg_spec,
                    partitioner=make_input_partitioner(arg_spec),
                )

    def record(self, base: str, args: Mapping[str, Any]) -> None:
        """Credit all tracked arguments present in one normalized event."""
        spec = self.registry.get(base)
        if spec is None:
            return
        for arg_spec in spec.tracked_args:
            if arg_spec.name in args:
                self._args[(base, arg_spec.name)].record(args[arg_spec.name])

    # -- merging ------------------------------------------------------------

    def merge(self, other: "InputCoverage") -> "InputCoverage":
        """Fold another shard's input-coverage state into this one.

        Exact by construction: per-partition counts, flag-combination
        multisets, and unclassified tallies all add, so merging N
        independently-consumed shards reproduces the single-pass state
        bit for bit.

        Raises:
            ValueError: the two states track different (syscall, arg)
                pairs (built from different registries).
        """
        if set(self._args) != set(other._args):
            raise ValueError("cannot merge input coverage over different registries")
        for pair, coverage in self._args.items():
            coverage.merge(other._args[pair])
        return self

    # -- queries ------------------------------------------------------------

    def arg(self, syscall: str, arg_name: str) -> ArgCoverage:
        """Coverage for one tracked argument.

        Raises:
            KeyError: the pair is not tracked.
        """
        return self._args[(syscall, arg_name)]

    def tracked_pairs(self) -> list[tuple[str, str]]:
        return sorted(self._args)

    def all_untested(self) -> dict[tuple[str, str], list[str]]:
        """Untested input partitions for every tracked argument."""
        result: dict[tuple[str, str], list[str]] = {}
        for pair, coverage in sorted(self._args.items()):
            untested = coverage.partition_status()[1]
            if untested:
                result[pair] = untested
        return result

    def summary(self) -> dict[tuple[str, str], float]:
        """Coverage ratio per tracked argument."""
        return {
            pair: coverage.coverage_ratio()
            for pair, coverage in sorted(self._args.items())
        }
