"""Input-coverage accounting: partition counts per tracked argument.

Input coverage is defined as how much a tester exercises an argument's
input partitions.  For each of the 14 tracked arguments this module
counts how many traced calls fell into each partition, exposes the
untested partitions, and — for bitmap arguments — keeps the full
multiset of flag *combinations* so Table 1's combination-size analysis
(and the future-work bit-combination metric) can be computed exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.argspec import ArgClass, ArgSpec, BASE_SYSCALLS, SyscallSpec
from repro.core.partition import BitmapPartitioner, make_input_partitioner


@dataclass
class ArgCoverage:
    """Coverage state for one (base syscall, argument) pair."""

    syscall: str
    spec: ArgSpec
    partitioner: Any
    counts: Counter = field(default_factory=Counter)
    #: full decoded flag combinations (bitmap args only)
    combinations: Counter = field(default_factory=Counter)
    #: values that failed to classify (wrong type in a malformed trace)
    unclassified: int = 0

    def record(self, value: Any) -> None:
        """Credit *value*'s partitions with one occurrence."""
        keys = self.partitioner.classify(value)
        if not keys:
            self.unclassified += 1
            return
        for key in keys:
            self.counts[key] += 1
        if isinstance(self.partitioner, BitmapPartitioner):
            self.combinations[frozenset(keys)] += 1

    # -- queries ------------------------------------------------------------

    def domain(self) -> list[str]:
        return self.partitioner.domain()

    def frequencies(self) -> dict[str, int]:
        """Count per domain partition (0 for untested), domain order."""
        return {key: self.counts.get(key, 0) for key in self.domain()}

    def tested_partitions(self) -> list[str]:
        return [key for key, count in self.frequencies().items() if count > 0]

    def untested_partitions(self) -> list[str]:
        return [key for key, count in self.frequencies().items() if count == 0]

    def coverage_ratio(self) -> float:
        """Fraction of domain partitions exercised at least once."""
        domain = self.domain()
        if not domain:
            return 1.0
        return len(self.tested_partitions()) / len(domain)

    @property
    def total_observations(self) -> int:
        return sum(self.counts.values())

    # -- bitmap combination analysis (Table 1) --------------------------------

    def combination_size_histogram(
        self, required_flag: str | None = None
    ) -> Counter:
        """How many calls used 1, 2, 3… flags together.

        Args:
            required_flag: restrict to combinations including this flag
                (Table 1's "O_RDONLY" rows).
        """
        histogram: Counter = Counter()
        for combo, count in self.combinations.items():
            if required_flag is not None and required_flag not in combo:
                continue
            histogram[len(combo)] += count
        return histogram

    def combination_size_percentages(
        self, required_flag: str | None = None
    ) -> dict[int, float]:
        """Table 1's row: % of calls per combination size."""
        histogram = self.combination_size_histogram(required_flag)
        total = sum(histogram.values())
        if total == 0:
            return {}
        return {size: 100.0 * count / total for size, count in sorted(histogram.items())}

    def top_combinations(self, n: int = 10) -> list[tuple[tuple[str, ...], int]]:
        """The most common exact flag combinations."""
        ranked = self.combinations.most_common(n)
        return [(tuple(sorted(combo)), count) for combo, count in ranked]


class InputCoverage:
    """Input-coverage state across all tracked syscalls.

    Instantiates one :class:`ArgCoverage` per (base syscall, tracked
    argument) — 14 in total — and routes normalized events to them.
    """

    def __init__(self, registry: Mapping[str, SyscallSpec] | None = None) -> None:
        self.registry = dict(registry) if registry is not None else dict(BASE_SYSCALLS)
        self._args: dict[tuple[str, str], ArgCoverage] = {}
        for name, spec in self.registry.items():
            for arg_spec in spec.tracked_args:
                self._args[(name, arg_spec.name)] = ArgCoverage(
                    syscall=name,
                    spec=arg_spec,
                    partitioner=make_input_partitioner(arg_spec),
                )

    def record(self, base: str, args: Mapping[str, Any]) -> None:
        """Credit all tracked arguments present in one normalized event."""
        spec = self.registry.get(base)
        if spec is None:
            return
        for arg_spec in spec.tracked_args:
            if arg_spec.name in args:
                self._args[(base, arg_spec.name)].record(args[arg_spec.name])

    # -- queries ------------------------------------------------------------

    def arg(self, syscall: str, arg_name: str) -> ArgCoverage:
        """Coverage for one tracked argument.

        Raises:
            KeyError: the pair is not tracked.
        """
        return self._args[(syscall, arg_name)]

    def tracked_pairs(self) -> list[tuple[str, str]]:
        return sorted(self._args)

    def all_untested(self) -> dict[tuple[str, str], list[str]]:
        """Untested input partitions for every tracked argument."""
        return {
            pair: coverage.untested_partitions()
            for pair, coverage in sorted(self._args.items())
            if coverage.untested_partitions()
        }

    def summary(self) -> dict[tuple[str, str], float]:
        """Coverage ratio per tracked argument."""
        return {
            pair: coverage.coverage_ratio()
            for pair, coverage in sorted(self._args.items())
        }
