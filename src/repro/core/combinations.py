"""Bit-combination coverage: the paper's future-work metric.

Per-flag input coverage (Figure 2) treats each open flag
independently, but bugs often need flag *interactions* (O_CREAT with
O_EXCL, O_DIRECT with O_SYNC).  The paper's future work proposes
"enhancing our metrics to support bit combinations"; this module
implements that as **t-way combination coverage**, the standard
combinatorial-testing notion:

* the *t-way domain* of a bitmap argument is every t-element subset of
  its flags that is jointly satisfiable (access modes are mutually
  exclusive, composites subsume their parts);
* a traced value covers the t-subsets of its decoded flag set;
* t-way coverage is the fraction of the domain covered.

2-way coverage over open's ~20 flags is a far more demanding target
than per-flag coverage (≈190 pairs vs 20 singletons), and the report
pinpoints exactly which interactions no test exercises.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.argspec import ArgSpec
from repro.core.input_coverage import ArgCoverage
from repro.core.partition import BitmapPartitioner


def _mutually_exclusive_groups(spec: ArgSpec) -> list[frozenset[str]]:
    """Flag groups whose members can never appear together."""
    groups: list[frozenset[str]] = []
    if spec.access_names:
        groups.append(frozenset(spec.access_names.values()))
    # Composite flags subsume their constituents after decoding, so a
    # decoded set never contains both (O_SYNC ⊃ O_DSYNC, O_TMPFILE ⊃
    # O_DIRECTORY).
    groups.append(frozenset({"O_SYNC", "O_DSYNC"}))
    groups.append(frozenset({"O_TMPFILE", "O_DIRECTORY"}))
    return groups


@dataclass
class CombinationCoverage:
    """t-way flag-combination coverage for one bitmap argument.

    Args:
        spec: the bitmap argument (e.g. open's flags).
        t: combination strength (2 = pairwise, the usual choice).
    """

    spec: ArgSpec
    t: int = 2
    _counts: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        if self.t < 1:
            raise ValueError("t must be >= 1")
        self._partitioner = BitmapPartitioner(self.spec)
        self._exclusive = _mutually_exclusive_groups(self.spec)
        flag_names = [
            key
            for key in self._partitioner.domain()
            if key not in ("unknown_bits",)
        ]
        self._domain = frozenset(
            frozenset(combo)
            for combo in itertools.combinations(sorted(flag_names), self.t)
            if self._satisfiable(frozenset(combo))
        )

    def _satisfiable(self, combo: frozenset[str]) -> bool:
        return all(len(combo & group) <= 1 for group in self._exclusive)

    # -- recording ------------------------------------------------------------

    def record_value(self, flags: int) -> None:
        """Credit the t-subsets of one traced flags value."""
        decoded = sorted(self._partitioner.decode(flags))
        for combo in itertools.combinations(decoded, self.t):
            key = frozenset(combo)
            if key in self._domain:
                self._counts[key] += 1

    def record_from(self, coverage: ArgCoverage) -> None:
        """Replay an ArgCoverage's stored exact combinations."""
        for combo, count in coverage.combinations.items():
            decoded = sorted(combo)
            for subset in itertools.combinations(decoded, self.t):
                key = frozenset(subset)
                if key in self._domain:
                    self._counts[key] += count

    # -- queries ------------------------------------------------------------

    @property
    def domain_size(self) -> int:
        return len(self._domain)

    def covered(self) -> set[frozenset[str]]:
        return {combo for combo, count in self._counts.items() if count > 0}

    def uncovered(self) -> list[tuple[str, ...]]:
        """The interactions no test exercises, sorted for stable output."""
        missing = self._domain - self.covered()
        return sorted(tuple(sorted(combo)) for combo in missing)

    def coverage_ratio(self) -> float:
        if not self._domain:
            return 1.0
        return len(self.covered()) / len(self._domain)

    def count(self, *flags: str) -> int:
        """How often a specific interaction was exercised."""
        return self._counts.get(frozenset(flags), 0)

    def most_common(self, n: int = 10) -> list[tuple[tuple[str, ...], int]]:
        return [
            (tuple(sorted(combo)), count)
            for combo, count in self._counts.most_common(n)
        ]

    def render_text(self, max_rows: int = 15) -> str:
        title = (
            f"{self.t}-way combination coverage: {self.spec.name} "
            f"({len(self.covered())}/{self.domain_size} "
            f"= {100 * self.coverage_ratio():.1f}%)"
        )
        lines = [title, "-" * len(title)]
        for combo in self.uncovered()[:max_rows]:
            lines.append("  missing: " + " + ".join(combo))
        remaining = len(self.uncovered()) - max_rows
        if remaining > 0:
            lines.append(f"  … and {remaining} more")
        return "\n".join(lines)


def pairwise_coverage_from(coverage: ArgCoverage, t: int = 2) -> CombinationCoverage:
    """Build t-way coverage directly from an analyzed bitmap argument."""
    combo = CombinationCoverage(spec=coverage.spec, t=t)
    combo.record_from(coverage)
    return combo
