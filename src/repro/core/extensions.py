"""Extended syscall registry: fd and path argument tracking.

The paper's future work includes "support[ing] file descriptors and
pointer arguments" as tracked inputs.  The base registry follows the
prototype exactly (14 arguments); this module builds an *extended*
registry that additionally tracks, for every syscall that has them:

* the ``fd`` argument (identifier class: std-fd / small / large /
  negative / AT_FDCWD partitions);
* the path argument (identifier class: absolute vs relative, depth,
  NAME_MAX / PATH_MAX boundary partitions).

Pass the result to the analyzer::

    from repro.core.extensions import extended_registry
    iocov = IOCov(mount_point="/mnt/test", registry=extended_registry())

Everything downstream (untested-partition reports, TCD, comparison)
works unchanged, because the registry is the single source of truth.
"""

from __future__ import annotations

from repro.core.argspec import (
    ArgClass,
    ArgSpec,
    BASE_SYSCALLS,
    SyscallSpec,
)

#: fd-argument spec shared by all fd-taking calls.
FD_ARG = ArgSpec(name="fd", arg_class=ArgClass.IDENTIFIER)

#: path-argument specs, one per naming convention in trace events.
PATHNAME_ARG = ArgSpec(name="pathname", arg_class=ArgClass.IDENTIFIER)
PATH_ARG = ArgSpec(name="path", arg_class=ArgClass.IDENTIFIER)
FILENAME_ARG = ArgSpec(name="filename", arg_class=ArgClass.IDENTIFIER)

#: base syscall -> extra argument specs the extended registry adds.
_EXTRA_ARGS: dict[str, tuple[ArgSpec, ...]] = {
    "open": (PATHNAME_ARG,),
    "read": (FD_ARG,),
    "write": (FD_ARG,),
    "lseek": (FD_ARG,),
    "truncate": (PATH_ARG,),
    "mkdir": (PATHNAME_ARG,),
    "chmod": (PATHNAME_ARG,),
    # close.fd and chdir.filename are already tracked in the base set.
    "setxattr": (PATHNAME_ARG,),
    "getxattr": (PATHNAME_ARG,),
}


def extended_registry(
    base: dict[str, SyscallSpec] | None = None,
) -> dict[str, SyscallSpec]:
    """The base registry plus fd/path identifier arguments.

    Args:
        base: registry to extend (defaults to the paper's 27-call set).

    Returns:
        a new registry; the input is not mutated.
    """
    source = base if base is not None else BASE_SYSCALLS
    extended: dict[str, SyscallSpec] = {}
    for name, spec in source.items():
        extras = tuple(
            extra
            for extra in _EXTRA_ARGS.get(name, ())
            if all(extra.name != existing.name for existing in spec.tracked_args)
        )
        if extras:
            extended[name] = SyscallSpec(
                name=spec.name,
                tracked_args=spec.tracked_args + extras,
                output_kind=spec.output_kind,
                errnos=spec.errnos,
            )
        else:
            extended[name] = spec
    return extended


def extended_arg_count(registry: dict[str, SyscallSpec] | None = None) -> int:
    """Total tracked arguments in the (extended) registry."""
    registry = registry or extended_registry()
    return sum(len(spec.tracked_args) for spec in registry.values())
