"""Turning coverage gaps into concrete test suggestions.

The paper's pitch to developers is that IOCov's output is directly
actionable: "this information can be readily used to improve these
testing tools."  This module makes that literal — it maps untested
input/output partitions to short recipes a test-suite author can
implement, ordered by how likely the gap is to hide bugs (boundary
partitions first, per the bug study's finding that boundary values and
corner cases dominate the missed-bug triggers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.argspec import VARIANT_TO_BASE
from repro.vfs import constants

if TYPE_CHECKING:
    from repro.core.report import CoverageReport


@dataclass(frozen=True)
class Suggestion:
    """One proposed test: where the gap is and how to hit it.

    ``gain`` is the partition-coverage gain of implementing the
    suggestion: the fraction of its partition domain this single test
    would newly cover (1/|domain|).  Small domains rank above huge ones
    at equal priority — one new whence value moves lseek coverage 1/6th
    of the way, one new size decade moves write coverage 1/67th.
    """

    syscall: str
    partition: str
    priority: int  # lower = likelier to hide bugs
    recipe: str
    gain: float = 0.0

    def render(self) -> str:
        return f"[{self.syscall}] {self.partition}: {self.recipe}"


#: Boundary partitions get top priority (the 65% statistic's territory).
_BOUNDARY_PRIORITY = 0
_ERROR_PRIORITY = 1
_ORDINARY_PRIORITY = 2

#: Recipes for untested errno partitions that need environment setup.
_ERRNO_RECIPES: dict[str, str] = {
    "ENOSPC": "fill (or reserve) the device, then retry the operation",
    "EDQUOT": "set a block quota below current usage for the test uid",
    "EROFS": "remount the volume read-only and attempt a write path",
    "EBUSY": "freeze the volume (or keep the target busy) during the call",
    "ETXTBSY": "execute a binary from the volume, then open it for write",
    "EMFILE": "lower RLIMIT_NOFILE to the current fd count first",
    "ENFILE": "exhaust the system file table (privileged environment)",
    "ENOMEM": "needs memory pressure; consider fault injection",
    "EIO": "needs device error injection (dm-error / fault injection)",
    "EINTR": "deliver a signal during a slow call; hard without injection",
    "EACCES": "drop privileges and touch a 0700 root-owned path",
    "ELOOP": "create a symlink cycle and resolve through it",
    "ENAMETOOLONG": f"use a {constants.NAME_MAX + 1}-byte name component",
    "EEXIST": "create the target, then O_CREAT|O_EXCL (or mkdir) it again",
    "ENOENT": "address a missing final component",
    "ENOTDIR": "route the path through a regular file",
    "EISDIR": "apply the file-only operation to a directory",
    "EFAULT": "pass an unmapped buffer/path pointer (harness support)",
    "EOVERFLOW": "open a >2 GiB file without O_LARGEFILE (32-bit API)",
    "EFBIG": "write at the file-size limit (ulimit -f or small max size)",
    "E2BIG": f"pass an xattr value over {constants.XATTR_SIZE_MAX} bytes",
    "ERANGE": "read an xattr into a buffer smaller than its value",
    "ENODATA": "get a nonexistent xattr name",
    "EBADF": "use a closed or never-opened descriptor",
    "EINVAL": "pass an out-of-domain argument (bad whence, bad flags)",
    "ENXIO": "SEEK_DATA/SEEK_HOLE at or past EOF",
    "ESPIPE": "lseek on a pipe (needs pipe support in the tester)",
}


def _numeric_recipe(syscall: str, arg: str, partition: str) -> tuple[int, str] | None:
    if partition == "equal_to_0":
        return _BOUNDARY_PRIORITY, f"issue {syscall} with {arg}=0 (POSIX-legal boundary)"
    if partition == "negative":
        return _BOUNDARY_PRIORITY, f"issue {syscall} with a negative {arg} (expect EINVAL)"
    if partition.startswith("2^"):
        exponent = int(partition[2:])
        value = 1 << exponent
        if exponent >= 31:
            return (
                _BOUNDARY_PRIORITY,
                f"issue {syscall} with {arg} around {value:,} "
                f"(2^{exponent}; large-value boundary territory)",
            )
        return (
            _ORDINARY_PRIORITY,
            f"issue {syscall} with {arg} in [{value:,}, {2 * value - 1:,}]",
        )
    if partition.startswith(">=2^"):
        return _BOUNDARY_PRIORITY, f"issue {syscall} with an extreme {arg} (≥{partition[2:]})"
    return None


def _flag_recipe(syscall: str, partition: str) -> tuple[int, str] | None:
    if partition in constants.OPEN_FLAG_NAMES:
        return (
            _ORDINARY_PRIORITY,
            f"add a test opening with {partition} "
            f"(real bugs have hidden behind rarely-set flags)",
        )
    if partition in constants.MODE_BIT_NAMES or partition == "0":
        return _ORDINARY_PRIORITY, f"exercise mode bit {partition}"
    return None


def suggest_tests(
    report: "CoverageReport", limit: int | None = 20
) -> list[Suggestion]:
    """Ranked, deduplicated test suggestions from a report's gaps.

    Ordering is stable: priority first (boundary < errno < ordinary),
    then partition-coverage gain (descending), then syscall/partition
    name as the tiebreak.  One suggestion per (base syscall, partition):
    registries that track variants separately (pread64 next to read,
    openat next to open) would otherwise repeat every shared-domain gap
    once per variant.  ``limit=None`` returns the full list — the
    campaign weight model consumes exactly this ordering.
    """
    suggestions: list[Suggestion] = []

    for (syscall, arg), partitions in report.untested_inputs().items():
        domain_size = len(report.input_coverage.arg(syscall, arg).domain())
        gain = 1.0 / domain_size if domain_size else 0.0
        for partition in partitions:
            made = _numeric_recipe(syscall, arg, partition)
            if made is None:
                made = _flag_recipe(syscall, partition)
            if made is None and partition in ("SEEK_DATA", "SEEK_HOLE", "invalid"):
                made = (
                    _ORDINARY_PRIORITY,
                    f"call {syscall} with whence={partition}",
                )
            if made is None:
                continue
            priority, recipe = made
            suggestions.append(
                Suggestion(
                    syscall=syscall, partition=f"{arg}:{partition}",
                    priority=priority, recipe=recipe, gain=gain,
                )
            )

    for syscall, errnos in report.untested_outputs().items():
        domain_size = len(report.output_coverage.syscall(syscall).domain())
        gain = 1.0 / domain_size if domain_size else 0.0
        for errno_name in errnos:
            recipe = _ERRNO_RECIPES.get(errno_name)
            if recipe is None:
                continue
            suggestions.append(
                Suggestion(
                    syscall=syscall,
                    partition=f"output:{errno_name}",
                    priority=_ERROR_PRIORITY,
                    recipe=recipe,
                    gain=gain,
                )
            )

    suggestions.sort(key=lambda s: (s.priority, -s.gain, s.syscall, s.partition))
    seen: set[tuple[str, str]] = set()
    deduped: list[Suggestion] = []
    for suggestion in suggestions:
        key = (VARIANT_TO_BASE.get(suggestion.syscall, suggestion.syscall),
               suggestion.partition)
        if key in seen:
            continue
        seen.add(key)
        deduped.append(suggestion)
    return deduped if limit is None else deduped[:limit]


def render_suggestions(report: "CoverageReport", limit: int = 20) -> str:
    """Human-readable suggestion list."""
    items = suggest_tests(report, limit)
    if not items:
        return "no gaps with known recipes — coverage looks saturated"
    lines = [f"suggested new tests (top {len(items)}, boundary-first):"]
    lines.extend("  " + item.render() for item in items)
    return "\n".join(lines)
