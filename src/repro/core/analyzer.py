"""The IOCov analyzer: the framework's public entry point.

Wires the three components the paper names — the **trace filter**, the
**syscall variant handler**, and the **input/output partitioner** —
into one pipeline:

    events -> filter (mount-point scope) -> variant merge -> partition
    counting -> coverage report

Typical use::

    from repro.core import IOCov

    iocov = IOCov(mount_point="/mnt/test", suite_name="xfstests")
    iocov.consume(recorder.events)          # or .consume_lttng_file(path)
    report = iocov.report()
    print(report.render_text())

The only per-tester setting is the mount-point regex, exactly as the
paper claims for the prototype.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

from repro.core.argspec import BASE_SYSCALLS, SyscallSpec
from repro.core.filter import AcceptAllFilter, TraceFilter
from repro.core.input_coverage import InputCoverage
from repro.core.output_coverage import OutputCoverage
from repro.core.report import CoverageReport
from repro.core.variants import VariantHandler
from repro.trace.events import SyscallEvent
from repro.trace.lttng import LttngParser
from repro.trace.strace import StraceParser
from repro.trace.syzkaller import SyzkallerParser


class IOCov:
    """Measures input and output coverage of a file-system test suite.

    Args:
        mount_point: the tester's mount point (e.g. ``/mnt/test``);
            builds the standard scoping filter.  Mutually exclusive
            with *trace_filter*.
        trace_filter: a pre-built filter; defaults to accept-all when
            neither argument is given (trace already scoped).
        suite_name: label carried into reports.
        registry: syscall registry override (defaults to the paper's
            27-syscall selection).
    """

    def __init__(
        self,
        mount_point: str | None = None,
        trace_filter: TraceFilter | AcceptAllFilter | None = None,
        suite_name: str = "unnamed-suite",
        registry: Mapping[str, SyscallSpec] | None = None,
    ) -> None:
        if mount_point is not None and trace_filter is not None:
            raise ValueError("pass mount_point or trace_filter, not both")
        if mount_point is not None:
            self.filter: TraceFilter | AcceptAllFilter = TraceFilter.for_mount_point(
                mount_point
            )
        else:
            self.filter = trace_filter or AcceptAllFilter()
        self.suite_name = suite_name
        self.variants = VariantHandler()
        self.input = InputCoverage(registry or BASE_SYSCALLS)
        self.output = OutputCoverage(registry or BASE_SYSCALLS)
        #: syscalls seen in scope but outside the 27-call registry
        self.untracked: Counter = Counter()
        self.events_processed = 0
        self.events_admitted = 0

    # -- ingestion ------------------------------------------------------------

    def consume_event(self, event: SyscallEvent, *, prefiltered: bool = False) -> None:
        """Feed one event through filter, variant merge, and counting."""
        self.events_processed += 1
        if not prefiltered and not self.filter.admit(event):
            return
        self.events_admitted += 1
        normalized = self.variants.normalize(event)
        if normalized is None:
            self.untracked[event.name] += 1
            return
        base, args = normalized
        self.input.record(base, args)
        self.output.record(base, event.retval, event.errno)

    def consume(self, events: Iterable[SyscallEvent]) -> "IOCov":
        """Feed many events; returns self for chaining."""
        self.filter.reset()
        for event in events:
            self.consume_event(event)
        return self

    def consume_lttng_file(self, path: str) -> "IOCov":
        """Ingest a babeltrace-style text trace from disk."""
        return self.consume(LttngParser().parse_file(path))

    def consume_strace_file(self, path: str) -> "IOCov":
        """Ingest an strace text capture from disk."""
        return self.consume(StraceParser().parse_file(path))

    def consume_syzkaller_file(self, path: str) -> "IOCov":
        """Ingest a syzkaller program log (input coverage only)."""
        return self.consume(SyzkallerParser().parse_file(path))

    # -- results ------------------------------------------------------------

    def report(self) -> CoverageReport:
        """Freeze the current state into a report object."""
        return CoverageReport(
            suite_name=self.suite_name,
            input_coverage=self.input,
            output_coverage=self.output,
            events_processed=self.events_processed,
            events_admitted=self.events_admitted,
            untracked=dict(self.untracked),
        )


def analyze_events(
    events: Iterable[SyscallEvent],
    mount_point: str | None = None,
    suite_name: str = "unnamed-suite",
) -> CoverageReport:
    """One-shot convenience: events in, report out."""
    iocov = IOCov(mount_point=mount_point, suite_name=suite_name)
    return iocov.consume(events).report()
