"""The IOCov analyzer: the framework's public entry point.

Wires the three components the paper names — the **trace filter**, the
**syscall variant handler**, and the **input/output partitioner** —
into one pipeline:

    events -> filter (mount-point scope) -> variant merge -> partition
    counting -> coverage report

Typical use::

    from repro.core import IOCov

    iocov = IOCov(mount_point="/mnt/test", suite_name="xfstests")
    iocov.consume(recorder.events)          # or .consume_lttng_file(path)
    report = iocov.report()
    print(report.render_text())

The only per-tester setting is the mount-point regex, exactly as the
paper claims for the prototype.

Two properties matter for scale (see :mod:`repro.parallel`):

* **streaming** — :meth:`IOCov.consume` pulls from any iterable, and
  the ``consume_*_file`` readers feed it a parser *generator*, so a
  multi-GB trace never materializes in memory; :meth:`consume_stream`
  adds chunked progress reporting on top.
* **mergeability** — :meth:`IOCov.merge` folds the state of another
  analyzer in exactly (all underlying tallies are sums), so N shards
  consumed independently combine into a result bit-identical to one
  sequential pass.
"""

from __future__ import annotations

from collections import Counter
from itertools import islice
from typing import Any, Callable, Iterable, Mapping

from repro.core.argspec import BASE_SYSCALLS, SyscallSpec, TRACKED_SYSCALLS, base_name
from repro.core.filter import AcceptAllFilter, TraceFilter
from repro.core.input_coverage import InputCoverage
from repro.core.output_coverage import OutputCoverage
from repro.core.report import CoverageReport
from repro.core.variants import CREAT_IMPLIED_FLAGS, VariantHandler
from repro.trace.batch import EventBatch, make_batch_parser
from repro.trace.events import SyscallEvent
from repro.trace.lttng import LttngParser
from repro.trace.strace import StraceParser
from repro.trace.syzkaller import SyzkallerParser

#: Default chunk size for :meth:`IOCov.consume_stream`.
DEFAULT_CHUNK_SIZE = 65536

_MISSING = object()


def _prep_creat(args: Mapping[str, Any]) -> Mapping[str, Any]:
    if "flags" in args:
        return args
    prepped = dict(args)
    prepped["flags"] = CREAT_IMPLIED_FLAGS
    return prepped


def _prep_fchdir(args: Mapping[str, Any]) -> Mapping[str, Any]:
    # The fd stands in for the path identifier.
    if "fd" not in args or "filename" in args:
        return args
    prepped = dict(args)
    prepped["filename"] = prepped.pop("fd")
    return prepped


#: Variant-specific argument fixups (everything else passes through;
#: variant plumbing names never collide with tracked argument names,
#: so dropping them is unnecessary for counting).
_ARG_PREP: dict[str, Callable[[Mapping[str, Any]], Mapping[str, Any]]] = {
    "creat": _prep_creat,
    "fchdir": _prep_fchdir,
}


class IOCov:
    """Measures input and output coverage of a file-system test suite.

    Args:
        mount_point: the tester's mount point (e.g. ``/mnt/test``);
            builds the standard scoping filter.  Mutually exclusive
            with *trace_filter*.
        trace_filter: a pre-built filter; defaults to accept-all when
            neither argument is given (trace already scoped).
        suite_name: label carried into reports.
        registry: syscall registry override (defaults to the paper's
            27-syscall selection).
    """

    def __init__(
        self,
        mount_point: str | None = None,
        trace_filter: TraceFilter | AcceptAllFilter | None = None,
        suite_name: str = "unnamed-suite",
        registry: Mapping[str, SyscallSpec] | None = None,
    ) -> None:
        if mount_point is not None and trace_filter is not None:
            raise ValueError("pass mount_point or trace_filter, not both")
        if mount_point is not None:
            self.filter: TraceFilter | AcceptAllFilter = TraceFilter.for_mount_point(
                mount_point
            )
        else:
            self.filter = trace_filter or AcceptAllFilter()
        self.suite_name = suite_name
        self.variants = VariantHandler()
        self.input = InputCoverage(registry or BASE_SYSCALLS)
        self.output = OutputCoverage(registry or BASE_SYSCALLS)
        #: syscalls seen in scope but outside the 27-call registry
        self.untracked: Counter = Counter()
        self.events_processed = 0
        self.events_admitted = 0
        #: drop counters of the last file-level ingest (set by the
        #: ``consume_*_file`` readers; None for in-memory ingestion).
        self.parse_stats: dict[str, Any] | None = None
        self._build_dispatch()

    def _build_dispatch(self) -> None:
        """Precompute the per-syscall counting plan.

        One dict lookup per event replaces the per-event variant
        normalization (dict copy + plumbing pops) and the per-record
        registry lookups of the naive path.  Dispatch covers exactly
        the 27 traced names; a name missing from the table is counted
        ``untracked``, mirroring :class:`VariantHandler` returning None.
        """
        self._dispatch: dict[str, tuple] = {}
        input_registry = self.input.registry
        for name in TRACKED_SYSCALLS:
            base = base_name(name)
            spec = input_registry.get(base)
            if spec is not None:
                pairs = tuple(
                    (arg.name, self.input.arg(base, arg.name).record)
                    for arg in spec.tracked_args
                )
                out_record = self.output.syscall(base).record
            else:
                # Variant of a base outside a custom registry: admitted
                # and normalized but contributes no counts (and is not
                # "untracked" — it is one of the 27 tracked names).
                pairs = ()
                out_record = None
            self._dispatch[name] = (_ARG_PREP.get(name), pairs, out_record)

    # -- ingestion ------------------------------------------------------------

    def consume_event(self, event: SyscallEvent, *, prefiltered: bool = False) -> None:
        """Feed one event through filter, variant merge, and counting."""
        self.events_processed += 1
        if not prefiltered and not self.filter.admit(event):
            return
        self.count_admitted(event)

    def count_admitted(self, event: SyscallEvent) -> None:
        """Count one event that already passed (or bypassed) the filter.

        Increments ``events_admitted`` but not ``events_processed`` —
        the entry point the sharded fixup replay uses for deferred
        events whose processing was already tallied by a worker.
        """
        self.events_admitted += 1
        entry = self._dispatch.get(event.name)
        if entry is None:
            self.untracked[event.name] += 1
            return
        prep, pairs, out_record = entry
        args = event.args if prep is None else prep(event.args)
        for arg_name, arg_record in pairs:
            value = args.get(arg_name, _MISSING)
            if value is not _MISSING:
                arg_record(value)
        if out_record is not None:
            out_record(event.retval, event.errno)

    def count_admitted_record(
        self, name: str, args: Mapping[str, Any], retval: int, errno: int
    ) -> None:
        """Field-level twin of :meth:`count_admitted` (batch workers)."""
        self.events_admitted += 1
        entry = self._dispatch.get(name)
        if entry is None:
            self.untracked[name] += 1
            return
        prep, pairs, out_record = entry
        if prep is not None:
            args = prep(args)
        for arg_name, arg_record in pairs:
            value = args.get(arg_name, _MISSING)
            if value is not _MISSING:
                arg_record(value)
        if out_record is not None:
            out_record(retval, errno)

    def _ingest(self, events: Iterable[SyscallEvent]) -> None:
        """Hot loop: filter + dispatch-table counting, no reset."""
        admit = self.filter.admit
        dispatch_get = self._dispatch.get
        untracked = self.untracked
        processed = 0
        admitted = 0
        for event in events:
            processed += 1
            if not admit(event):
                continue
            admitted += 1
            entry = dispatch_get(event.name)
            if entry is None:
                untracked[event.name] += 1
                continue
            prep, pairs, out_record = entry
            args = event.args if prep is None else prep(event.args)
            for arg_name, arg_record in pairs:
                value = args.get(arg_name, _MISSING)
                if value is not _MISSING:
                    arg_record(value)
            if out_record is not None:
                out_record(event.retval, event.errno)
        self.events_processed += processed
        self.events_admitted += admitted

    def _ingest_rows(self, rows: Iterable[tuple]) -> None:
        """Row-tuple twin of :meth:`_ingest` (batch/binary hot path).

        Identical counting, but events arrive as ``(name, args,
        retval, errno, pid, comm, timestamp)`` tuples so no
        :class:`SyscallEvent` is ever constructed.
        """
        admit = self.filter.admit_record
        dispatch_get = self._dispatch.get
        untracked = self.untracked
        processed = 0
        admitted = 0
        for name, args, retval, errno, pid, _comm, _ts in rows:
            processed += 1
            if not admit(name, args, retval, pid):
                continue
            admitted += 1
            entry = dispatch_get(name)
            if entry is None:
                untracked[name] += 1
                continue
            prep, pairs, out_record = entry
            if prep is not None:
                args = prep(args)
            for arg_name, arg_record in pairs:
                value = args.get(arg_name, _MISSING)
                if value is not _MISSING:
                    arg_record(value)
            if out_record is not None:
                out_record(retval, errno)
        self.events_processed += processed
        self.events_admitted += admitted

    def consume_batch(self, batch: EventBatch) -> "IOCov":
        """Feed one :class:`EventBatch` *without* resetting filter state.

        The batch twin of :meth:`consume_incremental` — live ingest
        feeds batches over time and fd-tracking state must persist.
        """
        self._ingest_rows(batch.iter_rows())
        return self

    def consume_batches(self, batches: Iterable[EventBatch]) -> "IOCov":
        """Feed a batch stream from the start of a trace (resets filter)."""
        self.filter.reset()
        for batch in batches:
            self._ingest_rows(batch.iter_rows())
        return self

    def consume(self, events: Iterable[SyscallEvent]) -> "IOCov":
        """Feed many events; returns self for chaining.

        *events* may be any iterable, including a lazy parser
        generator — it is consumed strictly one event at a time.
        """
        self.filter.reset()
        self._ingest(events)
        return self

    def consume_incremental(self, events: Iterable[SyscallEvent]) -> "IOCov":
        """Feed a batch of events *without* resetting filter state.

        The entry point for long-running live ingestion (the ``repro
        serve`` daemon): batches arrive over time and the scoping
        filter's fd table must persist across them, so unlike
        :meth:`consume` nothing is reset between calls.
        """
        self._ingest(events)
        return self

    def consume_stream(
        self,
        events: Iterable[SyscallEvent],
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        progress: Callable[[int], None] | None = None,
    ) -> "IOCov":
        """Chunked streaming ingestion with optional progress callbacks.

        Identical results to :meth:`consume`; at most *chunk_size*
        events are materialized at any moment, so peak memory stays
        O(chunk) regardless of trace size.  *progress* (if given) is
        called with the running ``events_processed`` after each chunk.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.filter.reset()
        iterator = iter(events)
        while True:
            chunk = list(islice(iterator, chunk_size))
            if not chunk:
                break
            self._ingest(chunk)
            if progress is not None:
                progress(self.events_processed)
        return self

    def _consume_text_file(self, path: str, fmt: str) -> "IOCov":
        """Batch-parse a text trace and ingest it chunk by chunk.

        Equal by construction to the per-line readers (the batch
        parsers fall back to them for any chunk their strict grammars
        decline), at several times the throughput.  The parser's drop
        counters land in :attr:`parse_stats`.
        """
        parser = make_batch_parser(fmt)
        self.filter.reset()
        for batch in parser.iter_file_batches(path):
            self._ingest_rows(batch.iter_rows())
        self.parse_stats = parser.stats()
        return self

    def consume_lttng_file(self, path: str) -> "IOCov":
        """Ingest a babeltrace-style text trace from disk (streaming)."""
        return self._consume_text_file(path, "lttng")

    def consume_strace_file(self, path: str) -> "IOCov":
        """Ingest an strace text capture from disk (streaming)."""
        return self._consume_text_file(path, "strace")

    def consume_syzkaller_file(self, path: str) -> "IOCov":
        """Ingest a syzkaller program log (input coverage only)."""
        return self._consume_text_file(path, "syzkaller")

    def consume_rbt_file(self, path: str) -> "IOCov":
        """Ingest a binary ``.rbt`` trace (see :mod:`repro.trace.binary`).

        :attr:`parse_stats` is restored from the container header when
        the converter stored it there (drop counts survive conversion).
        """
        from repro.trace.binary import RbtReader

        reader = RbtReader(path)
        self.filter.reset()
        for batch in reader:
            self._ingest_rows(batch.iter_rows())
        self.parse_stats = reader.header.get("parse_stats")
        return self

    # -- merging ------------------------------------------------------------

    def merge(self, other: "IOCov") -> "IOCov":
        """Fold another analyzer's coverage state into this one.

        Exact: every underlying tally is a sum (partition counts, flag
        combinations, unclassified, untracked, event counters), so
        merging N independently-consumed shards is bit-identical to one
        sequential pass over the concatenated stream — *provided* the
        shards were filtered equivalently (see :mod:`repro.parallel`
        for the machinery that guarantees this for stateful mount-point
        filters).  Filter state itself is not merged.

        Raises:
            ValueError: the analyzers use different registries.
        """
        self.input.merge(other.input)
        self.output.merge(other.output)
        self.untracked.update(other.untracked)
        self.events_processed += other.events_processed
        self.events_admitted += other.events_admitted
        return self

    # -- results ------------------------------------------------------------

    def report(self) -> CoverageReport:
        """Freeze the current state into a report object."""
        return CoverageReport(
            suite_name=self.suite_name,
            input_coverage=self.input,
            output_coverage=self.output,
            events_processed=self.events_processed,
            events_admitted=self.events_admitted,
            untracked=dict(self.untracked),
        )


def analyze_events(
    events: Iterable[SyscallEvent],
    mount_point: str | None = None,
    suite_name: str = "unnamed-suite",
) -> CoverageReport:
    """One-shot convenience: events in, report out."""
    iocov = IOCov(mount_point=mount_point, suite_name=suite_name)
    return iocov.consume(events).report()
