"""Syscall variant handling: merging variants into base input/output spaces.

Many syscalls have variants with different prototypes (open, openat,
creat, openat2) that share almost the same kernel implementation, so
IOCov merges their input and output spaces when computing coverage.
This module normalizes a variant event into ``(base_name, args)`` where
the args dict uses the *base* syscall's argument names:

* ``creat(path, mode)`` becomes ``open`` with the flags creat implies
  (O_CREAT|O_WRONLY|O_TRUNC);
* ``openat``/``openat2`` drop their ``dfd`` and pass flags/mode through;
* ``pread64``/``pwrite64`` drop ``pos``; ``readv``/``writev`` already
  carry a summed ``count``;
* ``ftruncate`` renames nothing (``length`` is shared) but maps to
  ``truncate``; ``fchmod``/``fchmodat`` map to ``chmod``; ``fchdir``'s
  fd is normalized into the ``filename`` slot as an identifier;
  xattr l*/f* variants map onto their base names unchanged.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.argspec import VARIANT_TO_BASE, base_name
from repro.trace.events import SyscallEvent
from repro.vfs import constants

#: Flags creat(2) implies; synthesized when merging into open's space.
CREAT_IMPLIED_FLAGS = constants.O_CREAT | constants.O_WRONLY | constants.O_TRUNC


class VariantHandler:
    """Normalizes traced (possibly variant) syscalls to base-call shape."""

    def normalize(self, event: SyscallEvent) -> tuple[str, dict[str, Any]] | None:
        """Return ``(base_name, normalized_args)``; None if untracked."""
        base = base_name(event.name)
        if base is None:
            return None
        args = dict(event.args)
        if event.name == "creat":
            args.setdefault("flags", CREAT_IMPLIED_FLAGS)
        if event.name == "fchdir":
            # The fd stands in for the path identifier.
            if "fd" in args and "filename" not in args:
                args["filename"] = args.pop("fd")
        # Drop variant-only plumbing that has no base-space meaning.
        for plumbing in ("dfd", "pos", "resolve", "how", "vlen"):
            args.pop(plumbing, None)
        return base, args

    def merge_counts(self, events: list[SyscallEvent]) -> dict[str, int]:
        """Count events per *base* syscall (diagnostic helper)."""
        counts: dict[str, int] = {}
        for event in events:
            base = base_name(event.name)
            if base is not None:
                counts[base] = counts.get(base, 0) + 1
        return counts

    @staticmethod
    def variants_of(base: str) -> list[str]:
        """All traced names merging into *base* (including itself)."""
        return [base] + sorted(
            name for name, target in VARIANT_TO_BASE.items() if target == base
        )
