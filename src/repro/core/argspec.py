"""The IOCov syscall registry: which syscalls and arguments are tracked.

The paper selects 27 file-system syscalls (11 base calls plus their
variants), classifies each tracked argument into one of four classes —
**identifier**, **bitmap**, **numeric**, **categorical** — and tracks
input coverage for 14 distinct arguments plus output coverage for all
27 syscalls.  This module is the declarative heart of that selection:
everything else (partitioners, variant merging, coverage counting) is
driven by the :data:`REGISTRY` built here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.vfs import constants
from repro.vfs.errors import ERRNO_BY_NAME


class ArgClass(enum.Enum):
    """The four argument classes of Section 3."""

    IDENTIFIER = "identifier"
    BITMAP = "bitmap"
    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


class OutputKind(enum.Enum):
    """How a syscall's successful return value is partitioned."""

    #: Success is one partition (e.g. open returns an fd: "OK (>= 0)").
    FLAG = "flag"
    #: Success returns a byte count, partitioned by powers of two
    #: (read, write, getxattr, lseek offsets).
    SIZE = "size"


@dataclass(frozen=True)
class ArgSpec:
    """One tracked input argument.

    Attributes:
        name: argument name as it appears in trace events.
        arg_class: which of the four classes it belongs to.
        bitmap: for BITMAP args, the flag-name -> bit-value decode table.
        categories: for CATEGORICAL args, the value-name -> value table.
        zero_name: for BITMAP args whose "zero" value is meaningful
            (O_RDONLY == 0): the flag name credited when no access-mode
            bit is set.
        access_mask: for BITMAP args with an enumerated (non-bit) field:
            the mask of that field (O_ACCMODE for open flags).
        access_names: value-within-mask -> flag name for the enumerated
            field.
    """

    name: str
    arg_class: ArgClass
    bitmap: dict[str, int] | None = None
    categories: dict[str, int] | None = None
    zero_name: str | None = None
    access_mask: int = 0
    access_names: dict[int, str] | None = None


@dataclass(frozen=True)
class SyscallSpec:
    """One *base* syscall: tracked args and output space.

    Attributes:
        name: base syscall name (variants are merged into this).
        tracked_args: the input arguments IOCov partitions.
        output_kind: how successes partition (single OK vs size buckets).
        errnos: the errno names this call can return per its manpage —
            the domain of its output space (Figure 4's x-axis).
    """

    name: str
    tracked_args: tuple[ArgSpec, ...]
    output_kind: OutputKind
    errnos: tuple[str, ...]


def _spec(name: str, args: tuple[ArgSpec, ...], kind: OutputKind, errnos: tuple[str, ...]) -> SyscallSpec:
    unknown = [e for e in errnos if e not in ERRNO_BY_NAME]
    if unknown:
        raise ValueError(f"unknown errnos for {name}: {unknown}")
    return SyscallSpec(name=name, tracked_args=args, output_kind=kind, errnos=errnos)


# ---------------------------------------------------------------------------
# Tracked argument definitions (the paper's 14 distinct arguments)
# ---------------------------------------------------------------------------

OPEN_FLAGS_ARG = ArgSpec(
    name="flags",
    arg_class=ArgClass.BITMAP,
    bitmap=dict(constants.OPEN_MODIFIER_FLAGS),
    zero_name="O_RDONLY",
    access_mask=constants.O_ACCMODE,
    access_names={
        constants.O_RDONLY: "O_RDONLY",
        constants.O_WRONLY: "O_WRONLY",
        constants.O_RDWR: "O_RDWR",
    },
)

OPEN_MODE_ARG = ArgSpec(
    name="mode",
    arg_class=ArgClass.BITMAP,
    bitmap=dict(constants.MODE_BIT_NAMES),
    zero_name="0",
)

CHMOD_MODE_ARG = ArgSpec(
    name="mode",
    arg_class=ArgClass.BITMAP,
    bitmap=dict(constants.MODE_BIT_NAMES),
    zero_name="0",
)

MKDIR_MODE_ARG = ArgSpec(
    name="mode",
    arg_class=ArgClass.BITMAP,
    bitmap=dict(constants.MODE_BIT_NAMES),
    zero_name="0",
)

READ_COUNT_ARG = ArgSpec(name="count", arg_class=ArgClass.NUMERIC)
WRITE_COUNT_ARG = ArgSpec(name="count", arg_class=ArgClass.NUMERIC)
LSEEK_OFFSET_ARG = ArgSpec(name="offset", arg_class=ArgClass.NUMERIC)
LSEEK_WHENCE_ARG = ArgSpec(
    name="whence",
    arg_class=ArgClass.CATEGORICAL,
    categories=dict(constants.SEEK_WHENCE_NAMES),
)
TRUNCATE_LENGTH_ARG = ArgSpec(name="length", arg_class=ArgClass.NUMERIC)
CLOSE_FD_ARG = ArgSpec(name="fd", arg_class=ArgClass.IDENTIFIER)
CHDIR_PATH_ARG = ArgSpec(name="filename", arg_class=ArgClass.IDENTIFIER)
XATTR_SIZE_ARG = ArgSpec(name="size", arg_class=ArgClass.NUMERIC)
XATTR_FLAGS_ARG = ArgSpec(
    name="flags",
    arg_class=ArgClass.CATEGORICAL,
    categories={
        "0": 0,
        "XATTR_CREATE": constants.XATTR_CREATE,
        "XATTR_REPLACE": constants.XATTR_REPLACE,
    },
)
GETXATTR_SIZE_ARG = ArgSpec(name="size", arg_class=ArgClass.NUMERIC)

# ---------------------------------------------------------------------------
# Per-syscall manpage errno lists (output-space domains)
# ---------------------------------------------------------------------------

#: open(2) manpage errors — exactly the Figure 4 x-axis.
OPEN_ERRNOS = (
    "EXDEV", "ETXTBSY", "EROFS", "EPERM", "EOVERFLOW", "ENXIO", "ENOTDIR",
    "ENOSPC", "ENOMEM", "ENOENT", "ENODEV", "ENFILE", "ENAMETOOLONG",
    "EMFILE", "ELOOP", "EISDIR", "EINVAL", "EINTR", "EFBIG", "EFAULT",
    "EEXIST", "EDQUOT", "EBUSY", "EBADF", "EAGAIN", "EACCES", "E2BIG",
)

READ_ERRNOS = ("EAGAIN", "EBADF", "EFAULT", "EINTR", "EINVAL", "EIO", "EISDIR")
WRITE_ERRNOS = (
    "EAGAIN", "EBADF", "EDQUOT", "EFAULT", "EFBIG", "EINTR", "EINVAL",
    "EIO", "ENOSPC", "EPERM", "EPIPE",
    # The substrate can freeze/remount-ro between open and write, so a
    # write through an already-open fd can fail with EBUSY/EROFS.
    "EBUSY", "EROFS",
)
LSEEK_ERRNOS = ("EBADF", "EINVAL", "ENXIO", "EOVERFLOW", "ESPIPE")
TRUNCATE_ERRNOS = (
    "EACCES", "EFAULT", "EFBIG", "EINTR", "EINVAL", "EIO", "EISDIR",
    "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOTDIR", "EPERM", "EROFS",
    "ETXTBSY", "EBADF", "EDQUOT", "ENOSPC", "EBUSY",
)
MKDIR_ERRNOS = (
    "EACCES", "EDQUOT", "EEXIST", "EFAULT", "EINVAL", "ELOOP", "EMLINK",
    "ENAMETOOLONG", "ENOENT", "ENOMEM", "ENOSPC", "ENOTDIR", "EPERM",
    "EROFS", "EBADF", "EBUSY",
)
CHMOD_ERRNOS = (
    "EACCES", "EFAULT", "EIO", "ELOOP", "ENAMETOOLONG", "ENOENT",
    "ENOMEM", "ENOTDIR", "EPERM", "EROFS", "EBADF", "EINVAL",
    "EOPNOTSUPP", "EBUSY",
)
CLOSE_ERRNOS = ("EBADF", "EINTR", "EIO", "ENOSPC", "EDQUOT")
CHDIR_ERRNOS = (
    "EACCES", "EFAULT", "EIO", "ELOOP", "ENAMETOOLONG", "ENOENT",
    "ENOMEM", "ENOTDIR", "EBADF",
    # Embedded-NUL paths are rejected by the resolver with EINVAL.
    "EINVAL",
)
SETXATTR_ERRNOS = (
    "EDQUOT", "EEXIST", "ENODATA", "ENOSPC", "ENOTSUP", "EPERM", "ERANGE",
    "EACCES", "EFAULT", "EINVAL", "ELOOP", "ENAMETOOLONG", "ENOENT",
    "ENOTDIR", "E2BIG", "EROFS", "EBADF", "EBUSY",
)
GETXATTR_ERRNOS = (
    "E2BIG", "ENODATA", "ENOTSUP", "ERANGE", "EACCES", "EFAULT", "EINVAL",
    "ELOOP", "ENAMETOOLONG", "ENOENT", "ENOTDIR", "EBADF",
)

# "EOPNOTSUPP" aliases ENOTSUP on Linux; normalize to Python's
# canonical spelling (errno.errorcode[95] == "ENOTSUP") so the domain
# keys match what :func:`repro.vfs.errors.errno_name` emits at
# classification time.
CHMOD_ERRNOS = tuple(
    "ENOTSUP" if name == "EOPNOTSUPP" else name for name in CHMOD_ERRNOS
)
SETXATTR_ERRNOS = tuple(
    "ENOTSUP" if name == "EOPNOTSUPP" else name for name in SETXATTR_ERRNOS
)
GETXATTR_ERRNOS = tuple(
    "ENOTSUP" if name == "EOPNOTSUPP" else name for name in GETXATTR_ERRNOS
)

# ---------------------------------------------------------------------------
# The 11 base syscall specs
# ---------------------------------------------------------------------------

BASE_SYSCALLS: dict[str, SyscallSpec] = {
    spec.name: spec
    for spec in (
        _spec("open", (OPEN_FLAGS_ARG, OPEN_MODE_ARG), OutputKind.FLAG, OPEN_ERRNOS),
        _spec("read", (READ_COUNT_ARG,), OutputKind.SIZE, READ_ERRNOS),
        _spec("write", (WRITE_COUNT_ARG,), OutputKind.SIZE, WRITE_ERRNOS),
        _spec("lseek", (LSEEK_OFFSET_ARG, LSEEK_WHENCE_ARG), OutputKind.SIZE, LSEEK_ERRNOS),
        _spec("truncate", (TRUNCATE_LENGTH_ARG,), OutputKind.FLAG, TRUNCATE_ERRNOS),
        _spec("mkdir", (MKDIR_MODE_ARG,), OutputKind.FLAG, MKDIR_ERRNOS),
        _spec("chmod", (CHMOD_MODE_ARG,), OutputKind.FLAG, CHMOD_ERRNOS),
        _spec("close", (CLOSE_FD_ARG,), OutputKind.FLAG, CLOSE_ERRNOS),
        _spec("chdir", (CHDIR_PATH_ARG,), OutputKind.FLAG, CHDIR_ERRNOS),
        _spec("setxattr", (XATTR_SIZE_ARG, XATTR_FLAGS_ARG), OutputKind.FLAG, SETXATTR_ERRNOS),
        _spec("getxattr", (GETXATTR_SIZE_ARG,), OutputKind.SIZE, GETXATTR_ERRNOS),
    )
}

#: Variant name -> base name.  Together with the 11 base calls these are
#: the paper's 27 traced syscalls.
VARIANT_TO_BASE: dict[str, str] = {
    "openat": "open",
    "creat": "open",
    "openat2": "open",
    "pread64": "read",
    "readv": "read",
    "pwrite64": "write",
    "writev": "write",
    "ftruncate": "truncate",
    "mkdirat": "mkdir",
    "fchmod": "chmod",
    "fchmodat": "chmod",
    "fchdir": "chdir",
    "lsetxattr": "setxattr",
    "fsetxattr": "setxattr",
    "lgetxattr": "getxattr",
    "fgetxattr": "getxattr",
}

#: All 27 traced syscall names (11 base + 16 variants).
TRACKED_SYSCALLS: frozenset[str] = frozenset(BASE_SYSCALLS) | frozenset(VARIANT_TO_BASE)

#: Number of distinct tracked input arguments, summed over base calls.
TRACKED_ARG_COUNT: int = sum(len(spec.tracked_args) for spec in BASE_SYSCALLS.values())

assert len(TRACKED_SYSCALLS) == 27, len(TRACKED_SYSCALLS)
assert TRACKED_ARG_COUNT == 14, TRACKED_ARG_COUNT


def base_name(syscall: str) -> str | None:
    """Map a traced syscall name to its base, or None if untracked."""
    if syscall in BASE_SYSCALLS:
        return syscall
    return VARIANT_TO_BASE.get(syscall)


def spec_for(syscall: str) -> SyscallSpec | None:
    """Return the base spec for a (possibly variant) syscall name."""
    base = base_name(syscall)
    return BASE_SYSCALLS.get(base) if base else None
