"""Output-coverage accounting: success/errno partition counts per syscall.

Output coverage measures the coverage of syscall return values and
error codes — an indirect check that inputs were executed on
meaningfully different file-system states, since many bugs live on exit
and failure paths.  Every one of the 27 traced syscalls (merged into
its base) gets an output space: success (one partition, or size buckets
for byte-count returns) plus one partition per manpage errno.

Observed errnos outside the manpage list are counted under their own
key too — the paper explicitly warns the manpage "may not be consistent
with the actual implementation" — and surfaced separately by
:meth:`SyscallOutputCoverage.undocumented_errnos`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.argspec import BASE_SYSCALLS, SyscallSpec
from repro.core.partition import OK_KEY, OutputPartitioner


#: Cap on the per-syscall (retval, errno) -> keys memo; retvals repeat
#: heavily (fd numbers, common byte counts), so most records hit.
_OUTPUT_CACHE_CAP = 65536


@dataclass
class SyscallOutputCoverage:
    """Output-coverage state for one base syscall."""

    syscall: str
    spec: SyscallSpec
    partitioner: OutputPartitioner
    counts: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        self._classify_cache: dict[tuple[int, int], tuple[str, ...]] = {}

    def __getstate__(self) -> dict:
        # Derived state: don't ship the memo across process boundaries.
        state = self.__dict__.copy()
        state["_classify_cache"] = {}
        return state

    def record(self, retval: int, errno: int = 0) -> None:
        cache_key = (retval, errno)
        keys = self._classify_cache.get(cache_key)
        if keys is None:
            keys = tuple(self.partitioner.classify(retval, errno))
            if len(self._classify_cache) < _OUTPUT_CACHE_CAP:
                self._classify_cache[cache_key] = keys
        counts = self.counts
        for key in keys:
            counts[key] += 1

    # -- merging ------------------------------------------------------------

    def merge(self, other: "SyscallOutputCoverage") -> "SyscallOutputCoverage":
        """Fold another shard's state into this one (exact: counts add)."""
        if self.syscall != other.syscall:
            raise ValueError(f"cannot merge {other.syscall} into {self.syscall}")
        self.counts.update(other.counts)
        return self

    # -- queries ------------------------------------------------------------

    def domain(self) -> list[str]:
        return self.partitioner.domain()

    def frequencies(self) -> dict[str, int]:
        """Domain-ordered counts, then any observed out-of-domain keys."""
        result = {key: self.counts.get(key, 0) for key in self.domain()}
        for key, count in sorted(self.counts.items()):
            result.setdefault(key, count)
        return result

    def success_count(self) -> int:
        return sum(
            count for key, count in self.counts.items() if key.startswith(OK_KEY)
        )

    def error_counts(self) -> dict[str, int]:
        """Observed count per errno name (documented and not)."""
        return {
            key: count
            for key, count in sorted(self.counts.items())
            if not key.startswith(OK_KEY)
        }

    def tested_errnos(self) -> list[str]:
        return [name for name, count in self.error_counts().items() if count > 0]

    def untested_errnos(self) -> list[str]:
        """Documented errnos this test suite never triggered."""
        return [name for name in self.spec.errnos if self.counts.get(name, 0) == 0]

    def undocumented_errnos(self) -> list[str]:
        """Observed errnos absent from the manpage domain."""
        documented = set(self.spec.errnos)
        return [
            name
            for name in self.tested_errnos()
            if name not in documented
        ]

    def coverage_ratio(self) -> float:
        """Fraction of documented output partitions exercised."""
        domain = self.domain()
        if not domain:
            return 1.0
        tested = sum(1 for key in domain if self.counts.get(key, 0) > 0)
        return tested / len(domain)

    @property
    def total_observations(self) -> int:
        return sum(self.counts.values())


class OutputCoverage:
    """Output-coverage state across all tracked syscalls."""

    def __init__(self, registry: Mapping[str, SyscallSpec] | None = None) -> None:
        self.registry = dict(registry) if registry is not None else dict(BASE_SYSCALLS)
        self._syscalls: dict[str, SyscallOutputCoverage] = {
            name: SyscallOutputCoverage(
                syscall=name, spec=spec, partitioner=OutputPartitioner(spec)
            )
            for name, spec in self.registry.items()
        }

    def record(self, base: str, retval: int, errno: int = 0) -> None:
        coverage = self._syscalls.get(base)
        if coverage is not None:
            coverage.record(retval, errno)

    # -- merging ------------------------------------------------------------

    def merge(self, other: "OutputCoverage") -> "OutputCoverage":
        """Fold another shard's output-coverage state into this one.

        Exact: per-partition counts add, so shard merges reproduce the
        single-pass state bit for bit.

        Raises:
            ValueError: the two states track different syscalls.
        """
        if set(self._syscalls) != set(other._syscalls):
            raise ValueError("cannot merge output coverage over different registries")
        for name, coverage in self._syscalls.items():
            coverage.merge(other._syscalls[name])
        return self

    # -- queries ------------------------------------------------------------

    def syscall(self, name: str) -> SyscallOutputCoverage:
        """Coverage for one base syscall.

        Raises:
            KeyError: the syscall is not tracked.
        """
        return self._syscalls[name]

    def tracked_syscalls(self) -> list[str]:
        return sorted(self._syscalls)

    def all_untested_errnos(self) -> dict[str, list[str]]:
        return {
            name: coverage.untested_errnos()
            for name, coverage in sorted(self._syscalls.items())
            if coverage.untested_errnos()
        }

    def summary(self) -> dict[str, float]:
        return {
            name: coverage.coverage_ratio()
            for name, coverage in sorted(self._syscalls.items())
        }
