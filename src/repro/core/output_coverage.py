"""Output-coverage accounting: success/errno partition counts per syscall.

Output coverage measures the coverage of syscall return values and
error codes — an indirect check that inputs were executed on
meaningfully different file-system states, since many bugs live on exit
and failure paths.  Every one of the 27 traced syscalls (merged into
its base) gets an output space: success (one partition, or size buckets
for byte-count returns) plus one partition per manpage errno.

Observed errnos outside the manpage list are counted under their own
key too — the paper explicitly warns the manpage "may not be consistent
with the actual implementation" — and surfaced separately by
:meth:`SyscallOutputCoverage.undocumented_errnos`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.argspec import BASE_SYSCALLS, SyscallSpec
from repro.core.partition import OK_KEY, OutputPartitioner


@dataclass
class SyscallOutputCoverage:
    """Output-coverage state for one base syscall."""

    syscall: str
    spec: SyscallSpec
    partitioner: OutputPartitioner
    counts: Counter = field(default_factory=Counter)

    def record(self, retval: int, errno: int = 0) -> None:
        for key in self.partitioner.classify(retval, errno):
            self.counts[key] += 1

    # -- queries ------------------------------------------------------------

    def domain(self) -> list[str]:
        return self.partitioner.domain()

    def frequencies(self) -> dict[str, int]:
        """Domain-ordered counts, then any observed out-of-domain keys."""
        result = {key: self.counts.get(key, 0) for key in self.domain()}
        for key, count in sorted(self.counts.items()):
            result.setdefault(key, count)
        return result

    def success_count(self) -> int:
        return sum(
            count for key, count in self.counts.items() if key.startswith(OK_KEY)
        )

    def error_counts(self) -> dict[str, int]:
        """Observed count per errno name (documented and not)."""
        return {
            key: count
            for key, count in sorted(self.counts.items())
            if not key.startswith(OK_KEY)
        }

    def tested_errnos(self) -> list[str]:
        return [name for name, count in self.error_counts().items() if count > 0]

    def untested_errnos(self) -> list[str]:
        """Documented errnos this test suite never triggered."""
        return [name for name in self.spec.errnos if self.counts.get(name, 0) == 0]

    def undocumented_errnos(self) -> list[str]:
        """Observed errnos absent from the manpage domain."""
        documented = set(self.spec.errnos)
        return [
            name
            for name in self.tested_errnos()
            if name not in documented
        ]

    def coverage_ratio(self) -> float:
        """Fraction of documented output partitions exercised."""
        domain = self.domain()
        if not domain:
            return 1.0
        tested = sum(1 for key in domain if self.counts.get(key, 0) > 0)
        return tested / len(domain)

    @property
    def total_observations(self) -> int:
        return sum(self.counts.values())


class OutputCoverage:
    """Output-coverage state across all tracked syscalls."""

    def __init__(self, registry: Mapping[str, SyscallSpec] | None = None) -> None:
        self.registry = dict(registry) if registry is not None else dict(BASE_SYSCALLS)
        self._syscalls: dict[str, SyscallOutputCoverage] = {
            name: SyscallOutputCoverage(
                syscall=name, spec=spec, partitioner=OutputPartitioner(spec)
            )
            for name, spec in self.registry.items()
        }

    def record(self, base: str, retval: int, errno: int = 0) -> None:
        coverage = self._syscalls.get(base)
        if coverage is not None:
            coverage.record(retval, errno)

    # -- queries ------------------------------------------------------------

    def syscall(self, name: str) -> SyscallOutputCoverage:
        """Coverage for one base syscall.

        Raises:
            KeyError: the syscall is not tracked.
        """
        return self._syscalls[name]

    def tracked_syscalls(self) -> list[str]:
        return sorted(self._syscalls)

    def all_untested_errnos(self) -> dict[str, list[str]]:
        return {
            name: coverage.untested_errnos()
            for name, coverage in sorted(self._syscalls.items())
            if coverage.untested_errnos()
        }

    def summary(self) -> dict[str, float]:
        return {
            name: coverage.coverage_ratio()
            for name, coverage in sorted(self._syscalls.items())
        }
