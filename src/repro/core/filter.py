"""Trace filtering: scoping analysis to the tester's mount point.

LTTng records *every* syscall the traced processes issue; a file-system
tester also touches its own binaries, logs, /proc, and temp files.  The
paper's IOCov uses a set of regular expressions (based on the tester's
mount-point pathname, e.g. ``/mnt/test`` for xfstests) to drop those
irrelevant records before analysis, and notes this regex is the only
per-tester setting.

Path-carrying syscalls are matched directly.  Fd-carrying syscalls
(read, write, close, …) have no path in their record, so the filter
tracks the fd table: an ``open``-family success whose path matched
registers its returned fd; subsequent fd-based events pass the filter
while that fd is live; ``close`` retires it.  This mirrors how any real
trace consumer must resolve fds to decide relevance.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Pattern

from repro.trace.events import SyscallEvent

#: Events that install an fd on success, keyed by the arg holding the path.
_OPEN_LIKE = {"open": "pathname", "openat": "pathname", "openat2": "pathname", "creat": "pathname"}

#: Events that carry an fd and inherit relevance from the fd's origin.
_FD_ARGS = ("fd", "dfd")

#: Argument names a path can travel under for non-open syscalls.
_PATH_KEYS = ("pathname", "path", "filename", "oldpath", "linkpath")

#: Events with neither path nor fd (sync covers the whole system).
_GLOBAL_EVENTS = frozenset({"sync"})


class TraceFilter:
    """Keeps events that touch the tester's mount point.

    Args:
        include: regex (string or compiled) a path must match to be in
            scope — typically ``r"^/mnt/test(/|$)"``.
        exclude: optional regex that overrides include (e.g. the
            tester's own scratch logs below the mount point).
        keep_global: whether path-less, fd-less events (sync) pass.
        keep_failed_opens: a failed open *with a matching path* is still
            a relevant input/output record; default True.
    """

    #: Cap on the path -> in-scope decision memo (paths repeat heavily).
    SCOPE_CACHE_CAP = 65536

    def __init__(
        self,
        include: str | Pattern[str],
        exclude: str | Pattern[str] | None = None,
        *,
        keep_global: bool = True,
        keep_failed_opens: bool = True,
    ) -> None:
        self.include = re.compile(include) if isinstance(include, str) else include
        self.exclude = re.compile(exclude) if isinstance(exclude, str) else exclude
        self.keep_global = keep_global
        self.keep_failed_opens = keep_failed_opens
        self._live_fds: dict[int, set[int]] = {}
        self._scope_cache: dict[str, bool] = {}
        self.dropped = 0

    @classmethod
    def for_mount_point(cls, mount_point: str, **kwargs) -> "TraceFilter":
        """Build the standard filter for a tester's mount point."""
        escaped = re.escape(mount_point.rstrip("/"))
        return cls(include=rf"^{escaped}(/|$)", **kwargs)

    # -- path matching -----------------------------------------------------

    def _match_path(self, path: str) -> bool:
        """Uncached regex decision (the pure function the memo caches)."""
        if self.exclude is not None and self.exclude.search(path):
            return False
        return bool(self.include.search(path))

    def path_in_scope(self, path: str) -> bool:
        cached = self._scope_cache.get(path)
        if cached is None:
            cached = self._match_path(path)
            if len(self._scope_cache) < self.SCOPE_CACHE_CAP:
                self._scope_cache[path] = cached
        return cached

    # -- fd-table introspection (used by the sharded fixup replay) -----------

    def register_fd(self, pid: int, fd: int) -> None:
        """Mark *fd* live for *pid*, as a matching open would."""
        self._fds_for(pid).add(fd)

    def retire_fd(self, pid: int, fd: int) -> None:
        """Drop *fd* from *pid*'s live table, as a tracked close would."""
        self._fds_for(pid).discard(fd)

    # -- event filtering ----------------------------------------------------

    def _fds_for(self, pid: int) -> set[int]:
        return self._live_fds.setdefault(pid, set())

    def admit(self, event: SyscallEvent) -> bool:
        """Decide one event, updating fd-tracking state."""
        return self.admit_record(event.name, event.args, event.retval, event.pid)

    def admit_record(self, name: str, args, retval: int, pid: int) -> bool:
        """Decide one (name, args, retval, pid) record.

        The field-level twin of :meth:`admit`: batch consumers hold
        events as columns/rows rather than objects, and this entry
        point lets them skip materializing a :class:`SyscallEvent`
        per record on the hot path.
        """
        fds = self._live_fds.setdefault(pid, set())

        path_arg = _OPEN_LIKE.get(name)
        if path_arg is not None:
            path = args.get(path_arg)
            if path is None and retval < 0:
                # NULL-pointer path (EFAULT): the record carries no path
                # to scope by, so it cannot be attributed away from the
                # tester; keep it like any other failed open.
                return self.keep_failed_opens
            relevant = isinstance(path, str) and self.path_in_scope(path)
            if relevant and retval >= 0:
                fds.add(retval)
            if relevant and retval < 0:
                return self.keep_failed_opens
            return relevant

        if name == "close":
            fd = args.get("fd")
            if isinstance(fd, int) and fd in fds:
                fds.discard(fd)
                return True
            return False

        if name in ("dup", "dup2"):
            # A duplicate of a tracked fd is itself tracked.
            source = args.get("fildes" if name == "dup" else "oldfd")
            if isinstance(source, int) and source in fds:
                if retval >= 0:
                    fds.add(retval)
                return True
            return False

        # chdir-style: path argument under other names.
        for key in _PATH_KEYS:
            value = args.get(key)
            if isinstance(value, str):
                return self.path_in_scope(value)

        for key in _FD_ARGS:
            fd = args.get(key)
            if isinstance(fd, int):
                return fd in fds

        if name in _GLOBAL_EVENTS:
            return self.keep_global
        return False

    def filter(self, events: Iterable[SyscallEvent]) -> Iterator[SyscallEvent]:
        """Yield in-scope events; resets fd state first."""
        self.reset()
        for event in events:
            if self.admit(event):
                yield event
            else:
                self.dropped += 1

    def reset(self) -> None:
        self._live_fds.clear()
        self.dropped = 0


class AcceptAllFilter:
    """No-op filter for traces already scoped at capture time."""

    dropped = 0

    def filter(self, events: Iterable[SyscallEvent]) -> Iterator[SyscallEvent]:
        return iter(events)

    def admit(self, event: SyscallEvent) -> bool:
        return True

    def admit_record(self, name: str, args, retval: int, pid: int) -> bool:
        return True

    def reset(self) -> None:
        return None
