"""Trace filtering: scoping analysis to the tester's mount point.

LTTng records *every* syscall the traced processes issue; a file-system
tester also touches its own binaries, logs, /proc, and temp files.  The
paper's IOCov uses a set of regular expressions (based on the tester's
mount-point pathname, e.g. ``/mnt/test`` for xfstests) to drop those
irrelevant records before analysis, and notes this regex is the only
per-tester setting.

Path-carrying syscalls are matched directly.  Fd-carrying syscalls
(read, write, close, …) have no path in their record, so the filter
tracks the fd table: an ``open``-family success whose path matched
registers its returned fd; subsequent fd-based events pass the filter
while that fd is live; ``close`` retires it.  This mirrors how any real
trace consumer must resolve fds to decide relevance.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Pattern

from repro.trace.events import SyscallEvent

#: Events that install an fd on success, keyed by the arg holding the path.
_OPEN_LIKE = {"open": "pathname", "openat": "pathname", "openat2": "pathname", "creat": "pathname"}

#: Events that carry an fd and inherit relevance from the fd's origin.
_FD_ARGS = ("fd", "dfd")

#: Events with neither path nor fd (sync covers the whole system).
_GLOBAL_EVENTS = frozenset({"sync"})


class TraceFilter:
    """Keeps events that touch the tester's mount point.

    Args:
        include: regex (string or compiled) a path must match to be in
            scope — typically ``r"^/mnt/test(/|$)"``.
        exclude: optional regex that overrides include (e.g. the
            tester's own scratch logs below the mount point).
        keep_global: whether path-less, fd-less events (sync) pass.
        keep_failed_opens: a failed open *with a matching path* is still
            a relevant input/output record; default True.
    """

    def __init__(
        self,
        include: str | Pattern[str],
        exclude: str | Pattern[str] | None = None,
        *,
        keep_global: bool = True,
        keep_failed_opens: bool = True,
    ) -> None:
        self.include = re.compile(include) if isinstance(include, str) else include
        self.exclude = re.compile(exclude) if isinstance(exclude, str) else exclude
        self.keep_global = keep_global
        self.keep_failed_opens = keep_failed_opens
        self._live_fds: dict[int, set[int]] = {}
        self.dropped = 0

    @classmethod
    def for_mount_point(cls, mount_point: str, **kwargs) -> "TraceFilter":
        """Build the standard filter for a tester's mount point."""
        escaped = re.escape(mount_point.rstrip("/"))
        return cls(include=rf"^{escaped}(/|$)", **kwargs)

    # -- path matching -----------------------------------------------------

    def path_in_scope(self, path: str) -> bool:
        if self.exclude is not None and self.exclude.search(path):
            return False
        return bool(self.include.search(path))

    # -- event filtering ----------------------------------------------------

    def _fds_for(self, pid: int) -> set[int]:
        return self._live_fds.setdefault(pid, set())

    def admit(self, event: SyscallEvent) -> bool:
        """Decide one event, updating fd-tracking state."""
        fds = self._fds_for(event.pid)

        if event.name in _OPEN_LIKE:
            path = event.arg(_OPEN_LIKE[event.name])
            if path is None and not event.ok:
                # NULL-pointer path (EFAULT): the record carries no path
                # to scope by, so it cannot be attributed away from the
                # tester; keep it like any other failed open.
                return self.keep_failed_opens
            relevant = isinstance(path, str) and self.path_in_scope(path)
            if relevant and event.ok:
                fds.add(event.retval)
            if relevant and not event.ok:
                return self.keep_failed_opens
            return relevant

        if event.name == "close":
            fd = event.arg("fd")
            if isinstance(fd, int) and fd in fds:
                fds.discard(fd)
                return True
            return False

        if event.name in ("dup", "dup2"):
            # A duplicate of a tracked fd is itself tracked.
            source = event.arg("fildes" if event.name == "dup" else "oldfd")
            if isinstance(source, int) and source in fds:
                if event.ok:
                    fds.add(event.retval)
                return True
            return False

        # chdir-style: path argument under other names.
        for key in ("pathname", "path", "filename", "oldpath", "linkpath"):
            value = event.arg(key)
            if isinstance(value, str):
                return self.path_in_scope(value)

        for key in _FD_ARGS:
            fd = event.arg(key)
            if isinstance(fd, int):
                return fd in fds

        if event.name in _GLOBAL_EVENTS:
            return self.keep_global
        return False

    def filter(self, events: Iterable[SyscallEvent]) -> Iterator[SyscallEvent]:
        """Yield in-scope events; resets fd state first."""
        self.reset()
        for event in events:
            if self.admit(event):
                yield event
            else:
                self.dropped += 1

    def reset(self) -> None:
        self._live_fds.clear()
        self.dropped = 0


class AcceptAllFilter:
    """No-op filter for traces already scoped at capture time."""

    dropped = 0

    def filter(self, events: Iterable[SyscallEvent]) -> Iterator[SyscallEvent]:
        return iter(events)

    def admit(self, event: SyscallEvent) -> bool:
        return True

    def reset(self) -> None:
        return None
