"""Statistical calibration profiles for the two simulated test suites.

The paper's evaluation traces the *real* CrashMonkey and xfstests; this
reproduction cannot run them (they need a Linux kernel), so the suite
simulators are calibrated to emit syscall streams whose coverage
figures match everything the paper reports:

* Figure 2 — open-flag frequencies (O_RDONLY: 7,924 for CrashMonkey,
  4,099,770 for xfstests; xfstests larger for *every* flag; several
  flags untested by both, including O_LARGEFILE);
* Table 1 — the 1–6 flag-combination-size percentages, both over all
  opens and restricted to combinations containing O_RDONLY;
* Figure 3 — write-size buckets (xfstests larger in every interval;
  maximum tested size 258 MiB; nothing above; size 0 barely tested);
* Figure 4 — open output codes (xfstests covers more error cases than
  CrashMonkey except ENOTDIR; many errnos untested by both).

Each profile lists exact *flag combinations* with target counts, so the
per-flag totals and the combination-size rows are both consequences of
one table.  The combination counts were solved from Table 1's two rows
(all-flags and O_RDONLY-restricted) — see ``tests/testsuites/
test_profiles.py`` which re-derives the percentages and asserts they
match the paper within 0.3 points.

Counts are at *paper scale*; suites apply a ``scale`` factor (keeping
every nonzero partition nonzero) and record it so analyses can
normalize back to effective paper-scale frequencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: 2**28 is 256 MiB; the paper annotates the actual maximum as 258 MiB.
MAX_WRITE_SIZE = 258 * 1024 * 1024


@dataclass(frozen=True)
class SuiteProfile:
    """Calibration targets for one test suite.

    Attributes:
        name: suite label.
        open_combinations: flag-combination tuple -> target open count.
        write_sizes: exact write size in bytes -> target write count
            (one representative size per Figure 3 bucket).
        open_errors: errno name -> target count of failing opens.
        aux_ops: coarse per-op extra activity (reads, seeks, xattrs …)
            that shapes the remaining, figure-less distributions.
    """

    name: str
    open_combinations: dict[tuple[str, ...], int]
    write_sizes: dict[int, int]
    open_errors: dict[str, int]
    aux_ops: dict[str, int] = field(default_factory=dict)

    # -- derived views -----------------------------------------------------

    def total_opens(self) -> int:
        return sum(self.open_combinations.values())

    def flag_frequencies(self) -> dict[str, int]:
        """Per-flag open counts implied by the combination table."""
        freq: dict[str, int] = {}
        for combo, count in self.open_combinations.items():
            for flag in combo:
                freq[flag] = freq.get(flag, 0) + count
        return freq

    def combination_size_percentages(
        self, required_flag: str | None = None
    ) -> dict[int, float]:
        """Table 1 rows implied by the combination table."""
        sizes: dict[int, int] = {}
        for combo, count in self.open_combinations.items():
            if required_flag is not None and required_flag not in combo:
                continue
            sizes[len(combo)] = sizes.get(len(combo), 0) + count
        total = sum(sizes.values())
        if not total:
            return {}
        return {size: 100.0 * count / total for size, count in sorted(sizes.items())}

    def write_bucket_frequencies(self) -> dict[int | str, int]:
        """Figure 3 view: log2 bucket (or "zero") -> count."""
        buckets: dict[int | str, int] = {}
        for size, count in self.write_sizes.items():
            key: int | str = "zero" if size == 0 else size.bit_length() - 1
            buckets[key] = buckets.get(key, 0) + count
        return buckets

    def scaled(self, scale: float) -> "SuiteProfile":
        """Scale all counts, keeping every nonzero target >= 1."""
        if scale <= 0:
            raise ValueError("scale must be positive")

        def scale_map(table: dict) -> dict:
            return {
                key: max(1, round(count * scale))
                for key, count in table.items()
                if count > 0
            }

        return SuiteProfile(
            name=self.name,
            open_combinations=scale_map(self.open_combinations),
            write_sizes=scale_map(self.write_sizes),
            open_errors=scale_map(self.open_errors),
            aux_ops=scale_map(self.aux_ops),
        )


# ---------------------------------------------------------------------------
# CrashMonkey (all of seq-1's 300 workloads + generic tests, Ext4)
# ---------------------------------------------------------------------------

#: CrashMonkey's open-flag combination targets.  O_RDONLY-containing
#: combinations total exactly 7,924 (Figure 2); sizes split 9.3 / 2.8 /
#: 21.9 / 65.5 / 0.5 % (Table 1, O_RDONLY row), and the 499
#: non-O_RDONLY opens bring the all-flags row to 9.3 / 2.8 / 22.1 /
#: 65.3 / 0.5 %.  CrashMonkey's bounded black-box workloads leave most
#: exotic flags untested entirely.
CRASHMONKEY_OPEN_COMBINATIONS: dict[tuple[str, ...], int] = {
    # O_RDONLY-containing combinations (total 7,925 after rounding: the
    # solver rounds 7,924 * row fractions; 736+222+1734+5193+40).
    ("O_RDONLY",): 736,
    ("O_RDONLY", "O_DIRECTORY"): 222,
    # 3-flag read-side combination kept free of O_CREAT/O_DIRECT/O_SYNC
    # so O_RDONLY stays the most-used flag overall (Figure 2).
    ("O_RDONLY", "O_APPEND", "O_DIRECTORY"): 1734,
    ("O_RDONLY", "O_CREAT", "O_DIRECT", "O_SYNC"): 5192,
    ("O_RDONLY", "O_CREAT", "O_TRUNC", "O_DIRECT", "O_SYNC"): 40,
    # non-O_RDONLY combinations (1,499 total)
    ("O_WRONLY",): 139,
    ("O_RDWR", "O_APPEND"): 42,
    ("O_WRONLY", "O_CREAT", "O_TRUNC"): 347,
    ("O_RDWR", "O_CREAT", "O_DIRECT", "O_SYNC"): 964,
    ("O_WRONLY", "O_CREAT", "O_TRUNC", "O_DIRECT", "O_SYNC"): 7,
}

#: CrashMonkey exercises few write sizes (Figure 3): a handful of
#: buckets, orders of magnitude below xfstests everywhere, and never a
#: zero-byte write.
CRASHMONKEY_WRITE_SIZES: dict[int, int] = {
    4: 40,            # 2^2 bucket
    100: 120,         # 2^6 bucket
    512: 300,         # 2^9 bucket
    4096: 2400,       # 2^12 bucket (block-sized appends)
    8192: 800,        # 2^13 bucket
    65536: 150,       # 2^16 bucket
    1048576: 30,      # 2^20 bucket
}

#: Figure 4: CrashMonkey reaches only a few open error codes — and is
#: the *only* suite ahead on ENOTDIR.
CRASHMONKEY_OPEN_ERRORS: dict[str, int] = {
    "ENOENT": 280,
    "EEXIST": 45,
    "ENOTDIR": 380,
    "EISDIR": 12,
}

CRASHMONKEY_AUX_OPS: dict[str, int] = {
    "read": 4200,
    "lseek": 900,
    "truncate": 340,
    "mkdir": 620,
    "chmod": 0,
    "chdir": 0,
    "setxattr": 0,
    "getxattr": 0,
    "fsync": 5200,
    "sync": 600,
}

CRASHMONKEY_PROFILE = SuiteProfile(
    name="CrashMonkey",
    open_combinations=CRASHMONKEY_OPEN_COMBINATIONS,
    write_sizes=CRASHMONKEY_WRITE_SIZES,
    open_errors=CRASHMONKEY_OPEN_ERRORS,
    aux_ops=CRASHMONKEY_AUX_OPS,
)

# ---------------------------------------------------------------------------
# xfstests (706 generic + 308 Ext4-specific tests)
# ---------------------------------------------------------------------------

#: xfstests open-flag combination targets.  O_RDONLY-containing
#: combinations total exactly 4,099,770; sizes split 6.0 / 30.8 / 10.5 /
#: 51.9 / 0.5 / 0.3 % (Table 1 O_RDONLY row); 1.8 M non-O_RDONLY opens
#: bring the all-flags row to 6.1 / 28.1 / 18.2 / 46.7 / 0.5 / 0.4 %.
XFSTESTS_OPEN_COMBINATIONS: dict[tuple[str, ...], int] = {
    # O_RDONLY-containing (4,099,770 total)
    ("O_RDONLY",): 245986,
    ("O_RDONLY", "O_CLOEXEC"): 700000,
    ("O_RDONLY", "O_DIRECTORY"): 362729,
    ("O_RDONLY", "O_NOFOLLOW"): 200000,
    ("O_RDONLY", "O_DIRECTORY", "O_CLOEXEC"): 230476,
    ("O_RDONLY", "O_CREAT", "O_NONBLOCK"): 100000,
    ("O_RDONLY", "O_DIRECT", "O_CLOEXEC"): 100000,
    ("O_RDONLY", "O_CREAT", "O_DIRECT", "O_SYNC"): 1000000,
    ("O_RDONLY", "O_CREAT", "O_TRUNC", "O_NONBLOCK"): 627781,
    ("O_RDONLY", "O_DIRECTORY", "O_NOFOLLOW", "O_CLOEXEC"): 500000,
    ("O_RDONLY", "O_CREAT", "O_TRUNC", "O_DIRECT", "O_SYNC"): 20499,
    ("O_RDONLY", "O_CREAT", "O_EXCL", "O_TRUNC", "O_DIRECT", "O_SYNC"): 12299,
    # non-O_RDONLY (1,800,000 total)
    ("O_WRONLY",): 80000,
    ("O_RDWR",): 33181,
    ("O_WRONLY", "O_CREAT"): 200000,
    ("O_RDWR", "O_APPEND"): 100000,
    ("O_WRONLY", "O_NONBLOCK"): 97685,
    ("O_WRONLY", "O_CREAT", "O_TRUNC"): 400000,
    ("O_RDWR", "O_CREAT", "O_EXCL"): 141139,
    ("O_WRONLY", "O_APPEND", "O_DSYNC"): 100000,
    ("O_WRONLY", "O_CREAT", "O_TRUNC", "O_CLOEXEC"): 300000,
    ("O_RDWR", "O_CREAT", "O_DIRECT", "O_SYNC"): 227801,
    ("O_WRONLY", "O_CREAT", "O_APPEND", "O_NOCTTY"): 100000,
    ("O_RDWR", "O_CREAT", "O_EXCL", "O_DIRECT", "O_DSYNC"): 8941,
    ("O_WRONLY", "O_CREAT", "O_EXCL", "O_TRUNC", "O_NOFOLLOW", "O_CLOEXEC"): 11253,
}

#: xfstests write sizes: every bucket from 1 byte through the 2^28
#: interval (the 258 MiB maximum lands there), nothing larger, and a
#: small number of zero-byte writes.  Block-sized I/O (2^12) dominates.
XFSTESTS_WRITE_SIZES: dict[int, int] = {
    0: 800,
    1: 2000,
    2: 1500,
    4: 3000,
    8: 4000,
    16: 6000,
    32: 8000,
    64: 10000,
    128: 15000,
    256: 25000,
    512: 60000,
    1024: 120000,
    2048: 200000,
    4096: 900000,
    8192: 400000,
    16384: 250000,
    32768: 150000,
    65536: 120000,
    131072: 80000,
    262144: 50000,
    524288: 30000,
    1048576: 20000,
    2097152: 10000,
    4194304: 5000,
    8388608: 2000,
    16777216: 1000,
    33554432: 400,
    67108864: 150,
    134217728: 40,
    MAX_WRITE_SIZE: 12,
}

#: Figure 4: xfstests reaches many more open error codes; counts span
#: several decades.  Errnos absent here (and from CrashMonkey's table)
#: are the figure's untested codes: EXDEV, EOVERFLOW, ENXIO, ENOMEM,
#: ENODEV, ENFILE, EINTR, EFBIG, EBADF, EAGAIN, E2BIG.
XFSTESTS_OPEN_ERRORS: dict[str, int] = {
    "ENOENT": 52000,
    "EEXIST": 9000,
    "EACCES": 3500,
    "EISDIR": 1200,
    "ENOTDIR": 200,       # the one code where CrashMonkey is ahead
    "ENAMETOOLONG": 700,
    "ELOOP": 650,
    "EINVAL": 300,
    "ENOSPC": 180,
    "EROFS": 90,
    "EDQUOT": 40,
    "EPERM": 25,
    "ETXTBSY": 12,
    "EBUSY": 8,
    "EFAULT": 6,
    "EMFILE": 4,
}

XFSTESTS_AUX_OPS: dict[str, int] = {
    "read": 2400000,
    "lseek": 800000,
    "truncate": 90000,
    "mkdir": 150000,
    "chmod": 60000,
    "chdir": 25000,
    "setxattr": 45000,
    "getxattr": 70000,
    "fsync": 180000,
    "sync": 12000,
}

XFSTESTS_PROFILE = SuiteProfile(
    name="xfstests",
    open_combinations=XFSTESTS_OPEN_COMBINATIONS,
    write_sizes=XFSTESTS_WRITE_SIZES,
    open_errors=XFSTESTS_OPEN_ERRORS,
    aux_ops=XFSTESTS_AUX_OPS,
)

#: Flags untested by both suites in Figure 2 — developers can target
#: these with new tests (the paper cites an O_LARGEFILE bug).
UNTESTED_BY_BOTH = ("O_ASYNC", "O_LARGEFILE", "O_NOATIME", "O_PATH", "O_TMPFILE")

#: The paper's Figure 5 TCD crossover: below a uniform per-flag target
#: of about this many tests, CrashMonkey's TCD is lower; above it,
#: xfstests wins.
PAPER_TCD_CROSSOVER = 5237.0
