"""CrashMonkey substrate: bounded black-box crash-consistency testing.

CrashMonkey (Mohan et al., OSDI '18) generates small workloads over a
bounded set of operations and files ("seq-1": every workload is one
core operation plus persistence ops), simulates a crash at a
persistence point, remounts, and checks that everything acknowledged as
persisted survived.  The paper traces "all of seq-1's 300 workloads and
all generic tests" against Ext4.

This module reproduces that tester against the in-memory VFS:

* :class:`Seq1Generator` enumerates 300 deterministic seq-1 workloads
  (core op x target file x persistence mode);
* each workload runs in a private directory, takes a crash at its
  persistence point via :class:`~repro.vfs.crash.CrashSimulator`, and
  runs an oracle check over the remounted state;
* a handful of generic crash-consistency scenarios (rename
  atomicity, append durability, directory-entry durability) join them;
* afterwards the calibration driver tops the trace up to the
  CrashMonkey statistical profile from the paper's figures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.testsuites.base import SuiteContext, TestSuite, Workload
from repro.testsuites.calibration import CalibrationDriver
from repro.testsuites.profiles import CRASHMONKEY_PROFILE
from repro.trace.recorder import TraceRecorder
from repro.vfs import constants
from repro.vfs.filesystem import FileSystem

#: CrashMonkey's write flags, chosen from the calibration profile's
#: writable combinations so mechanistic usage counts toward the target.
DWRITE_FLAGS = (
    constants.O_RDWR | constants.O_CREAT | constants.O_DIRECT | constants.O_SYNC
)

#: Core operations of the seq-1 space.
SEQ1_OPS = (
    "creat",
    "mkdir",
    "write",
    "dwrite",
    "append",
    "truncate",
    "unlink",
    "rmdir",
    "rename",
    "symlink",
)

#: Target files within each workload's private directory.
SEQ1_TARGETS = ("foo", "bar", "A/foo")

#: Persistence modes applied after the core op.
SEQ1_PERSIST = ("none", "fsync", "fdatasync", "sync")

#: I/O sizes enumerated for the data-path ops (CrashMonkey's bounded
#: parameter space); metadata ops ignore the size but are still
#: enumerated with it, which is how the tool reaches its 300 workloads.
SEQ1_SIZES = (512, 4096, 65536)

#: seq-1 workload count reported in the paper.
SEQ1_WORKLOAD_COUNT = 300


@dataclass(frozen=True)
class Seq1Spec:
    """One seq-1 workload: core op, target, persistence mode, I/O size."""

    index: int
    op: str
    target: str
    persist: str
    size: int = 4096

    @property
    def name(self) -> str:
        return (
            f"seq1-{self.index:03d}-{self.op}-"
            f"{self.target.replace('/', '_')}-{self.persist}-{self.size}"
        )


class Seq1Generator:
    """Deterministic enumeration of the 300 seq-1 workloads."""

    def __iter__(self) -> Iterator[Seq1Spec]:
        combos = itertools.product(SEQ1_OPS, SEQ1_TARGETS, SEQ1_PERSIST, SEQ1_SIZES)
        for index, (op, target, persist, size) in enumerate(
            itertools.islice(combos, SEQ1_WORKLOAD_COUNT)
        ):
            yield Seq1Spec(
                index=index, op=op, target=target, persist=persist, size=size
            )


class CrashConsistencyViolation(AssertionError):
    """The oracle found persisted state missing after the crash."""


class CrashMonkeySuite(TestSuite):
    """The simulated CrashMonkey tester.

    Args:
        scale: statistical-profile scale factor (1.0 = the paper's
            absolute open counts; CrashMonkey is small enough to run at
            full scale).
        run_seq1: include the 300 seq-1 workloads.
        run_generic: include the generic crash-consistency tests.
    """

    name = "CrashMonkey"
    mount_point = "/mnt/test"

    def __init__(
        self,
        scale: float = 1.0,
        run_seq1: bool = True,
        run_generic: bool = True,
        seed: int | None = None,
    ) -> None:
        self.scale = scale
        self.run_seq1 = run_seq1
        self.run_generic = run_generic
        self.seed_override = seed
        self.profile = CRASHMONKEY_PROFILE.scaled(scale)
        self.violations: list[str] = []

    def make_filesystem(self) -> FileSystem:
        # CrashMonkey tests small trees; a modest device is plenty and
        # keeps crash snapshots cheap.
        return FileSystem(total_blocks=65536)  # 256 MiB

    # ------------------------------------------------------------------
    # workload enumeration
    # ------------------------------------------------------------------

    def workloads(self) -> Iterable[Workload]:
        if self.run_seq1:
            for spec in Seq1Generator():
                yield Workload(spec.name, "seq1", self._make_seq1_body(spec))
        if self.run_generic:
            yield from self._generic_workloads()

    def calibrate(self, ctx: SuiteContext, recorder: TraceRecorder) -> None:
        CalibrationDriver(self.profile).run(ctx, recorder)

    # ------------------------------------------------------------------
    # seq-1 machinery
    # ------------------------------------------------------------------

    def _make_seq1_body(self, spec: Seq1Spec) -> Callable[[SuiteContext], None]:
        def body(ctx: SuiteContext) -> None:
            self._run_seq1(ctx, spec)

        return body

    def _run_seq1(self, ctx: SuiteContext, spec: Seq1Spec) -> None:
        base = ctx.path(f"wl{spec.index:03d}")
        ctx.sc.mkdir(base, 0o755)
        ctx.sc.mkdir(f"{base}/A", 0o755)
        target = f"{base}/{spec.target}"

        # Pre-populate the target the op needs (CrashMonkey's setup
        # phase), then persist the baseline.
        if spec.op in ("write", "dwrite", "append", "truncate", "unlink", "rename"):
            self._setup_file(ctx, target)
        if spec.op == "rmdir":
            ctx.sc.mkdir(f"{base}/victim", 0o755)
        assert ctx.crash_sim is not None
        ctx.sc.sync()
        ctx.crash_sim.checkpoint()

        persisted_paths = self._core_op(ctx, spec, base, target)

        # Apply the persistence mode, recording what is now guaranteed.
        guaranteed: list[tuple[str, int]] = []
        if spec.persist == "sync":
            ctx.sc.sync()
            ctx.crash_sim.checkpoint()
            guaranteed = persisted_paths
        elif spec.persist in ("fsync", "fdatasync") and persisted_paths:
            path, size = persisted_paths[0]
            # Directories are fsync'ed via a read-only directory open;
            # files reuse CrashMonkey's usual write-open flags.
            if spec.op == "mkdir":
                flags = constants.O_RDONLY | constants.O_DIRECTORY
            else:
                flags = DWRITE_FLAGS
            result = ctx.sc.open(path, flags)
            if result.ok:
                if spec.persist == "fsync":
                    ctx.sc.fsync(result.retval)
                else:
                    ctx.sc.fdatasync(result.retval)
                ctx.sc.close(result.retval)
                ctx.crash_sim.checkpoint()
                guaranteed = [(path, size)]

        # Crash and run the oracle over the remounted image.
        ctx.crash_sim.crash()
        for path, size in guaranteed:
            check = ctx.sc.lstat(path)
            if not check.ok:
                self.violations.append(f"{spec.name}: {path} lost after crash")
                raise CrashConsistencyViolation(spec.name)
            if size >= 0:
                inode = ctx.fs.lookup(path)
                if inode.size < size:
                    self.violations.append(
                        f"{spec.name}: {path} truncated to {inode.size} < {size}"
                    )
                    raise CrashConsistencyViolation(spec.name)

    @staticmethod
    def _setup_file(ctx: SuiteContext, path: str) -> None:
        result = ctx.sc.creat(path, 0o644)
        if result.ok:
            ctx.sc.write(result.retval, count=4096)
            ctx.sc.close(result.retval)

    def _core_op(
        self, ctx: SuiteContext, spec: Seq1Spec, base: str, target: str
    ) -> list[tuple[str, int]]:
        """Run the core operation; returns [(path, min_size)] it persists."""
        sc = ctx.sc
        if spec.op == "creat":
            result = sc.creat(target, 0o644)
            if result.ok:
                sc.close(result.retval)
            return [(target, 0)]
        if spec.op == "mkdir":
            sc.mkdir(f"{base}/newdir", 0o755)
            return [(f"{base}/newdir", -1)]
        if spec.op == "write":
            result = sc.open(target, DWRITE_FLAGS, 0o644)
            if result.ok:
                sc.pwrite64(result.retval, count=spec.size, offset=0)
                sc.close(result.retval)
            return [(target, spec.size)]
        if spec.op == "dwrite":
            result = sc.open(target, DWRITE_FLAGS, 0o644)
            if result.ok:
                sc.pwrite64(result.retval, count=spec.size, offset=0)
                sc.close(result.retval)
            return [(target, spec.size)]
        if spec.op == "append":
            result = sc.open(target, DWRITE_FLAGS, 0o644)
            if result.ok:
                sc.lseek(result.retval, 0, constants.SEEK_END)
                sc.write(result.retval, count=spec.size)
                sc.close(result.retval)
            return [(target, 4096 + spec.size)]
        if spec.op == "truncate":
            sc.truncate(target, min(100, spec.size))
            return [(target, min(100, spec.size))]
        if spec.op == "unlink":
            sc.unlink(target)
            return []
        if spec.op == "rmdir":
            sc.rmdir(f"{base}/victim")
            return []
        if spec.op == "rename":
            renamed = f"{base}/renamed"
            sc.rename(target, renamed)
            return [(renamed, 4096)]
        if spec.op == "symlink":
            link = f"{base}/link"
            sc.symlink(target, link)
            return [(link, -1)]
        raise ValueError(f"unknown seq-1 op {spec.op!r}")

    # ------------------------------------------------------------------
    # generic crash-consistency tests
    # ------------------------------------------------------------------

    def _generic_workloads(self) -> Iterable[Workload]:
        generics: list[tuple[str, Callable[[SuiteContext], None]]] = [
            ("generic-rename-atomicity", self._generic_rename_atomicity),
            ("generic-append-durability", self._generic_append_durability),
            ("generic-dirent-durability", self._generic_dirent_durability),
            ("generic-overwrite-durability", self._generic_overwrite),
            ("generic-unsynced-loss", self._generic_unsynced_loss),
        ]
        for name, body in generics:
            yield Workload(name, "generic", body)

    def _generic_rename_atomicity(self, ctx: SuiteContext) -> None:
        """Write-to-temp + rename must expose old or new, never neither."""
        base = ctx.path("gen_rename")
        ctx.sc.mkdir(base, 0o755)
        live, tmp = f"{base}/config", f"{base}/config.tmp"
        self._setup_file(ctx, live)
        ctx.sc.sync()
        assert ctx.crash_sim is not None
        ctx.crash_sim.checkpoint()
        self._setup_file(ctx, tmp)
        ctx.sc.rename(tmp, live)
        ctx.crash_sim.crash()
        if not ctx.sc.stat(live).ok:
            self.violations.append("rename-atomicity: config vanished")
            raise CrashConsistencyViolation("rename-atomicity")

    def _generic_append_durability(self, ctx: SuiteContext) -> None:
        """fsync'ed appends survive a crash."""
        path = ctx.path("gen_append")
        self._setup_file(ctx, path)
        result = ctx.sc.open(path, DWRITE_FLAGS, 0o644)
        assert result.ok
        ctx.sc.lseek(result.retval, 0, constants.SEEK_END)
        ctx.sc.write(result.retval, count=1024)
        ctx.sc.fsync(result.retval)
        ctx.sc.close(result.retval)
        assert ctx.crash_sim is not None
        ctx.crash_sim.checkpoint()
        ctx.crash_sim.crash()
        inode = ctx.fs.lookup(path)
        if inode.size < 4096 + 1024:
            self.violations.append("append-durability: synced append lost")
            raise CrashConsistencyViolation("append-durability")

    def _generic_dirent_durability(self, ctx: SuiteContext) -> None:
        """A sync'ed directory entry survives a crash."""
        base = ctx.path("gen_dirent")
        ctx.sc.mkdir(base, 0o755)
        self._setup_file(ctx, f"{base}/entry")
        ctx.sc.sync()
        assert ctx.crash_sim is not None
        ctx.crash_sim.checkpoint()
        ctx.crash_sim.crash()
        if not ctx.sc.stat(f"{base}/entry").ok:
            self.violations.append("dirent-durability: entry lost")
            raise CrashConsistencyViolation("dirent-durability")

    def _generic_overwrite(self, ctx: SuiteContext) -> None:
        """fsync'ed in-place overwrite survives with the new length."""
        path = ctx.path("gen_overwrite")
        self._setup_file(ctx, path)
        result = ctx.sc.open(path, DWRITE_FLAGS, 0o644)
        assert result.ok
        ctx.sc.pwrite64(result.retval, count=2048, offset=1024)
        ctx.sc.fdatasync(result.retval)
        ctx.sc.close(result.retval)
        assert ctx.crash_sim is not None
        ctx.crash_sim.checkpoint()
        ctx.crash_sim.crash()
        if ctx.fs.lookup(path).size < 4096:
            self.violations.append("overwrite: file shrank after crash")
            raise CrashConsistencyViolation("overwrite")

    def _generic_unsynced_loss(self, ctx: SuiteContext) -> None:
        """Unsynced data MAY be lost — assert the crash model drops it."""
        path = ctx.path("gen_unsynced")
        assert ctx.crash_sim is not None
        ctx.sc.sync()
        ctx.crash_sim.checkpoint()
        self._setup_file(ctx, path)  # never synced
        ctx.crash_sim.crash()
        if ctx.sc.stat(path).ok:
            # Not a bug (POSIX permits persistence), but our volatile
            # model must drop it; treat survival as a model violation.
            self.violations.append("unsynced-loss: unsynced file survived")
            raise CrashConsistencyViolation("unsynced-loss")
