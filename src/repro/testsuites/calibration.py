"""Residual calibration driver: tops a suite's trace up to its profile.

The mechanistic workloads of a simulated suite produce a few thousand
organically shaped events; the real suites produce millions with the
distributions the paper measured.  After the workloads run, this driver
computes, per profile target (open-flag combination, write-size bucket,
open error code, auxiliary op count), the *residual* between the target
and what the workloads already emitted, and issues exactly that many
additional real syscalls.  The result: the suite's trace matches the
paper's published figures while every event in it is a genuine VFS
call with genuine outcome.

Ordering matters: auxiliary ops, then write sizes, then error
scenarios, and open-flag combinations last — open/close pairs are the
only pure-open activity, so they can absorb whatever flag usage the
earlier phases added.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

from repro.core.argspec import OPEN_FLAGS_ARG, base_name
from repro.core.partition import BitmapPartitioner, NumericPartitioner
from repro.core.variants import VariantHandler
from repro.testsuites.base import SuiteContext
from repro.testsuites.profiles import SuiteProfile
from repro.trace.recorder import TraceRecorder
from repro.vfs import constants
from repro.vfs.errors import EPERM, errno_name

_WRITE_BASES = ("write",)
_OPEN_BASES = ("open",)


def _combo_flags(combo: tuple[str, ...]) -> int:
    """Build the int flags value for a named combination."""
    flags = 0
    for name in combo:
        flags |= constants.OPEN_FLAG_NAMES[name]
    return flags


class CalibrationDriver:
    """Issues residual syscalls to reach a :class:`SuiteProfile`."""

    def __init__(self, profile: SuiteProfile) -> None:
        self.profile = profile
        self._decoder = BitmapPartitioner(OPEN_FLAGS_ARG)
        self._bucketer = NumericPartitioner(include_negative=False)
        self._variants = VariantHandler()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def _observed(self, recorder: TraceRecorder):
        """Tally what the trace already contains, per calibrated axis."""
        combos: Counter = Counter()
        write_buckets: Counter = Counter()
        open_errors: Counter = Counter()
        base_counts: Counter = Counter()
        for event in recorder.iter_events():
            base = base_name(event.name)
            if base is None:
                base_counts[event.name] += 1
                continue
            base_counts[base] += 1
            normalized = self._variants.normalize(event)
            assert normalized is not None
            _, args = normalized
            if base in _OPEN_BASES:
                flags = args.get("flags")
                if isinstance(flags, int):
                    combos[frozenset(self._decoder.decode(flags))] += 1
                if event.errno:
                    open_errors[errno_name(event.errno)] += 1
            elif base in _WRITE_BASES:
                count = args.get("count")
                if isinstance(count, int) and count >= 0:
                    for key in self._bucketer.classify(count):
                        write_buckets[key] += 1
        return combos, write_buckets, open_errors, base_counts

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def run(self, ctx: SuiteContext, recorder: TraceRecorder) -> None:
        """Issue all residual activity for this suite.

        Phase order matters because later phases' fixture setup emits
        syscalls of its own: aux ops and error scenarios first, then the
        open-combination residual (which sees every open issued so
        far), and the write-size residual last — its working fd is
        opened *before* the combination residual is computed so that
        open is accounted, and everything after it writes only.
        """
        _, _, open_errors, base_counts = self._observed(recorder)
        self._run_aux_ops(ctx, base_counts)
        self._run_error_scenarios(ctx, open_errors)
        write_path = ctx.path("calib_write")
        opened = ctx.sc.open(
            write_path,
            constants.O_WRONLY | constants.O_CREAT | constants.O_TRUNC,
            0o644,
        )
        assert opened.ok, opened
        self._run_open_combinations(ctx, recorder)
        _, write_buckets, _, _ = self._observed(recorder)
        self._run_write_sizes(ctx, opened.retval, write_buckets)
        ctx.sc.close(opened.retval)

    # ------------------------------------------------------------------
    # phase: auxiliary ops
    # ------------------------------------------------------------------

    def _run_aux_ops(self, ctx: SuiteContext, observed: Counter) -> None:
        handlers: dict[str, Callable[[SuiteContext, int], None]] = {
            "read": self._aux_reads,
            "lseek": self._aux_seeks,
            "truncate": self._aux_truncates,
            "mkdir": self._aux_mkdirs,
            "chmod": self._aux_chmods,
            "chdir": self._aux_chdirs,
            "setxattr": self._aux_setxattrs,
            "getxattr": self._aux_getxattrs,
            "fsync": self._aux_fsyncs,
            "sync": self._aux_syncs,
        }
        for op, target in self.profile.aux_ops.items():
            residual = target - observed.get(op, 0)
            if residual > 0 and op in handlers:
                handlers[op](ctx, residual)

    def _aux_reads(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("calib_read")
        ctx.ensure_file(path, size=1 << 16)
        fd = ctx.sc.open(path, constants.O_RDONLY).retval
        sizes = (1, 16, 256, 512, 4096, 4096, 4096, 8192, 65536, 131072)
        for i in range(n):
            size = sizes[i % len(sizes)]
            if i % 7 == 0:
                ctx.sc.pread64(fd, size, (i * 512) % (1 << 16))
            elif i % 23 == 0:
                ctx.sc.readv(fd, [size // 2, size - size // 2])
            else:
                ctx.sc.read(fd, size)
            if i % 13 == 0:
                ctx.sc.lseek(fd, 0, constants.SEEK_SET)
        ctx.sc.close(fd)

    def _aux_seeks(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("calib_seek")
        ctx.ensure_file(path, size=8192)
        fd = ctx.sc.open(path, constants.O_RDONLY).retval
        whences = (constants.SEEK_SET, constants.SEEK_CUR, constants.SEEK_END)
        for i in range(n):
            if i % 97 == 0:
                ctx.sc.lseek(fd, 0, constants.SEEK_DATA)
            elif i % 89 == 0:
                ctx.sc.lseek(fd, 0, constants.SEEK_HOLE)
            else:
                offset = (1 << (i % 13)) if i % 5 else 0
                ctx.sc.lseek(fd, offset, whences[i % 3])
            if i % 29 == 0:
                ctx.sc.lseek(fd, 0, constants.SEEK_SET)
        ctx.sc.close(fd)

    def _aux_truncates(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("calib_trunc")
        ctx.ensure_file(path, size=4096)
        for i in range(n):
            length = (1 << (i % 20)) if i % 9 else 0
            if i % 5 == 0:
                fd = ctx.sc.open(path, constants.O_WRONLY).retval
                ctx.sc.ftruncate(fd, length)
                ctx.sc.close(fd)
            else:
                ctx.sc.truncate(path, length)
        ctx.sc.truncate(path, 0)

    def _aux_mkdirs(self, ctx: SuiteContext, n: int) -> None:
        modes = (0o755, 0o700, 0o777, 0o555)
        base = ctx.path("calib_dirs")
        ctx.ensure_dir(base)
        for i in range(n):
            name = f"{base}/d{i:06d}"
            if i % 11 == 0:
                ctx.sc.mkdirat(constants.AT_FDCWD, name, modes[i % 4])
            else:
                ctx.sc.mkdir(name, modes[i % 4])

    def _aux_chmods(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("calib_chmod")
        ctx.ensure_file(path)
        modes = (0o644, 0o600, 0o755, 0o400, 0o666, 0o000, 0o4755, 0o1777)
        for i in range(n):
            if i % 17 == 0:
                fd = ctx.sc.open(path, constants.O_RDONLY).retval
                ctx.sc.fchmod(fd, modes[i % len(modes)])
                ctx.sc.close(fd)
            elif i % 13 == 0:
                ctx.sc.fchmodat(constants.AT_FDCWD, path, modes[i % len(modes)], 0)
            else:
                ctx.sc.chmod(path, modes[i % len(modes)])
        ctx.sc.chmod(path, 0o644)

    def _aux_chdirs(self, ctx: SuiteContext, n: int) -> None:
        sub = ctx.path("calib_cwd")
        ctx.ensure_dir(sub)
        for i in range(n):
            if i % 7 == 0:
                fd = ctx.sc.open(sub, constants.O_RDONLY | constants.O_DIRECTORY).retval
                ctx.sc.fchdir(fd)
                ctx.sc.close(fd)
            else:
                ctx.sc.chdir(sub if i % 2 else ctx.mount_point)
        ctx.sc.chdir("/")

    def _aux_setxattrs(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("calib_xattr")
        ctx.ensure_file(path)
        for i in range(n):
            name = f"user.k{i % 4}"
            value = b"v" * (1 << (i % 6))
            if i % 19 == 0:
                fd = ctx.sc.open(path, constants.O_RDONLY).retval
                ctx.sc.fsetxattr(fd, name, value)
                ctx.sc.close(fd)
            elif i % 7 == 0:
                ctx.sc.lsetxattr(path, name, value)
            else:
                flags = constants.XATTR_REPLACE if i % 5 == 0 else 0
                ctx.sc.setxattr(path, name, value, flags=flags)

    def _aux_getxattrs(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("calib_xattr")
        ctx.ensure_file(path)
        ctx.sc.setxattr(path, "user.k0", b"x" * 32)
        for i in range(n):
            name = "user.k0" if i % 3 else "user.missing"
            size = 0 if i % 4 == 0 else 64
            if i % 11 == 0:
                ctx.sc.lgetxattr(path, name, size)
            elif i % 13 == 0:
                fd = ctx.sc.open(path, constants.O_RDONLY).retval
                ctx.sc.fgetxattr(fd, name, size)
                ctx.sc.close(fd)
            else:
                ctx.sc.getxattr(path, name, size)

    def _aux_fsyncs(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("calib_sync")
        ctx.ensure_file(path, size=4096)
        fd = ctx.sc.open(path, constants.O_WRONLY).retval
        for i in range(n):
            if i % 3 == 0:
                ctx.sc.fdatasync(fd)
            else:
                ctx.sc.fsync(fd)
        ctx.sc.close(fd)

    def _aux_syncs(self, ctx: SuiteContext, n: int) -> None:
        for _ in range(n):
            ctx.sc.sync()

    # ------------------------------------------------------------------
    # phase: write sizes
    # ------------------------------------------------------------------

    def _run_write_sizes(self, ctx: SuiteContext, fd: int, observed: Counter) -> None:
        # Largest sizes first so the file grows once, not repeatedly.
        for size in sorted(self.profile.write_sizes, reverse=True):
            target = self.profile.write_sizes[size]
            bucket = "equal_to_0" if size == 0 else f"2^{size.bit_length() - 1}"
            residual = target - observed.get(bucket, 0)
            for i in range(max(0, residual)):
                if size and i % 9 == 0:
                    ctx.sc.write(fd, count=size)
                    ctx.sc.lseek(fd, 0, constants.SEEK_SET)
                else:
                    ctx.sc.pwrite64(fd, count=size, offset=0)
            if size >= (1 << 20):
                # Release the large extent before the next bucket.
                ctx.sc.ftruncate(fd, 0)
        ctx.sc.ftruncate(fd, 0)

    # ------------------------------------------------------------------
    # phase: open error scenarios
    # ------------------------------------------------------------------

    def _run_error_scenarios(self, ctx: SuiteContext, observed: Counter) -> None:
        scenarios: dict[str, Callable[[SuiteContext, int], None]] = {
            "ENOENT": self._err_enoent,
            "EEXIST": self._err_eexist,
            "EACCES": self._err_eacces,
            "EISDIR": self._err_eisdir,
            "ENOTDIR": self._err_enotdir,
            "ENAMETOOLONG": self._err_enametoolong,
            "ELOOP": self._err_eloop,
            "EINVAL": self._err_einval,
            "ENOSPC": self._err_enospc,
            "EROFS": self._err_erofs,
            "EDQUOT": self._err_edquot,
            "EPERM": self._err_eperm,
            "ETXTBSY": self._err_etxtbsy,
            "EBUSY": self._err_ebusy,
            "EFAULT": self._err_efault,
            "EMFILE": self._err_emfile,
        }
        for errno_key, target in self.profile.open_errors.items():
            residual = target - observed.get(errno_key, 0)
            if residual > 0:
                scenarios[errno_key](ctx, residual)

    def _err_enoent(self, ctx: SuiteContext, n: int) -> None:
        for i in range(n):
            ctx.sc.open(ctx.path(f"no_such_file_{i % 16}"), constants.O_RDONLY)

    def _err_eexist(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("exists")
        ctx.ensure_file(path)
        flags = constants.O_RDWR | constants.O_CREAT | constants.O_EXCL
        for _ in range(n):
            ctx.sc.open(path, flags, 0o644)

    def _err_eacces(self, ctx: SuiteContext, n: int) -> None:
        locked = ctx.path("locked_dir")
        with ctx.as_root():
            ctx.sc.mkdir(locked, 0o700)
            ctx.ensure_file(f"{locked}/secret", size=16)
        for _ in range(n):
            ctx.sc.open(f"{locked}/secret", constants.O_RDONLY)

    def _err_eisdir(self, ctx: SuiteContext, n: int) -> None:
        sub = ctx.path("isdir")
        ctx.ensure_dir(sub)
        for _ in range(n):
            ctx.sc.open(sub, constants.O_WRONLY)

    def _err_enotdir(self, ctx: SuiteContext, n: int) -> None:
        plain = ctx.path("plainfile")
        ctx.ensure_file(plain)
        for _ in range(n):
            ctx.sc.open(f"{plain}/below", constants.O_RDONLY)

    def _err_enametoolong(self, ctx: SuiteContext, n: int) -> None:
        long_name = ctx.path("n" * (constants.NAME_MAX + 10))
        for _ in range(n):
            ctx.sc.open(long_name, constants.O_RDONLY)

    def _err_eloop(self, ctx: SuiteContext, n: int) -> None:
        loop_a, loop_b = ctx.path("loop_a"), ctx.path("loop_b")
        ctx.sc.symlink(loop_b, loop_a)
        ctx.sc.symlink(loop_a, loop_b)
        for _ in range(n):
            ctx.sc.open(loop_a, constants.O_RDONLY)

    def _err_einval(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("exists_inval")
        ctx.ensure_file(path)
        for _ in range(n):
            ctx.sc.open(path, constants.O_ACCMODE)  # invalid access mode

    def _err_enospc(self, ctx: SuiteContext, n: int) -> None:
        with ctx.full_device():
            for i in range(n):
                ctx.sc.open(
                    ctx.path(ctx.unique_name("nospace")),
                    constants.O_CREAT | constants.O_WRONLY,
                    0o644,
                )

    def _err_erofs(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("ro_target")
        ctx.ensure_file(path)
        with ctx.read_only_fs():
            for _ in range(n):
                ctx.sc.open(path, constants.O_WRONLY)

    def _err_edquot(self, ctx: SuiteContext, n: int) -> None:
        with ctx.exhausted_quota():
            for _ in range(n):
                ctx.sc.open(
                    ctx.path(ctx.unique_name("overquota")),
                    constants.O_CREAT | constants.O_WRONLY,
                    0o644,
                )

    def _err_eperm(self, ctx: SuiteContext, n: int) -> None:
        # Real xfstests triggers open EPERM via immutable files
        # (chattr +i); the VFS has no attribute flags, so the fault
        # injector stands in for that kernel path.
        path = ctx.path("immutable")
        ctx.ensure_file(path)
        ctx.sc.faults.arm("open", EPERM, count=n)
        for _ in range(n):
            ctx.sc.open(path, constants.O_WRONLY)

    def _err_etxtbsy(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("running_binary")
        ctx.ensure_file(path, size=128, mode=0o755)
        inode = ctx.fs.lookup(path)
        ctx.fs.mark_text_busy(inode.ino)
        try:
            for _ in range(n):
                ctx.sc.open(path, constants.O_WRONLY)
        finally:
            ctx.fs.clear_text_busy(inode.ino)

    def _err_ebusy(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("frozen_target")
        ctx.ensure_file(path)
        with ctx.frozen_fs():
            for _ in range(n):
                ctx.sc.open(path, constants.O_WRONLY | constants.O_TRUNC)

    def _err_efault(self, ctx: SuiteContext, n: int) -> None:
        for _ in range(n):
            ctx.sc.open(None, constants.O_RDONLY)

    def _err_emfile(self, ctx: SuiteContext, n: int) -> None:
        path = ctx.path("fd_target")
        ctx.ensure_file(path)
        with ctx.fd_limit(len(ctx.sc.process.fd_table)):
            for _ in range(n):
                ctx.sc.open(path, constants.O_RDONLY)

    # ------------------------------------------------------------------
    # phase: open-flag combinations
    # ------------------------------------------------------------------

    def _run_open_combinations(self, ctx: SuiteContext, recorder: TraceRecorder) -> None:
        # Fixture setup issues opens of its own, so it must happen
        # *before* the residual observation.
        target_dir = ctx.path("calib_opens")
        ctx.ensure_dir(target_dir)
        plain = f"{target_dir}/plain"
        ctx.ensure_file(plain, size=512)
        observed, _, _, _ = self._observed(recorder)
        for combo, target in self.profile.open_combinations.items():
            residual = target - observed.get(frozenset(combo), 0)
            if residual <= 0:
                continue
            flags = _combo_flags(combo)
            excl = "O_EXCL" in combo
            directory = "O_DIRECTORY" in combo
            for i in range(residual):
                if directory:
                    path = target_dir
                elif excl:
                    path = f"{target_dir}/{ctx.unique_name('x')}"
                else:
                    path = plain
                if i % 5 == 1:
                    result = ctx.sc.openat(constants.AT_FDCWD, path, flags, 0o644)
                elif i % 31 == 2:
                    result = ctx.sc.openat2(constants.AT_FDCWD, path, flags, 0o644, 0)
                else:
                    result = ctx.sc.open(path, flags, 0o644)
                if result.ok:
                    ctx.sc.close(result.retval)
