"""xfstests substrate: a hand-written-style regression suite.

xfstests is "one of the oldest and most popular file system test
suites"; the paper runs all 706 generic tests and 308 Ext4-specific
tests against Ext4 and traces them with LTTng.  Real xfstests tests are
shell scripts exercising specific regressions; this simulator builds
the same population — 706 ``generic/NNN`` and 308 ``ext4/NNN``
workloads — by instantiating a library of regression *templates* with
per-test seeded parameters, then topping the trace up to the paper's
measured statistical profile with the calibration driver.

Template coverage deliberately spans the behaviours xfstests is known
for: data-path I/O at many sizes, sparse files and seeks, metadata
(mkdir/chmod/rename), xattrs, error-path probing, and — in the ext4
group — quota, device-full, boundary-size, and xattr-in-inode cases.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.testsuites.base import SuiteContext, TestSuite, Workload
from repro.testsuites.calibration import CalibrationDriver
from repro.testsuites.profiles import XFSTESTS_PROFILE
from repro.trace.recorder import TraceRecorder
from repro.vfs import constants
from repro.vfs.filesystem import FileSystem

GENERIC_TEST_COUNT = 706
EXT4_TEST_COUNT = 308

#: Write-open flags used by templates, all present in the calibration
#: profile so mechanistic usage counts toward the targets.
WR_TRUNC = constants.O_WRONLY | constants.O_CREAT | constants.O_TRUNC
WR_PLAIN = constants.O_WRONLY | constants.O_CREAT
RDWR_EXCL = constants.O_RDWR | constants.O_CREAT | constants.O_EXCL
RD_DIR = constants.O_RDONLY | constants.O_DIRECTORY

Template = Callable[[SuiteContext, int], None]


class XfstestsSuite(TestSuite):
    """The simulated xfstests tester.

    Args:
        scale: statistical-profile scale factor.  1.0 reproduces the
            paper's absolute counts (~6 M opens — minutes of runtime);
            the default 0.01 keeps the same shape at 1% volume.
        run_generic / run_ext4: include those test groups.
    """

    name = "xfstests"
    mount_point = "/mnt/test"

    def __init__(
        self,
        scale: float = 0.01,
        run_generic: bool = True,
        run_ext4: bool = True,
        seed: int | None = None,
    ) -> None:
        self.scale = scale
        self.run_generic = run_generic
        self.run_ext4 = run_ext4
        self.seed_override = seed
        self.profile = XFSTESTS_PROFILE.scaled(scale)

    def make_filesystem(self) -> FileSystem:
        # Room for the 258 MiB maximum write plus fixtures: 1 GiB.
        return FileSystem(total_blocks=262144)

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------

    def workloads(self) -> Iterable[Workload]:
        generic = self._generic_templates()
        ext4 = self._ext4_templates()
        if self.run_generic:
            for index in range(GENERIC_TEST_COUNT):
                template = generic[index % len(generic)]
                yield Workload(
                    f"generic/{index:03d}",
                    "generic",
                    self._bind(template, index),
                )
        if self.run_ext4:
            for index in range(EXT4_TEST_COUNT):
                template = ext4[index % len(ext4)]
                yield Workload(
                    f"ext4/{index:03d}",
                    "ext4",
                    self._bind(template, index),
                )

    @staticmethod
    def _bind(template: Template, index: int) -> Callable[[SuiteContext], None]:
        def body(ctx: SuiteContext) -> None:
            template(ctx, index)

        return body

    def calibrate(self, ctx: SuiteContext, recorder: TraceRecorder) -> None:
        CalibrationDriver(self.profile).run(ctx, recorder)

    # ------------------------------------------------------------------
    # generic templates
    # ------------------------------------------------------------------

    def _generic_templates(self) -> list[Template]:
        return [
            self._t_write_read_back,
            self._t_append_loop,
            self._t_truncate_ladder,
            self._t_sparse_seek,
            self._t_seek_whences,
            self._t_mkdir_tree,
            self._t_rename_cycle,
            self._t_symlink_follow,
            self._t_chmod_matrix,
            self._t_chdir_walk,
            self._t_vectored_io,
            self._t_excl_create,
            self._t_dir_open,
            self._t_probe_enoent,
            self._t_probe_eexist,
            self._t_probe_eisdir_enotdir,
            self._t_probe_name_limits,
            self._t_probe_symlink_loop,
            self._t_probe_bad_fd,
            self._t_zero_byte_io,
            self._t_unlink_recreate,
            self._t_readonly_checks,
        ]

    def _t_write_read_back(self, ctx: SuiteContext, index: int) -> None:
        """Write a seeded-size payload and verify it reads back."""
        path = ctx.path(f"g_wrb_{index}")
        size = 1 << (index % 17)
        result = ctx.sc.open(path, WR_TRUNC, 0o644)
        assert result.ok
        ctx.sc.write(result.retval, b"Q" * min(size, 1 << 16), size)
        ctx.sc.close(result.retval)
        rd = ctx.sc.open(path, constants.O_RDONLY)
        assert rd.ok
        got = ctx.sc.read(rd.retval, size)
        assert got.retval == size, (size, got.retval)
        ctx.sc.close(rd.retval)
        ctx.sc.unlink(path)

    def _t_append_loop(self, ctx: SuiteContext, index: int) -> None:
        """O_APPEND writes land at EOF regardless of seeks."""
        path = ctx.path(f"g_app_{index}")
        ctx.ensure_file(path, size=128)
        result = ctx.sc.open(path, constants.O_RDWR | constants.O_APPEND)
        assert result.ok
        for i in range(3):
            ctx.sc.lseek(result.retval, 0, constants.SEEK_SET)
            ctx.sc.write(result.retval, count=64)
        ctx.sc.close(result.retval)
        assert ctx.fs.lookup(path).size == 128 + 3 * 64
        ctx.sc.unlink(path)

    def _t_truncate_ladder(self, ctx: SuiteContext, index: int) -> None:
        """Grow and shrink through power-of-two lengths."""
        path = ctx.path(f"g_trunc_{index}")
        ctx.ensure_file(path, size=4096)
        for exp in (index % 8, index % 8 + 4, 0):
            ctx.sc.truncate(path, 1 << exp)
        fd = ctx.sc.open(path, constants.O_RDWR).retval
        ctx.sc.ftruncate(fd, 0)
        ctx.sc.close(fd)
        ctx.sc.unlink(path)

    def _t_sparse_seek(self, ctx: SuiteContext, index: int) -> None:
        """pwrite past EOF creates a hole that reads back as zeros."""
        path = ctx.path(f"g_sparse_{index}")
        result = ctx.sc.open(path, WR_TRUNC, 0o644)
        assert result.ok
        hole = 1 << (10 + index % 6)
        ctx.sc.pwrite64(result.retval, b"END", 3, hole)
        ctx.sc.close(result.retval)
        rd = ctx.sc.open(path, constants.O_RDONLY).retval
        got = ctx.sc.pread64(rd, 16, hole // 2)
        assert got.ok and got.data is not None and set(got.data) == {0}
        ctx.sc.close(rd)
        ctx.sc.unlink(path)

    def _t_seek_whences(self, ctx: SuiteContext, index: int) -> None:
        """All five whence values, including ENXIO past EOF."""
        path = ctx.path(f"g_seek_{index}")
        ctx.ensure_file(path, size=1024)
        fd = ctx.sc.open(path, constants.O_RDONLY).retval
        assert ctx.sc.lseek(fd, 100, constants.SEEK_SET).retval == 100
        assert ctx.sc.lseek(fd, 24, constants.SEEK_CUR).retval == 124
        assert ctx.sc.lseek(fd, -24, constants.SEEK_END).retval == 1000
        assert ctx.sc.lseek(fd, 0, constants.SEEK_DATA).retval == 0
        assert ctx.sc.lseek(fd, 0, constants.SEEK_HOLE).retval == 1024
        assert ctx.sc.lseek(fd, 5000, constants.SEEK_DATA).errno != 0
        ctx.sc.close(fd)
        ctx.sc.unlink(path)

    def _t_mkdir_tree(self, ctx: SuiteContext, index: int) -> None:
        """Nested directory creation and rmdir teardown."""
        base = ctx.path(f"g_tree_{index}")
        depth = 2 + index % 3
        parts = [base]
        ctx.sc.mkdir(base, 0o755)
        for level in range(depth):
            parts.append(f"{parts[-1]}/d{level}")
            ctx.sc.mkdirat(constants.AT_FDCWD, parts[-1], 0o755)
        assert ctx.sc.rmdir(parts[1]).errno != 0  # non-empty
        for path in reversed(parts):
            ctx.sc.rmdir(path)

    def _t_rename_cycle(self, ctx: SuiteContext, index: int) -> None:
        """Rename within and across directories, with replacement."""
        base = ctx.path(f"g_ren_{index}")
        ctx.sc.mkdir(base, 0o755)
        ctx.sc.mkdir(f"{base}/sub", 0o755)
        ctx.ensure_file(f"{base}/a", size=64)
        ctx.ensure_file(f"{base}/b", size=32)
        assert ctx.sc.rename(f"{base}/a", f"{base}/sub/a").ok
        assert ctx.sc.rename(f"{base}/sub/a", f"{base}/b").ok  # replace
        assert not ctx.sc.stat(f"{base}/a").ok
        assert ctx.fs.lookup(f"{base}/b").size == 64

    def _t_symlink_follow(self, ctx: SuiteContext, index: int) -> None:
        """Symlink resolution: follow on open, O_NOFOLLOW rejection."""
        base = ctx.path(f"g_sym_{index}")
        ctx.sc.mkdir(base, 0o755)
        ctx.ensure_file(f"{base}/real", size=16)
        ctx.sc.symlink(f"{base}/real", f"{base}/ln")
        rd = ctx.sc.open(f"{base}/ln", constants.O_RDONLY)
        assert rd.ok
        ctx.sc.close(rd.retval)
        blocked = ctx.sc.open(f"{base}/ln", constants.O_RDONLY | constants.O_NOFOLLOW)
        assert not blocked.ok

    def _t_chmod_matrix(self, ctx: SuiteContext, index: int) -> None:
        """Permission bits round-trip through chmod/fchmod/fchmodat."""
        path = ctx.path(f"g_chmod_{index}")
        ctx.ensure_file(path)
        modes = (0o600, 0o644, 0o755, 0o000, 0o4711)
        mode = modes[index % len(modes)]
        assert ctx.sc.chmod(path, mode).ok
        assert ctx.fs.lookup(path).permissions == mode
        ctx.sc.chmod(path, 0o644)
        ctx.sc.unlink(path)

    def _t_chdir_walk(self, ctx: SuiteContext, index: int) -> None:
        """chdir/fchdir and relative-path resolution."""
        base = ctx.path(f"g_cwd_{index}")
        ctx.sc.mkdir(base, 0o755)
        assert ctx.sc.chdir(base).ok
        ctx.ensure_file("relative_file", size=8)
        assert ctx.sc.stat("relative_file").ok
        fd = ctx.sc.open(ctx.mount_point, RD_DIR).retval
        assert ctx.sc.fchdir(fd).ok
        ctx.sc.close(fd)
        ctx.sc.chdir("/")

    def _t_vectored_io(self, ctx: SuiteContext, index: int) -> None:
        """readv/writev round-trip with mixed segment sizes."""
        path = ctx.path(f"g_vec_{index}")
        result = ctx.sc.open(path, WR_TRUNC, 0o644)
        assert result.ok
        segments = [b"a" * 10, b"b" * 100, b"c" * (1 << (index % 8))]
        wrote = ctx.sc.writev(result.retval, segments)
        assert wrote.retval == sum(len(seg) for seg in segments)
        ctx.sc.close(result.retval)
        rd = ctx.sc.open(path, constants.O_RDONLY).retval
        got = ctx.sc.readv(rd, [10, 100, 1 << (index % 8)])
        assert got.retval == wrote.retval
        ctx.sc.close(rd)
        ctx.sc.unlink(path)

    def _t_excl_create(self, ctx: SuiteContext, index: int) -> None:
        """O_CREAT|O_EXCL creates once, then fails EEXIST."""
        path = ctx.path(f"g_excl_{index}")
        first = ctx.sc.open(path, RDWR_EXCL, 0o644)
        assert first.ok
        ctx.sc.close(first.retval)
        second = ctx.sc.open(path, RDWR_EXCL, 0o644)
        assert not second.ok
        ctx.sc.unlink(path)

    def _t_dir_open(self, ctx: SuiteContext, index: int) -> None:
        """O_DIRECTORY accepts dirs, rejects files with ENOTDIR."""
        base = ctx.path(f"g_dopen_{index}")
        ctx.sc.mkdir(base, 0o755)
        ok = ctx.sc.open(base, RD_DIR)
        assert ok.ok
        ctx.sc.close(ok.retval)
        # Only the first instance probes the failure path: ENOTDIR is
        # the one open error code CrashMonkey leads on (Figure 4), so
        # xfstests' mechanistic count must stay below its scaled target.
        if index < len(self._generic_templates()):
            ctx.ensure_file(f"{base}/f")
            bad = ctx.sc.open(f"{base}/f", RD_DIR)
            assert not bad.ok

    def _t_probe_enoent(self, ctx: SuiteContext, index: int) -> None:
        """Missing files and missing intermediate components."""
        assert not ctx.sc.open(ctx.path(f"g_missing_{index}"), constants.O_RDONLY).ok
        assert not ctx.sc.stat(ctx.path(f"g_missing_{index}/sub")).ok
        assert not ctx.sc.truncate(ctx.path(f"g_missing_{index}"), 0).ok

    def _t_probe_eexist(self, ctx: SuiteContext, index: int) -> None:
        """mkdir and O_EXCL collisions."""
        base = ctx.path(f"g_exist_{index}")
        ctx.sc.mkdir(base, 0o755)
        assert not ctx.sc.mkdir(base, 0o755).ok

    def _t_probe_eisdir_enotdir(self, ctx: SuiteContext, index: int) -> None:
        """Writing a directory; descending through a file."""
        base = ctx.path(f"g_kind_{index}")
        ctx.sc.mkdir(base, 0o755)
        assert not ctx.sc.open(base, constants.O_WRONLY).ok
        ctx.ensure_file(f"{base}/f")
        # Gate the ENOTDIR probe like _t_dir_open (CrashMonkey must
        # stay ahead on that code); later instances use stat, whose
        # ENOTDIR does not land in open's output space.
        if index < len(self._generic_templates()):
            assert not ctx.sc.open(f"{base}/f/impossible", constants.O_RDONLY).ok
        else:
            assert not ctx.sc.stat(f"{base}/f/impossible").ok

    def _t_probe_name_limits(self, ctx: SuiteContext, index: int) -> None:
        """NAME_MAX and PATH_MAX boundaries."""
        ok_name = ctx.path("n" * constants.NAME_MAX)
        too_long = ctx.path("n" * (constants.NAME_MAX + 1))
        created = ctx.sc.mkdir(ok_name, 0o755)
        assert created.ok or created.errno != 0  # first instance creates
        assert not ctx.sc.open(too_long, constants.O_RDONLY).ok
        ctx.sc.rmdir(ok_name)

    def _t_probe_symlink_loop(self, ctx: SuiteContext, index: int) -> None:
        """Cyclic symlinks fail with ELOOP."""
        a, b = ctx.path(f"g_la_{index}"), ctx.path(f"g_lb_{index}")
        ctx.sc.symlink(b, a)
        ctx.sc.symlink(a, b)
        assert not ctx.sc.open(a, constants.O_RDONLY).ok
        ctx.sc.unlink(a)
        ctx.sc.unlink(b)

    def _t_probe_bad_fd(self, ctx: SuiteContext, index: int) -> None:
        """Operations on closed and never-open descriptors."""
        assert ctx.sc.read(9999, 10).errno != 0
        assert ctx.sc.write(9999, count=10).errno != 0
        assert ctx.sc.close(9999).errno != 0
        assert ctx.sc.lseek(-1, 0, constants.SEEK_SET).errno != 0

    def _t_zero_byte_io(self, ctx: SuiteContext, index: int) -> None:
        """Zero-length reads and writes are legal no-ops."""
        path = ctx.path(f"g_zero_{index}")
        result = ctx.sc.open(path, WR_TRUNC, 0o644)
        assert result.ok
        assert ctx.sc.write(result.retval, count=0).retval == 0
        ctx.sc.close(result.retval)
        rd = ctx.sc.open(path, constants.O_RDONLY).retval
        assert ctx.sc.read(rd, 0).retval == 0
        ctx.sc.close(rd)
        ctx.sc.unlink(path)

    def _t_unlink_recreate(self, ctx: SuiteContext, index: int) -> None:
        """Unlink releases the name and space for reuse (via creat)."""
        path = ctx.path(f"g_unl_{index}")
        ctx.ensure_file(path, size=4096)
        before = ctx.fs.device.free_blocks
        assert ctx.sc.unlink(path).ok
        assert ctx.fs.device.free_blocks >= before
        recreated = ctx.sc.creat(path, 0o644)
        assert recreated.ok
        ctx.sc.write(recreated.retval, count=16)
        ctx.sc.close(recreated.retval)
        assert ctx.fs.lookup(path).size == 16
        ctx.sc.unlink(path)

    def _t_readonly_checks(self, ctx: SuiteContext, index: int) -> None:
        """Read-only file rejects write opens for a non-owner."""
        path = ctx.path(f"g_ro_{index}")
        with ctx.as_root():
            ctx.ensure_file(path, size=8, mode=0o444)
        assert not ctx.sc.open(path, constants.O_WRONLY).ok
        rd = ctx.sc.open(path, constants.O_RDONLY)
        assert rd.ok
        ctx.sc.close(rd.retval)

    # ------------------------------------------------------------------
    # ext4-specific templates
    # ------------------------------------------------------------------

    def _ext4_templates(self) -> list[Template]:
        return [
            self._t_ext4_xattr_roundtrip,
            self._t_ext4_xattr_flags,
            self._t_ext4_xattr_ibody_limit,
            self._t_ext4_large_offsets,
            self._t_ext4_quota,
            self._t_ext4_device_full,
            self._t_ext4_direct_io,
            self._t_ext4_block_boundaries,
            self._t_ext4_readonly_mount,
            self._t_ext4_frozen_fs,
        ]

    def _t_ext4_xattr_roundtrip(self, ctx: SuiteContext, index: int) -> None:
        """set/get xattr via all three variants."""
        path = ctx.path(f"e_xattr_{index}")
        ctx.ensure_file(path)
        value = b"v" * (1 << (index % 5))
        assert ctx.sc.setxattr(path, "user.test", value).ok
        # Exercise the l*/f* variants on the same inode.
        assert ctx.sc.lsetxattr(path, "user.lvar", b"l").ok
        wfd = ctx.sc.open(path, constants.O_RDWR).retval
        assert ctx.sc.fsetxattr(wfd, "user.fvar", b"f").ok
        ctx.sc.close(wfd)
        probe = ctx.sc.getxattr(path, "user.test", 0)
        assert probe.retval == len(value)
        got = ctx.sc.getxattr(path, "user.test", 64)
        assert got.data == value
        fd = ctx.sc.open(path, constants.O_RDONLY).retval
        assert ctx.sc.fgetxattr(fd, "user.test", 64).retval == len(value)
        ctx.sc.close(fd)
        assert ctx.sc.getxattr(path, "user.absent", 64).errno != 0
        ctx.sc.unlink(path)

    def _t_ext4_xattr_flags(self, ctx: SuiteContext, index: int) -> None:
        """XATTR_CREATE / XATTR_REPLACE semantics."""
        path = ctx.path(f"e_xflags_{index}")
        ctx.ensure_file(path)
        assert ctx.sc.setxattr(path, "user.a", b"1", flags=constants.XATTR_CREATE).ok
        assert not ctx.sc.setxattr(path, "user.a", b"2", flags=constants.XATTR_CREATE).ok
        assert ctx.sc.setxattr(path, "user.a", b"3", flags=constants.XATTR_REPLACE).ok
        assert not ctx.sc.setxattr(path, "user.b", b"4", flags=constants.XATTR_REPLACE).ok
        ctx.sc.unlink(path)

    def _t_ext4_xattr_ibody_limit(self, ctx: SuiteContext, index: int) -> None:
        """In-inode xattr space exhausts with ENOSPC (the Figure 1 area)."""
        path = ctx.path(f"e_xbody_{index}")
        ctx.ensure_file(path)
        filler = b"F" * 60
        assert ctx.sc.setxattr(path, "user.fill", filler).ok
        crowded = ctx.sc.setxattr(path, "user.more", b"M" * 60)
        assert not crowded.ok  # no room left in the inode body
        ctx.sc.unlink(path)

    def _t_ext4_large_offsets(self, ctx: SuiteContext, index: int) -> None:
        """Seeks near the 2^63-1 offset limit overflow correctly."""
        path = ctx.path(f"e_loff_{index}")
        ctx.ensure_file(path, size=512)
        fd = ctx.sc.open(path, constants.O_RDONLY).retval
        huge = constants.MAX_OFFSET - 100
        assert ctx.sc.lseek(fd, huge, constants.SEEK_SET).retval == huge
        assert ctx.sc.lseek(fd, 200, constants.SEEK_CUR).errno != 0  # overflow
        assert ctx.sc.lseek(fd, -1, constants.SEEK_SET).errno != 0
        ctx.sc.close(fd)
        ctx.sc.unlink(path)

    def _t_ext4_quota(self, ctx: SuiteContext, index: int) -> None:
        """Block quota enforcement on write and create."""
        with ctx.exhausted_quota():
            blocked = ctx.sc.open(
                ctx.path(f"e_quota_{index}"), WR_PLAIN, 0o644
            )
            assert not blocked.ok

    def _t_ext4_device_full(self, ctx: SuiteContext, index: int) -> None:
        """ENOSPC on create and write when the device is exhausted."""
        victim = ctx.path(f"e_full_{index}")
        ctx.ensure_file(victim)
        with ctx.full_device():
            assert not ctx.sc.open(ctx.path(ctx.unique_name("efull")), WR_PLAIN).ok
            fd = ctx.sc.open(victim, constants.O_WRONLY).retval
            assert ctx.sc.write(fd, count=8192).errno != 0
            ctx.sc.close(fd)
        ctx.sc.unlink(victim)

    def _t_ext4_direct_io(self, ctx: SuiteContext, index: int) -> None:
        """O_DIRECT|O_SYNC write path (block-aligned I/O)."""
        path = ctx.path(f"e_dio_{index}")
        flags = constants.O_RDWR | constants.O_CREAT | constants.O_DIRECT | constants.O_SYNC
        result = ctx.sc.open(path, flags, 0o644)
        assert result.ok
        ctx.sc.pwrite64(result.retval, count=4096, offset=0)
        ctx.sc.fsync(result.retval)
        ctx.sc.close(result.retval)
        ctx.sc.unlink(path)

    def _t_ext4_block_boundaries(self, ctx: SuiteContext, index: int) -> None:
        """Writes straddling block boundaries account blocks correctly."""
        path = ctx.path(f"e_blk_{index}")
        block = ctx.fs.device.block_size
        result = ctx.sc.open(path, WR_TRUNC, 0o644)
        assert result.ok
        ctx.sc.pwrite64(result.retval, count=block + 1, offset=block - 1)
        ctx.sc.close(result.retval)
        inode = ctx.fs.lookup(path)
        assert inode.size == 2 * block
        assert ctx.fs.device.owner_blocks(inode.ino) == 2
        ctx.sc.unlink(path)

    def _t_ext4_readonly_mount(self, ctx: SuiteContext, index: int) -> None:
        """EROFS for every mutating call on a read-only mount."""
        path = ctx.path(f"e_rom_{index}")
        ctx.ensure_file(path, size=64)
        with ctx.read_only_fs():
            assert not ctx.sc.open(path, constants.O_WRONLY).ok
            assert not ctx.sc.truncate(path, 0).ok
            assert not ctx.sc.mkdir(ctx.path(f"e_rom_d_{index}"), 0o755).ok
            assert not ctx.sc.chmod(path, 0o600).ok
            rd = ctx.sc.open(path, constants.O_RDONLY)
            assert rd.ok  # reads still fine
            ctx.sc.close(rd.retval)
        ctx.sc.unlink(path)

    def _t_ext4_frozen_fs(self, ctx: SuiteContext, index: int) -> None:
        """EBUSY while the volume is frozen for a snapshot."""
        path = ctx.path(f"e_frz_{index}")
        ctx.ensure_file(path)
        with ctx.frozen_fs():
            assert not ctx.sc.open(path, constants.O_WRONLY | constants.O_TRUNC).ok
        writable = ctx.sc.open(path, constants.O_WRONLY)
        assert writable.ok
        ctx.sc.close(writable.retval)
        ctx.sc.unlink(path)
