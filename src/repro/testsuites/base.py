"""Test-suite framework: workloads, run context, and the suite runner.

A simulated test suite is a named collection of :class:`Workload`
objects (each a function over a :class:`SuiteContext`) plus an optional
calibration pass that tops the emitted syscall stream up to the suite's
statistical profile (see :mod:`repro.testsuites.profiles`).  The
:class:`SuiteRunner` mounts a fresh file system, attaches a trace
recorder, runs everything, and hands back the trace — the same life
cycle the paper uses: "we tested Ext4 with all CrashMonkey's tests …
as well as all of the 706 generic tests and 308 Ext4-specific tests
from xfstests", traced with LTTng.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.trace.events import SyscallEvent
from repro.trace.recorder import TraceRecorder
from repro.vfs import constants
from repro.vfs.crash import CrashSimulator
from repro.vfs.fd import FdTable, Process, SystemFileTable
from repro.vfs.filesystem import FileSystem
from repro.vfs.path import Credentials
from repro.vfs.syscalls import SyscallInterface

#: The uid the simulated suites run under (xfstests' fsqa user model:
#: not root, so permission checks are live).
TESTER_UID = 1000
TESTER_GID = 1000


@dataclass
class Workload:
    """One test: a name, a group label, and a body."""

    name: str
    group: str
    body: Callable[["SuiteContext"], None]

    def run(self, ctx: "SuiteContext") -> None:
        self.body(ctx)


class SuiteContext:
    """Everything a workload body needs: syscalls, helpers, RNG.

    The context exposes the raw :class:`SyscallInterface` as ``sc`` —
    workloads issue real syscalls, never shortcuts — plus helpers for
    scenario scaffolding that a real test suite would do with shell
    setup (creating fixture trees, dropping privileges, remounting
    read-only, exhausting quota).
    """

    def __init__(
        self,
        fs: FileSystem,
        sc: SyscallInterface,
        mount_point: str,
        rng: random.Random,
    ) -> None:
        self.fs = fs
        self.sc = sc
        self.mount_point = mount_point.rstrip("/")
        self.rng = rng
        self.crash_sim: CrashSimulator | None = None
        self._unique = 0

    # -- paths ---------------------------------------------------------------

    def path(self, *parts: str) -> str:
        """Absolute path under the mount point."""
        tail = "/".join(parts)
        return f"{self.mount_point}/{tail}" if tail else self.mount_point

    def unique_name(self, prefix: str = "f") -> str:
        """A fresh name for O_CREAT|O_EXCL-style scenarios."""
        self._unique += 1
        return f"{prefix}{self._unique:07d}"

    # -- fixtures -------------------------------------------------------------

    def ensure_dir(self, path: str) -> None:
        """mkdir -p one component level at a time."""
        parts = [part for part in path.split("/") if part]
        current = ""
        for part in parts:
            current = f"{current}/{part}"
            self.sc.mkdir(current, 0o755)

    def ensure_file(self, path: str, size: int = 0, mode: int = 0o644) -> None:
        """Create (or recreate) a file with *size* bytes of content."""
        result = self.sc.open(
            path, constants.O_WRONLY | constants.O_CREAT | constants.O_TRUNC, mode
        )
        if not result.ok:
            return
        if size:
            self.sc.write(result.retval, count=size)
        self.sc.close(result.retval)

    # -- privilege / state scaffolding ------------------------------------------

    @contextmanager
    def as_root(self) -> Iterator[None]:
        """Temporarily run as root (test setup that needs privilege)."""
        saved = self.sc.process.creds
        self.sc.process.creds = Credentials(uid=0, gid=0)
        try:
            yield
        finally:
            self.sc.process.creds = saved

    @contextmanager
    def read_only_fs(self) -> Iterator[None]:
        """Remount the volume read-only for the duration."""
        saved = self.fs.read_only
        self.fs.read_only = True
        try:
            yield
        finally:
            self.fs.read_only = saved

    @contextmanager
    def frozen_fs(self) -> Iterator[None]:
        """Freeze the volume (snapshot in progress) for the duration."""
        saved = self.fs.frozen
        self.fs.frozen = True
        try:
            yield
        finally:
            self.fs.frozen = saved

    @contextmanager
    def full_device(self) -> Iterator[None]:
        """Withhold all free blocks so allocations fail with ENOSPC."""
        self.fs.device.reserve_all_free()
        try:
            yield
        finally:
            self.fs.device.release_reserved()

    @contextmanager
    def exhausted_quota(self) -> Iterator[None]:
        """Give the tester uid an already-exhausted block quota."""
        uid = self.sc.process.creds.uid
        hog = self.path(self.unique_name("quota_hog"))
        self.ensure_file(hog, size=self.fs.device.block_size)
        self.fs.set_quota(uid, 1)
        try:
            yield
        finally:
            self.fs.set_quota(uid, 0)
            self.sc.unlink(hog)

    @contextmanager
    def fd_limit(self, limit: int) -> Iterator[None]:
        """Temporarily lower the process fd limit (EMFILE scenarios)."""
        table = self.sc.process.fd_table
        saved = table.max_fds
        table.max_fds = limit
        try:
            yield
        finally:
            table.max_fds = saved


@dataclass
class WorkloadResult:
    """Outcome of one workload (failures are data, not crashes)."""

    name: str
    group: str
    ok: bool
    detail: str = ""


@dataclass
class RunResult:
    """Outcome of a full suite run: the trace plus bookkeeping."""

    suite_name: str
    mount_point: str
    events: list[SyscallEvent]
    workload_results: list[WorkloadResult] = field(default_factory=list)
    scale: float = 1.0

    @property
    def failures(self) -> list[WorkloadResult]:
        return [result for result in self.workload_results if not result.ok]

    def event_count(self) -> int:
        return len(self.events)


class TestSuite:
    """Base class for the simulated suites.

    Subclasses provide :meth:`workloads` (the mechanistic tests) and
    optionally :meth:`calibrate` (the statistical top-up pass that runs
    after all workloads, receiving the live recorder).
    """

    name = "abstract-suite"
    mount_point = "/mnt/test"
    #: explicit RNG seed; None = the stable per-name default.  Set by
    #: subclasses' ``seed=`` constructor argument (``repro suites
    #: --seed``) so stored runs are reproducible from their metadata.
    seed_override: int | None = None

    def workloads(self) -> Iterable[Workload]:
        raise NotImplementedError

    def calibrate(self, ctx: SuiteContext, recorder: TraceRecorder) -> None:
        """Statistical top-up; default none."""

    def make_filesystem(self) -> FileSystem:
        """Build the volume this suite runs against (override to size)."""
        return FileSystem()

    def seed(self) -> int:
        """Deterministic RNG seed; stable per suite name.

        An explicit :attr:`seed_override` wins, so two runs recorded
        with the same seed replay the same workload stream.
        """
        if self.seed_override is not None:
            return self.seed_override
        return sum(ord(char) for char in self.name) * 7919


class SuiteRunner:
    """Mounts, traces, runs, calibrates, and returns the trace."""

    def __init__(self, suite: TestSuite) -> None:
        self.suite = suite

    def _make_context(self, fs: FileSystem) -> SuiteContext:
        process = Process(
            creds=Credentials(uid=TESTER_UID, gid=TESTER_GID),
            fd_table=FdTable(SystemFileTable()),
            cwd_ino=fs.root_ino,
            pid=1000,
            comm=self.suite.name[:15],
        )
        sc = SyscallInterface(fs, process=process)
        ctx = SuiteContext(
            fs, sc, self.suite.mount_point, random.Random(self.suite.seed())
        )
        ctx.crash_sim = CrashSimulator(fs)
        return ctx

    def _mount(self, ctx: SuiteContext) -> None:
        """Create the mount-point tree (done by root, like mount+chown)."""
        with ctx.as_root():
            ctx.ensure_dir(ctx.mount_point)
            result = ctx.sc.chmod(ctx.mount_point, 0o777)
            assert result.ok, result

    def run(self) -> RunResult:
        """Execute the whole suite on a fresh volume and return the trace."""
        fs = self.suite.make_filesystem()
        ctx = self._make_context(fs)
        recorder = TraceRecorder()
        recorder.attach(ctx.sc)
        self._mount(ctx)

        results: list[WorkloadResult] = []
        for workload in self.suite.workloads():
            try:
                workload.run(ctx)
            except Exception as exc:  # a broken workload is a result, not a crash
                results.append(
                    WorkloadResult(workload.name, workload.group, False, repr(exc))
                )
            else:
                results.append(WorkloadResult(workload.name, workload.group, True))

        self.suite.calibrate(ctx, recorder)
        recorder.detach_all()
        return RunResult(
            suite_name=self.suite.name,
            mount_point=self.suite.mount_point,
            events=recorder.drain(),
            workload_results=results,
            scale=getattr(self.suite, "scale", 1.0),
        )
