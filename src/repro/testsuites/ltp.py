"""LTP substrate: the Linux Test Project's syscall-test style.

The paper's related work names LTP alongside xfstests as the
hand-written regression suites ("Regression-testing suites such as
xfstests and LTP use hand-written tests for various aspects of file
system functionality").  This third tester rounds out the comparison
machinery and demonstrates the paper's per-tester setup claim: adding a
tester to IOCov only requires its mount-point expression — LTP runs
under its own ``TMPDIR`` (here ``/tmp/ltp``), not ``/mnt/test``.

LTP's style differs from xfstests in a way that shows up in coverage:
its syscall tests are *per-call conformance batteries* (open01..openNN,
each checking one documented behaviour, heavy on errno assertions),
not workload regressions.  The simulated suite mirrors that: many
small testcases per syscall, each asserting one success or one errno,
with little data volume.  No statistical calibration is applied — LTP's
coverage here is purely what its mechanistic tests produce, which makes
it a useful uncalibrated contrast to the two profiled suites.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.testsuites.base import SuiteContext, TestSuite, Workload
from repro.vfs import constants
from repro.vfs.filesystem import FileSystem

Case = Callable[[SuiteContext, int], None]


class LtpSuite(TestSuite):
    """The simulated LTP syscall-test suite.

    Args:
        repeats: how many numbered instances each battery gets
            (LTP ships openNN up to two digits; default 6 gives a
            ~150-testcase suite).
    """

    name = "LTP"
    mount_point = "/tmp/ltp"

    def __init__(self, repeats: int = 6, seed: int | None = None) -> None:
        self.repeats = repeats
        self.seed_override = seed

    def make_filesystem(self) -> FileSystem:
        return FileSystem(total_blocks=32768)  # 128 MiB

    # ------------------------------------------------------------------
    # population: per-syscall batteries
    # ------------------------------------------------------------------

    def workloads(self) -> Iterable[Workload]:
        batteries: dict[str, Case] = {
            "open": self._battery_open,
            "creat": self._battery_creat,
            "read": self._battery_read,
            "write": self._battery_write,
            "lseek": self._battery_lseek,
            "truncate": self._battery_truncate,
            "ftruncate": self._battery_ftruncate,
            "mkdir": self._battery_mkdir,
            "rmdir": self._battery_rmdir,
            "chmod": self._battery_chmod,
            "chdir": self._battery_chdir,
            "close": self._battery_close,
            "link": self._battery_link,
            "symlink": self._battery_symlink,
            "rename": self._battery_rename,
            "unlink": self._battery_unlink,
            "access": self._battery_access,
            "setxattr": self._battery_setxattr,
            "getxattr": self._battery_getxattr,
            "fsync": self._battery_fsync,
        }
        for syscall, battery in batteries.items():
            for instance in range(1, self.repeats + 1):
                yield Workload(
                    f"{syscall}{instance:02d}",
                    "syscalls",
                    self._bind(battery, instance),
                )

    @staticmethod
    def _bind(battery: Case, instance: int) -> Callable[[SuiteContext], None]:
        def body(ctx: SuiteContext) -> None:
            battery(ctx, instance)

        return body

    # ------------------------------------------------------------------
    # batteries (one behaviour per numbered instance, LTP-style)
    # ------------------------------------------------------------------

    def _battery_open(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"open{instance:02d}")
        if instance == 1:  # basic create
            result = ctx.sc.open(path, constants.O_CREAT | constants.O_RDWR, 0o644)
            assert result.ok
            ctx.sc.close(result.retval)
        elif instance == 2:  # ENOENT
            assert ctx.sc.open(ctx.path("absent"), constants.O_RDONLY).errno != 0
        elif instance == 3:  # EEXIST via O_EXCL
            ctx.ensure_file(path)
            flags = constants.O_CREAT | constants.O_EXCL | constants.O_WRONLY
            assert not ctx.sc.open(path, flags, 0o644).ok
        elif instance == 4:  # EISDIR
            ctx.ensure_dir(path)
            assert not ctx.sc.open(path, constants.O_WRONLY).ok
        elif instance == 5:  # ENAMETOOLONG
            long_name = ctx.path("n" * (constants.NAME_MAX + 1))
            assert not ctx.sc.open(long_name, constants.O_RDONLY).ok
        else:  # O_APPEND semantics
            ctx.ensure_file(path, size=10)
            result = ctx.sc.open(path, constants.O_WRONLY | constants.O_APPEND)
            assert result.ok
            ctx.sc.write(result.retval, count=5)
            ctx.sc.close(result.retval)
            assert ctx.fs.lookup(path).size == 15

    def _battery_creat(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"creat{instance:02d}")
        result = ctx.sc.creat(path, (0o600, 0o644, 0o666, 0o755, 0o444, 0o640)[instance % 6])
        assert result.ok
        ctx.sc.close(result.retval)
        if instance % 2:
            again = ctx.sc.creat(path, 0o644)  # truncates existing
            assert again.ok
            ctx.sc.close(again.retval)

    def _battery_read(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"read{instance:02d}")
        ctx.ensure_file(path, size=64 * instance)
        fd = ctx.sc.open(path, constants.O_RDONLY).retval
        if instance == 1:
            assert ctx.sc.read(fd, 64).retval == 64
        elif instance == 2:
            assert ctx.sc.read(fd, 0).retval == 0
        elif instance == 3:
            assert ctx.sc.read(fd, -1).errno != 0  # EINVAL
        elif instance == 4:
            ctx.sc.lseek(fd, 0, constants.SEEK_END)
            assert ctx.sc.read(fd, 16).retval == 0  # EOF
        else:
            assert ctx.sc.read(fd, 10**6).retval == 64 * instance  # short
        ctx.sc.close(fd)
        if instance == 6:
            assert ctx.sc.read(fd, 8).errno != 0  # EBADF after close

    def _battery_write(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"write{instance:02d}")
        result = ctx.sc.open(path, constants.O_CREAT | constants.O_WRONLY, 0o644)
        assert result.ok
        fd = result.retval
        if instance == 1:
            assert ctx.sc.write(fd, count=128).retval == 128
        elif instance == 2:
            assert ctx.sc.write(fd, count=0).retval == 0
        elif instance == 3:
            assert ctx.sc.write(fd, count=-1).errno != 0
        elif instance == 4:
            assert ctx.sc.pwrite64(fd, count=32, offset=1000).retval == 32
        else:
            assert ctx.sc.writev(fd, [b"a" * 8, b"b" * 24]).retval == 32
        ctx.sc.close(fd)
        if instance == 6:
            rd = ctx.sc.open(path, constants.O_RDONLY).retval
            assert ctx.sc.write(rd, count=4).errno != 0  # EBADF
            ctx.sc.close(rd)

    def _battery_lseek(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"lseek{instance:02d}")
        ctx.ensure_file(path, size=100)
        fd = ctx.sc.open(path, constants.O_RDONLY).retval
        checks = (
            lambda: ctx.sc.lseek(fd, 10, constants.SEEK_SET).retval == 10,
            lambda: ctx.sc.lseek(fd, 5, constants.SEEK_CUR).retval >= 5,
            lambda: ctx.sc.lseek(fd, 0, constants.SEEK_END).retval == 100,
            lambda: ctx.sc.lseek(fd, -1, constants.SEEK_SET).errno != 0,
            lambda: ctx.sc.lseek(fd, 0, 99).errno != 0,
            lambda: ctx.sc.lseek(fd, 0, constants.SEEK_DATA).retval == 0,
        )
        assert checks[(instance - 1) % len(checks)]()
        ctx.sc.close(fd)

    def _battery_truncate(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"trunc{instance:02d}")
        ctx.ensure_file(path, size=1000)
        if instance == 1:
            assert ctx.sc.truncate(path, 0).ok
        elif instance == 2:
            assert ctx.sc.truncate(path, 5000).ok
            assert ctx.fs.lookup(path).size == 5000
        elif instance == 3:
            assert ctx.sc.truncate(path, -1).errno != 0
        elif instance == 4:
            assert ctx.sc.truncate(ctx.path("absent"), 0).errno != 0
        else:
            assert ctx.sc.truncate(path, instance * 100).ok

    def _battery_ftruncate(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"ftrunc{instance:02d}")
        ctx.ensure_file(path, size=500)
        fd = ctx.sc.open(path, constants.O_RDWR).retval
        if instance % 3 == 0:
            assert ctx.sc.ftruncate(fd, -2).errno != 0
        else:
            assert ctx.sc.ftruncate(fd, instance * 64).ok
        ctx.sc.close(fd)
        if instance == 5:
            assert ctx.sc.ftruncate(fd, 0).errno != 0  # EBADF

    def _battery_mkdir(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"mkdir{instance:02d}")
        if instance == 2:
            ctx.ensure_dir(path)
            assert not ctx.sc.mkdir(path, 0o755).ok  # EEXIST
        elif instance == 3:
            assert not ctx.sc.mkdir(ctx.path("no/deep"), 0o755).ok  # ENOENT
        else:
            assert ctx.sc.mkdir(path, (0o755, 0o700, 0o777)[instance % 3]).ok

    def _battery_rmdir(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"rmdir{instance:02d}")
        ctx.ensure_dir(path)
        if instance == 2:
            ctx.ensure_file(f"{path}/f")
            assert not ctx.sc.rmdir(path).ok  # ENOTEMPTY
        elif instance == 3:
            ctx.ensure_file(ctx.path("rmfile"))
            assert not ctx.sc.rmdir(ctx.path("rmfile")).ok  # ENOTDIR
        else:
            assert ctx.sc.rmdir(path).ok

    def _battery_chmod(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"chmod{instance:02d}")
        ctx.ensure_file(path)
        modes = (0o600, 0o644, 0o000, 0o4755, 0o1777, 0o444)
        if instance == 3:
            assert not ctx.sc.chmod(ctx.path("absent"), 0o600).ok
        else:
            assert ctx.sc.chmod(path, modes[instance % 6]).ok
            assert ctx.fs.lookup(path).permissions == modes[instance % 6]

    def _battery_chdir(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"chdir{instance:02d}")
        ctx.ensure_dir(path)
        if instance == 2:
            ctx.ensure_file(ctx.path("cdfile"))
            assert not ctx.sc.chdir(ctx.path("cdfile")).ok  # ENOTDIR
        elif instance == 3:
            assert not ctx.sc.chdir(ctx.path("absent")).ok
        else:
            assert ctx.sc.chdir(path).ok
            ctx.sc.chdir("/")

    def _battery_close(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"close{instance:02d}")
        ctx.ensure_file(path)
        fd = ctx.sc.open(path, constants.O_RDONLY).retval
        assert ctx.sc.close(fd).ok
        if instance % 2:
            assert ctx.sc.close(fd).errno != 0       # EBADF: double close
        if instance == 4:
            assert ctx.sc.close(-1).errno != 0
        if instance == 5:
            assert ctx.sc.close(99999).errno != 0

    def _battery_link(self, ctx: SuiteContext, instance: int) -> None:
        src = ctx.path(f"link{instance:02d}")
        ctx.ensure_file(src, size=8)
        if instance == 2:
            assert not ctx.sc.link(ctx.path("absent"), ctx.path("l2")).ok
        elif instance == 3:
            ctx.ensure_dir(ctx.path("ldir"))
            assert not ctx.sc.link(ctx.path("ldir"), ctx.path("l3")).ok  # EPERM
        else:
            dst = ctx.path(f"hard{instance:02d}")
            assert ctx.sc.link(src, dst).ok
            assert ctx.fs.lookup(dst).nlink == 2

    def _battery_symlink(self, ctx: SuiteContext, instance: int) -> None:
        target = ctx.path(f"symt{instance:02d}")
        link = ctx.path(f"syml{instance:02d}")
        ctx.ensure_file(target)
        assert ctx.sc.symlink(target, link).ok
        if instance % 2:
            assert ctx.sc.stat(link).ok           # follows
            assert ctx.sc.lstat(link).ok
        else:
            assert not ctx.sc.symlink(target, link).ok  # EEXIST

    def _battery_rename(self, ctx: SuiteContext, instance: int) -> None:
        src = ctx.path(f"ren{instance:02d}")
        dst = ctx.path(f"ren{instance:02d}_new")
        ctx.ensure_file(src, size=16)
        if instance == 3:
            assert not ctx.sc.rename(ctx.path("absent"), dst).ok
        else:
            assert ctx.sc.rename(src, dst).ok
            assert not ctx.sc.stat(src).ok

    def _battery_unlink(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"unl{instance:02d}")
        ctx.ensure_file(path)
        if instance == 3:
            ctx.ensure_dir(ctx.path("udir"))
            assert not ctx.sc.unlink(ctx.path("udir")).ok  # EISDIR
        else:
            assert ctx.sc.unlink(path).ok
            assert not ctx.sc.stat(path).ok

    def _battery_access(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"acc{instance:02d}")
        ctx.ensure_file(path, mode=0o640)
        if instance == 2:
            assert not ctx.sc.access(ctx.path("absent"), 0).ok
        elif instance == 3:
            assert ctx.sc.access(path, 0o77).errno != 0  # EINVAL
        else:
            assert ctx.sc.access(path, 0).ok

    def _battery_setxattr(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"setx{instance:02d}")
        ctx.ensure_file(path)
        if instance == 2:
            flags = constants.XATTR_REPLACE
            assert not ctx.sc.setxattr(path, "user.none", b"v", flags=flags).ok
        elif instance == 3:
            assert not ctx.sc.setxattr(path, "bogus.ns", b"v").ok  # EOPNOTSUPP
        else:
            assert ctx.sc.setxattr(path, "user.ltp", b"x" * instance).ok

    def _battery_getxattr(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"getx{instance:02d}")
        ctx.ensure_file(path)
        ctx.sc.setxattr(path, "user.ltp", b"value")
        if instance == 2:
            assert ctx.sc.getxattr(path, "user.absent", 16).errno != 0  # ENODATA
        elif instance == 3:
            assert ctx.sc.getxattr(path, "user.ltp", 2).errno != 0  # ERANGE
        elif instance == 4:
            assert ctx.sc.getxattr(path, "user.ltp", 0).retval == 5  # probe
        else:
            assert ctx.sc.getxattr(path, "user.ltp", 64).retval == 5

    def _battery_fsync(self, ctx: SuiteContext, instance: int) -> None:
        path = ctx.path(f"sync{instance:02d}")
        ctx.ensure_file(path, size=256)
        fd = ctx.sc.open(path, constants.O_WRONLY).retval
        ctx.sc.write(fd, count=128)
        if instance % 2:
            assert ctx.sc.fsync(fd).ok
        else:
            assert ctx.sc.fdatasync(fd).ok
        ctx.sc.close(fd)
        if instance == 5:
            assert ctx.sc.fsync(fd).errno != 0  # EBADF
        if instance == 6:
            assert ctx.sc.sync().ok
