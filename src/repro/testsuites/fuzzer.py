"""A syscall fuzzer with input-coverage feedback (paper future work).

The paper plans to "evaluate fuzzing systems" with IOCov, and argues
that path coverage — the usual fuzzer feedback — shares code coverage's
blind spots.  This module closes the loop: a Syzkaller-style syscall
fuzzer whose *feedback signal is IOCov's input coverage*.  A mutated
program joins the corpus iff executing it exercised an input partition
nothing in the corpus had reached.

Components:

* :class:`FuzzProgram` — a short sequence of syscall ops with concrete
  arguments (paths, flags, sizes), mutable and serializable to a
  syzkaller-like program text (which :mod:`repro.trace.syzkaller` can
  parse back);
* :class:`CoverageGuidedFuzzer` — generate/mutate/execute/feedback
  loop; also runnable with feedback disabled (pure random) so the
  benefit of coverage guidance is measurable.

The fuzzer runs real programs against a fresh VFS per execution, so
every partition it claims is genuinely exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.core.input_coverage import InputCoverage
from repro.core.variants import VariantHandler
from repro.trace.recorder import TraceRecorder
from repro.vfs import constants
from repro.vfs.filesystem import FileSystem
from repro.vfs.syscalls import SyscallInterface

#: Syscalls the fuzzer emits, with their argument slots.
_OP_KINDS = (
    "open", "read", "write", "lseek", "truncate",
    "mkdir", "chmod", "setxattr", "getxattr", "close",
)

#: Flag values mutation picks from (single flags; combination happens
#: by OR-ing during mutation).
_FLAG_POOL = tuple(constants.OPEN_FLAG_NAMES.values())

#: Mundane initial sizes — the kind a naive generator starts from.
#: Boundary regions (zero, huge powers of two, the maxima) are only
#: reachable by *compounding mutations*, which is where coverage
#: feedback earns its keep: retained stepping-stone programs let the
#: size walk reach far decades.
_SIZE_POOL = (16, 100, 512, 1000, 4096, 8000)


@dataclass(frozen=True)
class FuzzOp:
    """One fuzzer-chosen syscall with concrete arguments."""

    kind: str
    path_index: int = 0
    flags: int = 0
    size: int = 0
    whence: int = 0
    mode: int = 0o644

    def render(self) -> str:
        """Syzkaller-like program line (parsable by SyzkallerParser)."""
        path = f"./f{self.path_index}"
        if self.kind == "open":
            return (
                f"r0 = openat(0xffffffffffffff9c, &(0x7f0000000040)="
                f"'{path}\\x00', {hex(self.flags)}, {oct(self.mode).replace('0o', '0x1')})"
            )
        if self.kind in ("read", "write"):
            return f"{self.kind}(r0, &(0x7f0000000080), {hex(self.size)})"
        if self.kind == "lseek":
            return f"lseek(r0, {hex(self.size)}, {hex(self.whence)})"
        if self.kind == "truncate":
            return f"truncate(&(0x7f0000000040)='{path}\\x00', {hex(self.size)})"
        if self.kind == "mkdir":
            return f"mkdir(&(0x7f0000000040)='{path}d\\x00', {hex(self.mode)})"
        if self.kind == "chmod":
            return f"chmod(&(0x7f0000000040)='{path}\\x00', {hex(self.mode)})"
        if self.kind == "setxattr":
            return (
                f"setxattr(&(0x7f0000000040)='{path}\\x00', "
                f"&(0x7f0000000080)='user.fuzz\\x00', "
                f"&(0x7f00000000c0), {hex(self.size)}, 0x0)"
            )
        if self.kind == "getxattr":
            return (
                f"getxattr(&(0x7f0000000040)='{path}\\x00', "
                f"&(0x7f0000000080)='user.fuzz\\x00', "
                f"&(0x7f00000000c0), {hex(self.size)})"
            )
        return f"close(r0)"


@dataclass
class FuzzProgram:
    """A short op sequence; the fuzzer's unit of mutation.

    ``env`` names an execution environment (an errno-provoking state
    setup applied before the ops run — read-only volume, full device,
    exhausted quota…).  The base fuzzer never sets one; the weighted
    campaign layer uses it to steer *output* coverage the way argument
    choice steers input coverage.
    """

    ops: list[FuzzOp] = field(default_factory=list)
    env: str = ""

    def render(self) -> str:
        lines = [op.render() for op in self.ops]
        if self.env:
            # Comment line: ignored (counted as skipped) by the
            # syzkaller parser, but keeps the workload text a complete,
            # byte-stable record of what executed.
            lines.insert(0, f"# env: {self.env}")
        return "\n".join(lines)


class CoverageGuidedFuzzer:
    """Generate/mutate/execute with input-coverage feedback.

    Args:
        seed: RNG seed (runs are deterministic).
        guided: keep programs only when they open new input partitions;
            False gives the random-fuzzing baseline.
        mount_point: where programs run (a fresh VFS per execution).
    """

    def __init__(
        self, seed: int = 0, guided: bool = True, mount_point: str = "/mnt/fuzz"
    ) -> None:
        self.rng = random.Random(seed)
        self.guided = guided
        self.mount_point = mount_point.rstrip("/")
        self.corpus: list[FuzzProgram] = []
        self.coverage = InputCoverage()
        self._variants = VariantHandler()
        self.executions = 0
        #: trace of every executed program (for IOCov evaluation)
        self.all_events = []

    # -- program synthesis -----------------------------------------------------
    #
    # Every argument decision routes through a _choose_* hook so a
    # subclass (the campaign subsystem's WeightedFuzzer) can bias any
    # choice point without re-implementing the generate/mutate loop.

    def _choose_kind(self) -> str:
        return self.rng.choice(_OP_KINDS)

    def _choose_flags(self) -> int:
        flags = 0
        for _ in range(self.rng.randint(0, 3)):
            flags |= self.rng.choice(_FLAG_POOL)
        return flags

    def _choose_path_index(self) -> int:
        return self.rng.randint(0, 2)

    def _choose_size(self, kind: str) -> int:
        return self.rng.choice(_SIZE_POOL)

    def _choose_whence(self) -> int:
        return self.rng.randint(0, 5)

    def _choose_mode(self, kind: str) -> int:
        return self.rng.choice((0, 0o600, 0o644, 0o755, 0o777, 0o4755))

    def _choose_env(self) -> str:
        """Execution environment for a fresh program ("" = pristine)."""
        return ""

    def _random_op(self) -> FuzzOp:
        kind = self._choose_kind()
        flags = self._choose_flags()
        return FuzzOp(
            kind=kind,
            path_index=self._choose_path_index(),
            flags=flags,
            size=self._choose_size(kind),
            whence=self._choose_whence(),
            mode=self._choose_mode(kind),
        )

    def _generate(self) -> FuzzProgram:
        return FuzzProgram(
            ops=[self._random_op() for _ in range(self.rng.randint(2, 6))],
            env=self._choose_env(),
        )

    def _mutate(self, program: FuzzProgram) -> FuzzProgram:
        ops = list(program.ops)
        choice = self.rng.random()
        index = self.rng.randrange(len(ops))
        if choice < 0.2:
            ops[index] = self._random_op()
        elif choice < 0.55:
            # Multiplicative/additive size walk: boundary decades are
            # reached by chains of retained mutations.
            op = ops[index]
            step = self.rng.choice((0.5, 2.0, 2.0, 1.0))
            delta = self.rng.choice((-1, 0, 1))
            new_size = max(0, int(op.size * step) + delta)
            ops[index] = replace(op, size=min(new_size, constants.MAX_RW_COUNT))
        elif choice < 0.8:
            ops[index] = replace(
                ops[index], flags=ops[index].flags ^ self.rng.choice(_FLAG_POOL)
            )
        elif choice < 0.9 and len(ops) > 1:
            del ops[index]
        else:
            ops.insert(index, self._random_op())
        return FuzzProgram(ops=ops, env=program.env)

    # -- execution ------------------------------------------------------------

    #: Per-file size cap for the scratch VFS.  A sparse file's hole
    #: still materializes zeros on read, so without a cap a weighted
    #: truncate to 2^40 followed by a large read allocates gigabytes;
    #: 128 MiB keeps worst-case hole reads cheap while leaving the
    #: whole EFBIG / huge-offset input space reachable.
    scratch_max_file_size = 1 << 27

    def _execute(self, program: FuzzProgram) -> list:
        """Run one program on a fresh VFS; return its trace events."""
        fs = FileSystem(  # 8 MiB device keeps big writes cheap
            total_blocks=2048, max_file_size=self.scratch_max_file_size
        )
        sc = SyscallInterface(fs)
        recorder = TraceRecorder()
        recorder.attach(sc)
        current = ""
        for part in (p for p in self.mount_point.split("/") if p):
            current = f"{current}/{part}"
            sc.mkdir(current, 0o755)
        self._setup_environment(program, fs, sc)
        fd = -1
        for op in program.ops:
            path = f"{self.mount_point}/f{op.path_index}"
            if op.kind == "open":
                result = sc.open(path, op.flags | constants.O_CREAT, op.mode)
                if result.ok:
                    if fd >= 0:
                        sc.close(fd)
                    fd = result.retval
            elif op.kind == "read":
                sc.read(fd, op.size)
            elif op.kind == "write":
                sc.write(fd, count=op.size)
            elif op.kind == "lseek":
                sc.lseek(fd, op.size, op.whence)
            elif op.kind == "truncate":
                sc.truncate(path, op.size)
            elif op.kind == "mkdir":
                sc.mkdir(f"{path}_d", op.mode)
            elif op.kind == "chmod":
                sc.chmod(path, op.mode)
            elif op.kind == "setxattr":
                sc.setxattr(path, "user.fuzz", b"", size=op.size)
            elif op.kind == "getxattr":
                sc.getxattr(path, "user.fuzz", op.size)
            elif op.kind == "close":
                if fd >= 0:
                    sc.close(fd)
                    fd = -1
        self.executions += 1
        return recorder.drain()

    def _setup_environment(
        self, program: FuzzProgram, fs: FileSystem, sc: SyscallInterface
    ) -> None:
        """Apply ``program.env`` before the ops run (hook; no-op here).

        Called after the mount point exists but before the first op, so
        an environment can make the volume hostile (read-only, full,
        frozen…) without breaking the fixture setup itself.
        """

    def _new_partitions(self, events) -> int:
        """Count partitions these events open beyond current coverage."""
        opened = 0
        for event in events:
            normalized = self._variants.normalize(event)
            if normalized is None:
                continue
            base, args = normalized
            spec = self.coverage.registry.get(base)
            if spec is None:
                continue
            for arg_spec in spec.tracked_args:
                if arg_spec.name not in args:
                    continue
                arg_cov = self.coverage.arg(base, arg_spec.name)
                before = set(arg_cov.tested_partitions())
                arg_cov.record(args[arg_spec.name])
                opened += len(set(arg_cov.tested_partitions()) - before)
        return opened

    # -- the loop ------------------------------------------------------------

    def run(self, iterations: int = 200) -> "FuzzReport":
        """Fuzz for *iterations* executions; returns the summary."""
        for _ in range(iterations):
            if self.corpus and self.rng.random() < 0.7:
                program = self._mutate(self.rng.choice(self.corpus))
            else:
                program = self._generate()
            events = self._execute(program)
            self.all_events.extend(events)
            gained = self._new_partitions(events)
            if not self.guided:
                # Baseline: corpus grows blindly (bounded).
                if len(self.corpus) < 64:
                    self.corpus.append(program)
            elif gained:
                self.corpus.append(program)
        return FuzzReport(
            executions=self.executions,
            corpus_size=len(self.corpus),
            partitions_covered=self._covered_count(),
        )

    def _covered_count(self) -> int:
        return sum(
            len(self.coverage.arg(*pair).tested_partitions())
            for pair in self.coverage.tracked_pairs()
        )

    def export_corpus(self) -> str:
        """The corpus in syzkaller-like program text (one blank-line-
        separated program per corpus entry)."""
        return "\n\n".join(program.render() for program in self.corpus)


@dataclass(frozen=True)
class FuzzReport:
    """Summary of one fuzzing run."""

    executions: int
    corpus_size: int
    partitions_covered: int
