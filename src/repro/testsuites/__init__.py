"""Simulated file-system testers: CrashMonkey and xfstests.

Both suites run real workloads against the in-memory VFS and are then
statistically calibrated to the distributions the paper measured from
the real tools (see :mod:`repro.testsuites.profiles`).  Run one with::

    from repro.testsuites import XfstestsSuite, SuiteRunner

    result = SuiteRunner(XfstestsSuite(scale=0.01)).run()
    # result.events is the LTTng-equivalent trace
"""

from repro.testsuites.base import (
    RunResult,
    SuiteContext,
    SuiteRunner,
    TestSuite,
    Workload,
    WorkloadResult,
)
from repro.testsuites.calibration import CalibrationDriver
from repro.testsuites.crashmonkey import (
    CrashConsistencyViolation,
    CrashMonkeySuite,
    Seq1Generator,
    Seq1Spec,
)
from repro.testsuites.ltp import LtpSuite
from repro.testsuites.fuzzer import (
    CoverageGuidedFuzzer,
    FuzzOp,
    FuzzProgram,
    FuzzReport,
)
from repro.testsuites.profiles import (
    CRASHMONKEY_PROFILE,
    PAPER_TCD_CROSSOVER,
    SuiteProfile,
    UNTESTED_BY_BOTH,
    XFSTESTS_PROFILE,
)
from repro.testsuites.xfstests import XfstestsSuite

__all__ = [
    "CRASHMONKEY_PROFILE",
    "CalibrationDriver",
    "CoverageGuidedFuzzer",
    "FuzzOp",
    "FuzzProgram",
    "FuzzReport",
    "LtpSuite",
    "CrashConsistencyViolation",
    "CrashMonkeySuite",
    "PAPER_TCD_CROSSOVER",
    "RunResult",
    "Seq1Generator",
    "Seq1Spec",
    "SuiteContext",
    "SuiteProfile",
    "SuiteRunner",
    "TestSuite",
    "UNTESTED_BY_BOTH",
    "Workload",
    "WorkloadResult",
    "XfstestsSuite",
]
