"""Errno reachability: which errnos can each syscall actually raise?

The registry declares each syscall's output space from its manpage;
the VFS in :mod:`repro.vfs` raises :class:`FsError` from concrete code
paths.  This pass walks the VFS sources with :mod:`ast`, builds a
call graph rooted at each syscall entry point, and closes over it to
compute the errno set *reachable* from each implementation — without
executing anything.  Diffing against the registry yields:

* **undeclared-raisable-errno** (error): the implementation can raise
  an errno the spec does not declare, so traced failures would land
  outside the documented output domain and coverage would silently
  leak into undocumented keys;
* **unreachable-declared-errno** (warning): a declared partition no
  organic code path produces.  These are *kept* in the registry — the
  paper's output domain is the manpage list, and environmental errnos
  (ENOMEM, EINTR, EIO, …) are produced via fault injection — but the
  list is reported so dead partitions that skew TCD targets stay
  visible.

Call-edge resolution uses a receiver-binding table (``self.fs`` is the
FileSystem, ``self.fs.resolver`` the PathResolver, and so on) plus a
name-based fallback for helper methods whose name is unambiguous
across the VFS helper classes.  Calls through ``self.faults`` are
excluded: the fault injector can inject *any* errno by design, which
would make every partition trivially reachable.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Mapping

from repro.core.argspec import BASE_SYSCALLS, SyscallSpec, VARIANT_TO_BASE
from repro.vfs.errors import ERRNO_BY_NAME, errno_name

from repro.analysis.findings import AnalysisReport, Severity

UNDECLARED_RAISABLE = "undeclared-raisable-errno"
UNREACHABLE_DECLARED = "unreachable-declared-errno"

#: The VFS modules analyzed.  faults.py is deliberately absent.
VFS_MODULES = (
    "syscalls.py",
    "filesystem.py",
    "fd.py",
    "path.py",
    "inode.py",
    "blockdev.py",
)

#: Attribute types: (class, attribute) -> class the attribute holds.
#: None means "excluded from the call graph" (fault injection).
ATTRIBUTE_TYPES: dict[tuple[str, str], str | None] = {
    ("SyscallInterface", "fs"): "FileSystem",
    ("SyscallInterface", "process"): "Process",
    ("SyscallInterface", "faults"): None,
    ("FileSystem", "resolver"): "PathResolver",
    ("FileSystem", "inodes"): "InodeTable",
    ("FileSystem", "device"): "BlockDevice",
    ("PathResolver", "table"): "InodeTable",
    ("Process", "fd_table"): "FdTable",
    ("FdTable", "system"): "SystemFileTable",
}

#: Classes eligible for name-based fallback resolution.  The syscall
#: entry class and the manager classes are excluded: their genuine
#: call sites are all covered by precise receiver bindings, and a
#: name-based match against them (e.g. ``parent.link`` hitting the
#: ``link`` syscall) would wildly over-approximate.
FALLBACK_CLASSES = frozenset(
    {
        "Inode", "FileInode", "DirInode", "SymlinkInode", "InodeTable",
        "FdTable", "SystemFileTable", "OpenFileDescription",
        "BlockDevice", "Quota", "ResolveResult",
    }
)

#: Explicit single-inheritance links so method lookup can walk up.
CLASS_BASES: dict[str, str] = {
    "FileInode": "Inode",
    "DirInode": "Inode",
    "SymlinkInode": "Inode",
}


def _receiver_chain(node: ast.expr) -> list[str] | None:
    """``self.fs.resolver`` -> ["self", "fs", "resolver"]; None if the
    receiver is not a plain name/attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class _FunctionInfo:
    """Raises and outgoing calls of one function or method."""

    def __init__(self, qualname: str) -> None:
        self.qualname = qualname
        self.raises: set[str] = set()
        self.calls: list[tuple[list[str] | None, str]] = []  # (chain, attr)


class _ModuleCollector(ast.NodeVisitor):
    """Collect per-function raise sites and call sites for one module."""

    def __init__(self, analysis: "ReachabilityAnalysis") -> None:
        self.analysis = analysis
        self._class_stack: list[str] = []
        self._func_stack: list[_FunctionInfo] = []

    # -- structure -----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        for base in node.bases:
            if isinstance(base, ast.Name):
                self.analysis.class_bases.setdefault(node.name, base.id)
        self.generic_visit(node)
        self._class_stack.pop()

    def _enter_function(self, node: ast.FunctionDef) -> None:
        # Nested defs and lambdas accumulate into the enclosing method:
        # syscall bodies are closures run by _run().
        if self._func_stack:
            self.generic_visit(node)
            return
        cls = self._class_stack[-1] if self._class_stack else None
        qualname = f"{cls}.{node.name}" if cls else node.name
        info = _FunctionInfo(qualname)
        self.analysis.functions[qualname] = info
        if cls:
            self.analysis.methods.setdefault(node.name, set()).add(cls)
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function

    # -- content -------------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        info = self._func_stack[-1] if self._func_stack else None
        exc = node.exc
        if (
            info is not None
            and isinstance(exc, ast.Call)
            and isinstance(exc.func, ast.Name)
            and exc.func.id == "FsError"
            and exc.args
        ):
            first = exc.args[0]
            name: str | None = None
            if isinstance(first, ast.Name):
                name = first.id
            elif isinstance(first, ast.Attribute):
                name = first.attr
            if name and name in ERRNO_BY_NAME:
                info.raises.add(errno_name(ERRNO_BY_NAME[name]))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        info = self._func_stack[-1] if self._func_stack else None
        if info is not None:
            func = node.func
            if isinstance(func, ast.Name):
                info.calls.append((None, func.id))
            elif isinstance(func, ast.Attribute):
                chain = _receiver_chain(func.value)
                info.calls.append((chain, func.attr))
        self.generic_visit(node)


class ReachabilityAnalysis:
    """AST-derived errno reachability for the VFS syscall layer."""

    def __init__(self, sources: Mapping[str, str] | None = None) -> None:
        """Analyze *sources* (module name -> source text); defaults to
        the installed :mod:`repro.vfs` package sources."""
        self.functions: dict[str, _FunctionInfo] = {}
        self.methods: dict[str, set[str]] = {}  # method name -> classes
        self.class_bases: dict[str, str] = dict(CLASS_BASES)
        self._closure: dict[str, set[str]] = {}
        if sources is None:
            sources = self._load_vfs_sources()
        for module_name, text in sources.items():
            tree = ast.parse(text, filename=module_name)
            _ModuleCollector(self).visit(tree)

    @staticmethod
    def _load_vfs_sources() -> dict[str, str]:
        import repro.vfs as vfs_pkg

        root = Path(vfs_pkg.__file__).parent
        return {name: (root / name).read_text() for name in VFS_MODULES}

    # -- resolution ------------------------------------------------------

    def _lookup_method(self, cls: str | None, attr: str) -> str | None:
        """Resolve attr on cls, walking the (single) inheritance chain."""
        while cls is not None:
            qualname = f"{cls}.{attr}"
            if qualname in self.functions:
                return qualname
            cls = self.class_bases.get(cls)
        return None

    def _resolve_call(
        self, caller: str, chain: list[str] | None, attr: str
    ) -> list[str]:
        caller_class = caller.split(".")[0] if "." in caller else None
        # Bare name: module-level function (check_permission).
        if chain is None:
            return [attr] if attr in self.functions else []
        # self.<...>: walk the receiver chain through the binding table.
        if chain[0] == "self" and caller_class is not None:
            cls: str | None = caller_class
            excluded = False
            for step in chain[1:]:
                key = (cls, step)
                if key in ATTRIBUTE_TYPES:
                    cls = ATTRIBUTE_TYPES[key]
                    if cls is None:
                        excluded = True
                        break
                else:
                    cls = None
                    break
            if excluded:
                return []
            if cls is not None:
                resolved = self._lookup_method(cls, attr)
                if resolved is not None:
                    return [resolved]
        # Name-based fallback: unambiguous helper methods only.
        owners = self.methods.get(attr, set()) & FALLBACK_CLASSES
        if len(owners) == 1:
            resolved = self._lookup_method(next(iter(owners)), attr)
            return [resolved] if resolved else []
        return []

    # -- closure ---------------------------------------------------------

    def reachable_from(self, qualname: str) -> set[str]:
        """All errno names raisable from *qualname*, transitively."""
        if qualname in self._closure:
            return self._closure[qualname]
        result: set[str] = set()
        self._closure[qualname] = result  # cycle guard
        info = self.functions.get(qualname)
        if info is None:
            return result
        result |= info.raises
        for chain, attr in info.calls:
            for callee in self._resolve_call(qualname, chain, attr):
                result |= self.reachable_from(callee)
        return result

    def syscall_errnos(
        self,
        registry: Mapping[str, SyscallSpec] | None = None,
        variants: Mapping[str, str] | None = None,
        entry_class: str = "SyscallInterface",
    ) -> dict[str, set[str]]:
        """Reachable errnos per *base* syscall (variants merged)."""
        registry = BASE_SYSCALLS if registry is None else registry
        variants = VARIANT_TO_BASE if variants is None else variants
        merged: dict[str, set[str]] = {base: set() for base in registry}
        for name in list(registry) + list(variants):
            base = variants.get(name, name)
            if base not in merged:
                continue
            qualname = f"{entry_class}.{name}"
            merged[base] |= self.reachable_from(qualname)
        return merged

    # -- reporting -------------------------------------------------------

    def analyze(
        self,
        registry: Mapping[str, SyscallSpec] | None = None,
        variants: Mapping[str, str] | None = None,
        entry_class: str = "SyscallInterface",
    ) -> AnalysisReport:
        registry = BASE_SYSCALLS if registry is None else registry
        report = AnalysisReport(tool="reachability")
        reachable = self.syscall_errnos(registry, variants, entry_class)
        undeclared_total = 0
        unreachable_total = 0
        for base, spec in registry.items():
            declared = set(spec.errnos)
            raisable = reachable.get(base, set())
            for name in sorted(raisable - declared):
                undeclared_total += 1
                report.add(
                    UNDECLARED_RAISABLE, Severity.ERROR, base,
                    f"implementation can raise {name}, but the registry "
                    f"does not declare it; its failures would fall outside "
                    f"the documented output domain",
                )
            for name in sorted(declared - raisable):
                unreachable_total += 1
                report.add(
                    UNREACHABLE_DECLARED, Severity.WARNING, base,
                    f"declared errno {name} has no organic code path "
                    f"(manpage/fault-injection-only partition)",
                )
        report.stats.update(
            functions=len(self.functions),
            undeclared=undeclared_total,
            unreachable=unreachable_total,
        )
        return report


def analyze_repo() -> AnalysisReport:
    """Reachability report for the live VFS and registry."""
    return ReachabilityAnalysis().analyze()
