"""Static coverage prediction: what CAN a suite's generators exercise?

Dynamic coverage (run the suite, trace it, classify every argument)
tells you what a test suite *did*; this pass bounds what it *could
possibly do* without running a single workload.  It walks the workload
generators in :mod:`repro.testsuites` with :mod:`ast`, folds constant
expressions into finite value sets, routes them through the exact same
partitioners the dynamic analyzer uses, and reports the set of input
partitions each suite can reach — a sound upper bound, so a real
traced run must always cover a subset of the prediction
(:func:`compare_with_dynamic` checks exactly that).

Folding is deliberately simple but union-based everywhere the suites
branch: ``x if cond else y`` folds to both arms, ``modes[i % 4]`` with
an unknown ``i`` folds to every element, ``1 << (index % 17)`` folds
to all seventeen powers of two.  Anything the folder cannot bound —
runtime file descriptors, paths built from f-strings — becomes TOP and
predicts the argument's full partition domain (reported as an
``unbounded-argument`` warning, since an unbounded generator argument
is itself a finding: the spec cannot promise anything about it).

Calls to known helpers (``ctx.ensure_file``, ``self._setup_file``) are
followed with the caller's folded arguments bound to the callee's
parameters, so fixture modes and sizes stay precise instead of
collapsing to TOP.
"""

from __future__ import annotations

import ast
import importlib
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Callable

from repro.core.argspec import BASE_SYSCALLS
from repro.core.partition import make_input_partitioner
from repro.core.variants import CREAT_IMPLIED_FLAGS

from repro.analysis.findings import AnalysisReport, Severity

UNBOUNDED_ARGUMENT = "unbounded-argument"
PREDICTION_VIOLATION = "prediction-violation"

#: Sentinel: the folder could not bound this expression.
TOP = object()

#: Cap on folded value-set size; anything larger degrades to TOP.
MAX_SET = 512

#: Analysis-module sets per suite.  base and calibration are shared:
#: both suites mount through SuiteRunner and top up through
#: CalibrationDriver, so their call sites belong to every prediction.
SUITE_MODULES: dict[str, tuple[str, ...]] = {
    "crashmonkey": (
        "repro.testsuites.crashmonkey",
        "repro.testsuites.calibration",
        "repro.testsuites.base",
    ),
    "xfstests": (
        "repro.testsuites.xfstests",
        "repro.testsuites.calibration",
        "repro.testsuites.base",
    ),
}

#: Profile constant bound to ``self.profile`` during each prediction.
SUITE_PROFILES: dict[str, str] = {
    "crashmonkey": "CRASHMONKEY_PROFILE",
    "xfstests": "XFSTESTS_PROFILE",
}

#: Classes whose methods are *not* analysis entry points: they are
#: fixtures reached through helper descent with real arguments, and
#: entering them with TOP parameters would wash out that precision.
HELPER_ONLY_CLASSES = frozenset({"SuiteContext"})

#: Module-level functions executed for real on folded arguments
#: (loop-accumulation like ``flags |= ...`` cannot be union-folded
#: without losing the combined value).
EXECUTED_FUNCTIONS = frozenset({"_combo_flags"})

_MISSING = object()

#: SyscallInterface signatures: parameter names in positional order
#: (after self) with their defaults.  Only what the extractor needs.
SYSCALL_SIGNATURES: dict[str, tuple[tuple[str, Any], ...]] = {
    "open": (("path", _MISSING), ("flags", _MISSING), ("mode", 0o644)),
    "openat": (("dirfd", _MISSING), ("path", _MISSING), ("flags", _MISSING), ("mode", 0o644)),
    "openat2": (("dirfd", _MISSING), ("path", _MISSING), ("flags", _MISSING), ("mode", 0o644), ("resolve", 0)),
    "creat": (("path", _MISSING), ("mode", 0o644)),
    "read": (("fd", _MISSING), ("count", _MISSING)),
    "pread64": (("fd", _MISSING), ("count", _MISSING), ("offset", _MISSING)),
    "readv": (("fd", _MISSING), ("iov_lens", _MISSING)),
    "write": (("fd", _MISSING), ("data", None), ("count", None)),
    "pwrite64": (("fd", _MISSING), ("data", None), ("count", None), ("offset", 0)),
    "writev": (("fd", _MISSING), ("buffers", _MISSING)),
    "lseek": (("fd", _MISSING), ("offset", _MISSING), ("whence", _MISSING)),
    "truncate": (("path", _MISSING), ("length", _MISSING)),
    "ftruncate": (("fd", _MISSING), ("length", _MISSING)),
    "mkdir": (("path", _MISSING), ("mode", 0o755)),
    "mkdirat": (("dirfd", _MISSING), ("path", _MISSING), ("mode", 0o755)),
    "chmod": (("path", _MISSING), ("mode", _MISSING)),
    "fchmod": (("fd", _MISSING), ("mode", _MISSING)),
    "fchmodat": (("dirfd", _MISSING), ("path", _MISSING), ("mode", _MISSING), ("flags", 0)),
    "close": (("fd", _MISSING),),
    "chdir": (("path", _MISSING),),
    "fchdir": (("fd", _MISSING),),
    "setxattr": (("path", _MISSING), ("name", _MISSING), ("value", _MISSING), ("size", None), ("flags", 0)),
    "lsetxattr": (("path", _MISSING), ("name", _MISSING), ("value", _MISSING), ("size", None), ("flags", 0)),
    "fsetxattr": (("fd", _MISSING), ("name", _MISSING), ("value", _MISSING), ("size", None), ("flags", 0)),
    "getxattr": (("path", _MISSING), ("name", _MISSING), ("size", 0)),
    "lgetxattr": (("path", _MISSING), ("name", _MISSING), ("size", 0)),
    "fgetxattr": (("fd", _MISSING), ("name", _MISSING), ("size", 0)),
}


def _dedup(values: list) -> list:
    out: list = []
    for value in values:
        try:
            if value in out:
                continue
        except TypeError:
            pass
        out.append(value)
    return out


def _length_of(bound: dict, param: str) -> Any:
    """Fold len(bound[param]) — the size of a written buffer."""
    values = bound.get(param, TOP)
    if values is TOP:
        return TOP
    out = []
    for value in values:
        try:
            out.append(len(value))
        except TypeError:
            return TOP
    return out


def _size_or_len(bound: dict) -> Any:
    """setxattr's ``size = len(value) if size is None else size``."""
    sizes = bound.get("size", TOP)
    if sizes is TOP:
        return TOP
    out: list = []
    for size in sizes:
        if size is None:
            lens = _length_of(bound, "value")
            if lens is TOP:
                return TOP
            out.extend(lens)
        else:
            out.append(size)
    return out


def _count_or_len(bound: dict) -> Any:
    """write's ``count = len(data) if count is None else count``."""
    counts = bound.get("count", TOP)
    if counts is TOP:
        return TOP
    out: list = []
    for count in counts:
        if count is None:
            lens = _length_of(bound, "data")
            if lens is TOP:
                return TOP
            out.extend(lens)
        else:
            out.append(count)
    return out


def _sum_of(param: str, elem_len: bool) -> Callable[[dict], Any]:
    """readv/writev: total byte count over the vector argument."""

    def derive(bound: dict) -> Any:
        vectors = bound.get(param, TOP)
        if vectors is TOP:
            return TOP
        out = []
        for vector in vectors:
            try:
                total = sum(len(e) for e in vector) if elem_len else sum(vector)
            except TypeError:
                return TOP
            out.append(total)
        return out

    return derive


def _param(name: str) -> Callable[[dict], Any]:
    return lambda bound: bound.get(name, TOP)


#: method -> [(base syscall, tracked arg, derivation over bound params)]
EXTRACTION: dict[str, list[tuple[str, str, Callable[[dict], Any]]]] = {
    "open": [("open", "flags", _param("flags")), ("open", "mode", _param("mode"))],
    "openat": [("open", "flags", _param("flags")), ("open", "mode", _param("mode"))],
    "openat2": [("open", "flags", _param("flags")), ("open", "mode", _param("mode"))],
    "creat": [
        ("open", "flags", lambda bound: [CREAT_IMPLIED_FLAGS]),
        ("open", "mode", _param("mode")),
    ],
    "read": [("read", "count", _param("count"))],
    "pread64": [("read", "count", _param("count"))],
    "readv": [("read", "count", _sum_of("iov_lens", elem_len=False))],
    "write": [("write", "count", _count_or_len)],
    "pwrite64": [("write", "count", _count_or_len)],
    "writev": [("write", "count", _sum_of("buffers", elem_len=True))],
    "lseek": [
        ("lseek", "offset", _param("offset")),
        ("lseek", "whence", _param("whence")),
    ],
    "truncate": [("truncate", "length", _param("length"))],
    "ftruncate": [("truncate", "length", _param("length"))],
    "mkdir": [("mkdir", "mode", _param("mode"))],
    "mkdirat": [("mkdir", "mode", _param("mode"))],
    "chmod": [("chmod", "mode", _param("mode"))],
    "fchmod": [("chmod", "mode", _param("mode"))],
    "fchmodat": [("chmod", "mode", _param("mode"))],
    "close": [("close", "fd", _param("fd"))],
    # VariantHandler maps fchdir's fd into the filename slot.
    "chdir": [("chdir", "filename", _param("path"))],
    "fchdir": [("chdir", "filename", _param("fd"))],
    "setxattr": [
        ("setxattr", "size", _size_or_len),
        ("setxattr", "flags", _param("flags")),
    ],
    "lsetxattr": [
        ("setxattr", "size", _size_or_len),
        ("setxattr", "flags", _param("flags")),
    ],
    "fsetxattr": [
        ("setxattr", "size", _size_or_len),
        ("setxattr", "flags", _param("flags")),
    ],
    "getxattr": [("getxattr", "size", _param("size"))],
    "lgetxattr": [("getxattr", "size", _param("size"))],
    "fgetxattr": [("getxattr", "size", _param("size"))],
}

_BINOPS = {
    ast.BitOr: lambda a, b: a | b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitXor: lambda a, b: a ^ b,
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.Mod: lambda a, b: a % b,
    ast.FloorDiv: lambda a, b: a // b,
}

_BUILTINS: dict[str, Callable] = {
    "len": len,
    "min": min,
    "max": max,
    "sum": sum,
    "abs": abs,
    "sorted": sorted,
    "list": list,
    "tuple": tuple,
    "reversed": lambda seq: list(reversed(seq)),
}


@dataclass
class Prediction:
    """Static upper bound on a suite's reachable input partitions."""

    suite: str
    #: (base syscall, arg) -> predicted partition keys, domain order.
    partitions: dict[tuple[str, str], list[str]] = field(default_factory=dict)
    #: pairs whose value set degraded to TOP (full domain predicted).
    unbounded: list[tuple[str, str]] = field(default_factory=list)
    call_sites: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "suite": self.suite,
            "call_sites": self.call_sites,
            "unbounded": [f"{b}.{a}" for b, a in self.unbounded],
            "partitions": {
                f"{b}.{a}": keys for (b, a), keys in sorted(self.partitions.items())
            },
        }


class _FunctionIndex:
    """Defs across the analysis modules, addressable for descent."""

    def __init__(self, module_names: tuple[str, ...]) -> None:
        self.namespaces: dict[str, dict] = {}
        #: method name -> [(class name, FunctionDef, module name)]
        self.methods: dict[str, list[tuple[str, ast.FunctionDef, str]]] = {}
        #: module-function name -> (FunctionDef, module name)
        self.functions: dict[str, tuple[ast.FunctionDef, str]] = {}
        #: entry points: (qualname, FunctionDef, module, class name or None)
        self.entries: list[tuple[str, ast.FunctionDef, str, str | None]] = []
        for module_name in module_names:
            module = importlib.import_module(module_name)
            self.namespaces[module_name] = vars(module)
            with open(module.__file__) as handle:
                tree = ast.parse(handle.read(), filename=module.__file__)
            for node in tree.body:
                if isinstance(node, ast.FunctionDef):
                    self.functions.setdefault(node.name, (node, module_name))
                    self.entries.append((node.name, node, module_name, None))
                elif isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if not isinstance(item, ast.FunctionDef):
                            continue
                        self.methods.setdefault(item.name, []).append(
                            (node.name, item, module_name)
                        )
                        if node.name not in HELPER_ONLY_CLASSES:
                            self.entries.append(
                                (f"{node.name}.{item.name}", item, module_name, node.name)
                            )


class StaticPredictor:
    """Folds suite generators into per-argument partition upper bounds."""

    def __init__(self, max_depth: int = 8) -> None:
        self.max_depth = max_depth

    # -- public API ----------------------------------------------------

    def predict(self, suite: str) -> Prediction:
        """Predict the input partitions *suite* can reach."""
        if suite not in SUITE_MODULES:
            raise KeyError(f"unknown suite {suite!r}; have {sorted(SUITE_MODULES)}")
        index = _FunctionIndex(SUITE_MODULES[suite])
        profiles = importlib.import_module("repro.testsuites.profiles")
        profile = getattr(profiles, SUITE_PROFILES[suite])
        walker = _SuiteWalker(index, self_attrs={"profile": profile},
                              max_depth=self.max_depth)
        for qualname, node, module_name, class_name in index.entries:
            walker.walk_entry(node, module_name, class_name)
        return self._classify(suite, walker)

    def _classify(self, suite: str, walker: "_SuiteWalker") -> Prediction:
        prediction = Prediction(suite=suite, call_sites=walker.call_sites)
        for base, spec in BASE_SYSCALLS.items():
            for arg_spec in spec.tracked_args:
                pair = (base, arg_spec.name)
                partitioner = make_input_partitioner(arg_spec)
                domain = partitioner.domain()
                values = walker.values.get(pair)
                if values is None:
                    prediction.partitions[pair] = []
                    continue
                if values is TOP:
                    prediction.partitions[pair] = list(domain)
                    prediction.unbounded.append(pair)
                    continue
                keys: set[str] = set()
                degraded = False
                for value in values:
                    try:
                        keys.update(partitioner.classify(value))
                    except Exception:
                        degraded = True
                if degraded:
                    prediction.partitions[pair] = list(domain)
                    prediction.unbounded.append(pair)
                else:
                    prediction.partitions[pair] = [k for k in domain if k in keys]
        return prediction


class _SuiteWalker:
    """One-pass abstract interpreter over the analysis modules."""

    def __init__(
        self, index: _FunctionIndex, self_attrs: dict, max_depth: int
    ) -> None:
        self.index = index
        self.self_obj = SimpleNamespace(**self_attrs)
        self.max_depth = max_depth
        #: (base, arg) -> list of folded values, or TOP
        self.values: dict[tuple[str, str], Any] = {}
        self.call_sites = 0
        self._stack: list[str] = []

    # -- accumulation --------------------------------------------------

    def _record(self, base: str, arg: str, folded: Any) -> None:
        pair = (base, arg)
        if self.values.get(pair) is TOP:
            return
        if folded is TOP:
            self.values[pair] = TOP
            return
        merged = _dedup(self.values.get(pair, []) + list(folded))
        self.values[pair] = TOP if len(merged) > MAX_SET else merged

    # -- entry ---------------------------------------------------------

    def walk_entry(
        self, node: ast.FunctionDef, module_name: str, class_name: str | None
    ) -> None:
        env: dict[str, Any] = {}
        params = [a.arg for a in node.args.args]
        for name in params:
            env[name] = TOP
        if class_name is not None and params and params[0] == "self":
            env["self"] = [self.self_obj]
        self._walk_function(node, env, module_name)

    # -- interprocedural descent ---------------------------------------

    def _descend(
        self,
        node: ast.FunctionDef,
        module_name: str,
        call: ast.Call,
        env: dict[str, Any],
        *,
        skip_self: bool,
    ) -> Any:
        qual = f"{module_name}:{node.name}"
        if qual in self._stack or len(self._stack) >= self.max_depth:
            return TOP
        params = [a.arg for a in node.args.args]
        if skip_self and params and params[0] == "self":
            params = params[1:]
        callee_env: dict[str, Any] = {"self": [self.self_obj]}
        defaults = node.args.defaults
        default_by_param: dict[str, ast.expr] = {}
        for param, default in zip(params[len(params) - len(defaults):], defaults):
            default_by_param[param] = default
        bound: dict[str, Any] = {}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or i >= len(params):
                break
            bound[params[i]] = self._fold(arg, env, module_name)
        for keyword in call.keywords:
            if keyword.arg:
                bound[keyword.arg] = self._fold(keyword.value, env, module_name)
        for param in params:
            if param in bound:
                callee_env[param] = bound[param]
            elif param in default_by_param:
                callee_env[param] = self._fold(
                    default_by_param[param], env, module_name
                )
            else:
                callee_env[param] = TOP
        self._stack.append(qual)
        try:
            return self._walk_function(node, callee_env, module_name)
        finally:
            self._stack.pop()

    # -- statement walking ---------------------------------------------

    def _walk_function(
        self, node: ast.FunctionDef, env: dict[str, Any], module_name: str
    ) -> Any:
        returns: list[Any] = []
        self._walk_body(node.body, env, module_name, returns)
        if not returns:
            return TOP
        out: list = []
        for folded in returns:
            if folded is TOP:
                return TOP
            out.extend(folded)
        return _dedup(out)

    def _walk_body(
        self, body: list[ast.stmt], env: dict, module_name: str, returns: list
    ) -> None:
        for stmt in body:
            self._walk_stmt(stmt, env, module_name, returns)

    def _walk_stmt(
        self, stmt: ast.stmt, env: dict, module_name: str, returns: list
    ) -> None:
        fold = lambda e: self._fold(e, env, module_name)
        if isinstance(stmt, ast.Assign):
            value = fold(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, fold(stmt.value), env)
        elif isinstance(stmt, ast.AugAssign):
            value = fold(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, TOP)
                op = _BINOPS.get(type(stmt.op))
                env[stmt.target.id] = self._apply_binop(op, current, value)
        elif isinstance(stmt, ast.Expr):
            fold(stmt.value)
        elif isinstance(stmt, ast.Assert):
            fold(stmt.test)
        elif isinstance(stmt, ast.Return):
            returns.append(fold(stmt.value) if stmt.value else [None])
        elif isinstance(stmt, ast.If):
            fold(stmt.test)
            self._walk_branches(stmt.body, stmt.orelse, env, module_name, returns)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = fold(stmt.iter)
            self._bind_loop_target(stmt.target, iterable, env)
            self._walk_branches(stmt.body, stmt.orelse, env, module_name, returns)
        elif isinstance(stmt, ast.While):
            fold(stmt.test)
            self._walk_branches(stmt.body, stmt.orelse, env, module_name, returns)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                fold(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, TOP, env)
            self._walk_body(stmt.body, env, module_name, returns)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, env, module_name, returns)
            for handler in stmt.handlers:
                if handler.name:
                    env[handler.name] = TOP
                self._walk_body(handler.body, env, module_name, returns)
            self._walk_body(stmt.orelse, env, module_name, returns)
            self._walk_body(stmt.finalbody, env, module_name, returns)
        elif isinstance(stmt, ast.FunctionDef):
            # Nested closures (workload bodies): walk in place with the
            # enclosing env visible and the closure's params TOP.
            inner = dict(env)
            for arg in stmt.args.args:
                inner[arg.arg] = TOP
            self._walk_body(stmt.body, inner, module_name, [])
        # pass / raise / global / import / etc. carry no folded state.

    def _walk_branches(
        self,
        body: list[ast.stmt],
        orelse: list[ast.stmt],
        env: dict,
        module_name: str,
        returns: list,
    ) -> None:
        env_a, env_b = dict(env), dict(env)
        self._walk_body(body, env_a, module_name, returns)
        self._walk_body(orelse, env_b, module_name, returns)
        for name in set(env_a) | set(env_b):
            values = []
            for branch in (env_a, env_b):
                folded = branch.get(name, env.get(name, TOP))
                if folded is TOP:
                    values = TOP
                    break
                values.extend(folded)
            env[name] = values if values is TOP else _dedup(values)
            if env[name] is not TOP and len(env[name]) > MAX_SET:
                env[name] = TOP

    def _bind_target(self, target: ast.expr, value: Any, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            names = target.elts
            per_position: list[Any] = [[] for _ in names]
            if value is TOP:
                per_position = [TOP] * len(names)
            else:
                for item in value:
                    if not isinstance(item, (tuple, list)) or len(item) != len(names):
                        per_position = [TOP] * len(names)
                        break
                    for i, element in enumerate(item):
                        if per_position[i] is not TOP:
                            per_position[i].append(element)
            for sub_target, folded in zip(names, per_position):
                self._bind_target(
                    sub_target,
                    folded if folded is TOP else _dedup(folded),
                    env,
                )

    def _bind_loop_target(self, target: ast.expr, iterable: Any, env: dict) -> None:
        if iterable is TOP:
            elements: Any = TOP
        else:
            elements = []
            for value in iterable:
                try:
                    elements.extend(list(value))
                except TypeError:
                    elements = TOP
                    break
            if elements is not TOP:
                elements = _dedup(elements)
                if len(elements) > MAX_SET:
                    elements = TOP
        self._bind_target(target, elements, env)

    # -- expression folding --------------------------------------------

    def _fold(self, node: ast.expr, env: dict, module_name: str) -> Any:
        if isinstance(node, ast.Constant):
            return [node.value]
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            namespace = self.index.namespaces[module_name]
            if node.id in namespace:
                return [namespace[node.id]]
            return TOP
        if isinstance(node, ast.Attribute):
            receiver = self._fold(node.value, env, module_name)
            if receiver is TOP:
                return TOP
            out = []
            for value in receiver:
                try:
                    out.append(getattr(value, node.attr))
                except AttributeError:
                    return TOP
            return out
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                return TOP
            left = self._fold(node.left, env, module_name)
            right = self._fold(node.right, env, module_name)
            return self._apply_binop(op, left, right, modulo=isinstance(node.op, ast.Mod))
        if isinstance(node, ast.UnaryOp):
            operand = self._fold(node.operand, env, module_name)
            if operand is TOP:
                return TOP
            try:
                if isinstance(node.op, ast.USub):
                    return _dedup([-v for v in operand])
                if isinstance(node.op, ast.Invert):
                    return _dedup([~v for v in operand])
                if isinstance(node.op, ast.Not):
                    return _dedup([not v for v in operand])
            except TypeError:
                return TOP
            return TOP
        if isinstance(node, ast.BoolOp):
            out = []
            for operand in node.values:
                folded = self._fold(operand, env, module_name)
                if folded is TOP:
                    return TOP
                out.extend(folded)
            return _dedup(out)
        if isinstance(node, ast.IfExp):
            self._fold(node.test, env, module_name)
            body = self._fold(node.body, env, module_name)
            orelse = self._fold(node.orelse, env, module_name)
            if body is TOP or orelse is TOP:
                return TOP
            return _dedup(body + orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            folded_elements = []
            for element in node.elts:
                folded = self._fold(element, env, module_name)
                if folded is TOP:
                    return TOP
                folded_elements.append(folded)
            combos: list[tuple] = [()]
            for folded in folded_elements:
                combos = [prefix + (v,) for prefix in combos for v in folded]
                if len(combos) > MAX_SET:
                    return TOP
            if isinstance(node, ast.List):
                return [list(combo) for combo in combos]
            return combos
        if isinstance(node, ast.Dict):
            # Dicts fold only when every key and value is single-valued.
            out_dict = {}
            for key_node, value_node in zip(node.keys, node.values):
                if key_node is None:
                    return TOP
                keys = self._fold(key_node, env, module_name)
                values = self._fold(value_node, env, module_name)
                if keys is TOP or values is TOP or len(keys) != 1 or len(values) != 1:
                    return TOP
                out_dict[keys[0]] = values[0]
            return [out_dict]
        if isinstance(node, ast.Subscript):
            return self._fold_subscript(node, env, module_name)
        if isinstance(node, ast.Compare):
            self._fold(node.left, env, module_name)
            for comparator in node.comparators:
                self._fold(comparator, env, module_name)
            return [True, False]
        if isinstance(node, ast.Call):
            return self._fold_call(node, env, module_name)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._fold(value.value, env, module_name)
            return TOP
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            # Fold the iterables for syscall detection; the result is
            # unbounded (sum(len(seg) ...) is handled by _sum_of).
            for generator in node.generators:
                self._fold(generator.iter, env, module_name)
            return TOP
        if isinstance(node, ast.Starred):
            return TOP
        if isinstance(node, ast.Lambda):
            inner = dict(env)
            for arg in node.args.args:
                inner[arg.arg] = TOP
            self._fold(node.body, inner, module_name)
            return TOP
        return TOP

    def _apply_binop(self, op, left: Any, right: Any, *, modulo: bool = False) -> Any:
        if op is None:
            return TOP
        if left is TOP and modulo and right is not TOP:
            # unknown % n with a small constant n: the full residue set.
            out = []
            for divisor in right:
                if not isinstance(divisor, int) or not 0 < divisor <= 64:
                    return TOP
                out.extend(range(divisor))
            return _dedup(out)
        if left is TOP or right is TOP:
            return TOP
        out = []
        for a in left:
            for b in right:
                try:
                    out.append(op(a, b))
                except Exception:
                    return TOP
                if len(out) > MAX_SET:
                    return TOP
        return _dedup(out)

    def _fold_subscript(self, node: ast.Subscript, env: dict, module_name: str) -> Any:
        base = self._fold(node.value, env, module_name)
        if isinstance(node.slice, ast.Slice):
            return TOP
        index = self._fold(node.slice, env, module_name)
        if base is TOP:
            return TOP
        out = []
        if index is TOP:
            # Unknown index over a bounded container: every element.
            for container in base:
                try:
                    if isinstance(container, dict):
                        out.extend(container.values())
                    else:
                        out.extend(list(container))
                except TypeError:
                    return TOP
        else:
            for container in base:
                for key in index:
                    try:
                        out.append(container[key])
                    except Exception:
                        return TOP
        if len(out) > MAX_SET:
            return TOP
        return _dedup(out)

    # -- call folding (where detection happens) ------------------------

    def _fold_call(self, node: ast.Call, env: dict, module_name: str) -> Any:
        func = node.func
        # 1. Syscall site: <...>.sc.<method>(...) or sc.<method>(...).
        if isinstance(func, ast.Attribute) and func.attr in EXTRACTION:
            receiver = func.value
            is_sc = (isinstance(receiver, ast.Name) and receiver.id == "sc") or (
                isinstance(receiver, ast.Attribute) and receiver.attr == "sc"
            )
            if is_sc:
                self._record_syscall(node, func.attr, env, module_name)
                return TOP
        # 2. Method-style helper: unique name across analysis classes.
        if isinstance(func, ast.Attribute):
            self._fold(func.value, env, module_name)
            candidates = self.index.methods.get(func.attr, [])
            if len(candidates) == 1:
                _, target, target_module = candidates[0]
                for arg in node.args:
                    self._fold(arg, env, module_name)
                return self._descend(
                    target, target_module, node, env, skip_self=True
                )
            return self._fold_method_on_value(node, func, env, module_name)
        # 3. Builtins and module-level functions.
        if isinstance(func, ast.Name):
            if func.id in _BUILTINS:
                return self._apply_builtin(_BUILTINS[func.id], node, env, module_name)
            if func.id == "range":
                return self._fold_range(node, env, module_name)
            if func.id in self.index.functions:
                target, target_module = self.index.functions[func.id]
                if func.id in EXECUTED_FUNCTIONS:
                    return self._execute_function(
                        target_module, func.id, node, env, module_name
                    )
                return self._descend(target, target_module, node, env, skip_self=False)
        # Unknown callable: fold arguments for nested detection.
        for arg in node.args:
            self._fold(arg, env, module_name)
        for keyword in node.keywords:
            self._fold(keyword.value, env, module_name)
        return TOP

    def _fold_method_on_value(
        self, node: ast.Call, func: ast.Attribute, env: dict, module_name: str
    ) -> Any:
        """dict.items()/keys()/values() over folded containers."""
        receiver = self._fold(func.value, env, module_name)
        for arg in node.args:
            self._fold(arg, env, module_name)
        if receiver is TOP or func.attr not in ("items", "keys", "values"):
            return TOP
        out = []
        for container in receiver:
            if not isinstance(container, dict):
                return TOP
            if func.attr == "items":
                out.append([tuple(item) for item in container.items()])
            elif func.attr == "keys":
                out.append(list(container.keys()))
            else:
                out.append(list(container.values()))
        return out

    def _apply_builtin(
        self, fn: Callable, node: ast.Call, env: dict, module_name: str
    ) -> Any:
        folded_args = [self._fold(arg, env, module_name) for arg in node.args]
        kwargs = {}
        for keyword in node.keywords:
            folded = self._fold(keyword.value, env, module_name)
            if folded is TOP or len(folded) != 1 or not keyword.arg:
                return TOP
            kwargs[keyword.arg] = folded[0]
        if any(folded is TOP for folded in folded_args):
            return TOP
        combos: list[tuple] = [()]
        for folded in folded_args:
            combos = [prefix + (v,) for prefix in combos for v in folded]
            if len(combos) > MAX_SET:
                return TOP
        out = []
        for combo in combos:
            try:
                out.append(fn(*combo, **kwargs))
            except Exception:
                return TOP
        return _dedup(out)

    def _fold_range(self, node: ast.Call, env: dict, module_name: str) -> Any:
        folded_args = [self._fold(arg, env, module_name) for arg in node.args]
        if any(folded is TOP for folded in folded_args) or not folded_args:
            return TOP
        if any(len(folded) != 1 for folded in folded_args):
            return TOP
        try:
            result = range(*[folded[0] for folded in folded_args])
        except TypeError:
            return TOP
        if len(result) > MAX_SET:
            return TOP
        return [list(result)]

    def _execute_function(
        self,
        target_module: str,
        name: str,
        node: ast.Call,
        env: dict,
        module_name: str,
    ) -> Any:
        """Run a whitelisted pure function on every folded argument."""
        fn = self.index.namespaces[target_module].get(name)
        folded_args = [self._fold(arg, env, module_name) for arg in node.args]
        if fn is None or any(folded is TOP for folded in folded_args):
            return TOP
        combos: list[tuple] = [()]
        for folded in folded_args:
            combos = [prefix + (v,) for prefix in combos for v in folded]
            if len(combos) > MAX_SET:
                return TOP
        out = []
        for combo in combos:
            try:
                out.append(fn(*combo))
            except Exception:
                continue
        return _dedup(out)

    def _record_syscall(
        self, node: ast.Call, method: str, env: dict, module_name: str
    ) -> None:
        self.call_sites += 1
        signature = SYSCALL_SIGNATURES[method]
        bound: dict[str, Any] = {}
        for i, arg in enumerate(node.args):
            folded = self._fold(arg, env, module_name)
            if i < len(signature) and not isinstance(arg, ast.Starred):
                bound[signature[i][0]] = folded
        for keyword in node.keywords:
            folded = self._fold(keyword.value, env, module_name)
            if keyword.arg:
                bound[keyword.arg] = folded
        for param, default in signature:
            if param not in bound:
                bound[param] = TOP if default is _MISSING else [default]
        for base, arg_name, derive in EXTRACTION[method]:
            self._record(base, arg_name, derive(bound))


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def predictions(suites: tuple[str, ...] | None = None) -> list[Prediction]:
    """Predictions for the requested (default: all) suites."""
    predictor = StaticPredictor()
    return [predictor.predict(s) for s in (suites or tuple(sorted(SUITE_MODULES)))]


def report_from_predictions(preds: list[Prediction]) -> AnalysisReport:
    """Wrap predictions in the common report envelope."""
    report = AnalysisReport(tool="predict")
    for prediction in preds:
        covered = sum(len(keys) for keys in prediction.partitions.values())
        total = sum(
            len(make_input_partitioner(arg).domain())
            for spec in BASE_SYSCALLS.values()
            for arg in spec.tracked_args
        )
        report.stats[prediction.suite] = {
            "call_sites": prediction.call_sites,
            "predicted_partitions": covered,
            "domain_partitions": total,
            "unbounded_args": len(prediction.unbounded),
        }
        for base, arg in prediction.unbounded:
            report.add(
                UNBOUNDED_ARGUMENT,
                Severity.WARNING,
                f"{prediction.suite}:{base}.{arg}",
                "generator argument could not be statically bounded; "
                "predicting the full partition domain",
            )
    return report


def predict_repo(suites: tuple[str, ...] | None = None) -> AnalysisReport:
    """Static prediction report for the built-in suites."""
    return report_from_predictions(predictions(suites))


def compare_with_dynamic(prediction: Prediction, input_coverage) -> AnalysisReport:
    """Check a traced run against the static upper bound.

    Every dynamically tested partition must be statically predicted
    (the bound is an over-approximation); a violation is an ERROR —
    either the folder lost soundness or the suite changed underneath
    the prediction.  The reverse direction (predicted but untraced) is
    the *static-vs-dynamic gap* and lands in stats, not findings: an
    upper bound is expected to be loose.
    """
    report = AnalysisReport(tool="predict-compare")
    gap: dict[str, list[str]] = {}
    violations = 0
    for (base, arg), predicted in sorted(prediction.partitions.items()):
        try:
            dynamic = set(input_coverage.arg(base, arg).tested_partitions())
        except KeyError:
            continue
        missing = dynamic - set(predicted)
        for key in sorted(missing):
            violations += 1
            report.add(
                PREDICTION_VIOLATION,
                Severity.ERROR,
                f"{prediction.suite}:{base}.{arg}",
                f"traced partition {key!r} was not statically predicted "
                f"(the upper bound is unsound for this argument)",
            )
        unexercised = [k for k in predicted if k not in dynamic]
        if unexercised:
            gap[f"{base}.{arg}"] = unexercised
    report.stats.update(
        suite=prediction.suite,
        violations=violations,
        gap={key: value for key, value in sorted(gap.items())},
    )
    return report
