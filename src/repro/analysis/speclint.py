"""Spec linter: pure consistency checks over the syscall registry.

Everything downstream — partition counting, TCD, suggestions, the
calibrated suites — trusts the declarative registry in
:mod:`repro.core.argspec` and the partitioners built from it.  This
pass validates that trust without running a trace:

* every errno a spec declares exists and uses the canonical spelling
  (the one :func:`repro.vfs.errors.errno_name` emits at classification
  time — a non-canonical alias would declare a partition no traced
  event can ever land in);
* bitmap decode tables are free of zero masks, duplicate masks, and
  partial overlaps (composites like O_SYNC ⊃ O_DSYNC are allowed);
* ``zero_name`` / ``access_mask`` / ``access_names`` are mutually
  consistent;
* input partitions are disjoint and exhaustive per argument, checked
  by probing each partitioner with boundary values;
* numeric size partitions are strictly monotone and contiguous;
* the variant table maps onto registry bases and never shadows them.

The registry, variant table, and partitioner factories are injectable
so the seeded-defect tests can feed deliberately broken specs through
the same code paths the real lint uses.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.argspec import (
    ArgClass,
    ArgSpec,
    BASE_SYSCALLS,
    SyscallSpec,
    VARIANT_TO_BASE,
)
from repro.core.partition import OutputPartitioner, make_input_partitioner
from repro.vfs import constants
from repro.vfs.errors import ERRNO_BY_NAME, errno_name

from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.suppress import location_suppressed, scan_pragmas

# Defect-class slugs (stable; tests and docs key on these).
UNKNOWN_ERRNO = "unknown-errno"
NONCANONICAL_ERRNO = "noncanonical-errno"
DUPLICATE_ERRNO = "duplicate-errno"
BITMAP_OVERLAP = "bitmap-overlap"
BITMAP_ZERO_FLAG = "bitmap-zero-flag"
BITMAP_DUPLICATE = "bitmap-duplicate"
ZERO_NAME_CONFLICT = "zero-name-conflict"
ACCESS_NAME_OUT_OF_MASK = "access-name-out-of-mask"
CATEGORICAL_COLLISION = "categorical-collision"
PARTITION_OVERLAP = "partition-overlap"
PARTITION_GAP = "partition-gap"
SIZE_PARTITION_ORDER = "size-partition-order"
DANGLING_VARIANT = "dangling-variant"
VARIANT_SHADOWS_BASE = "variant-shadows-base"

#: Boundary probe values for numeric arguments: negatives, zero, the
#: edges of several power-of-two buckets, and past-the-overflow values.
NUMERIC_PROBES = (
    -(1 << 70), -(1 << 31), -1, 0, 1, 2, 3, 4, 7, 8, 1023, 1024, 4095,
    4096, (1 << 32) - 1, 1 << 32, (1 << 62), (1 << 63) - 1, 1 << 63,
    (1 << 64) + 3, 1 << 70,
)

#: Probe values for identifier arguments (fds and paths).
FD_PROBES = (constants.AT_FDCWD, -1, 0, 1, 2, 3, 63, 64, 1023, 1024, 1 << 20)
PATH_PROBES = (
    "", "/", "/a", "/a/b/c", ".", "..", "rel", "rel/deep",
    "/" + "n" * constants.NAME_MAX, "/x" * (constants.PATH_MAX // 2 + 1),
)


def _canonical(name: str, catalog: Mapping[str, int]) -> str | None:
    """The canonical spelling for *name*, or None if unknown."""
    if name not in catalog:
        return None
    return errno_name(catalog[name])


def _check_errno_tuple(
    report: AnalysisReport,
    location: str,
    errnos: tuple[str, ...],
    catalog: Mapping[str, int],
) -> None:
    seen: set[str] = set()
    for name in errnos:
        if name in seen:
            report.add(
                DUPLICATE_ERRNO, Severity.ERROR, location,
                f"errno {name} declared more than once",
            )
        seen.add(name)
        canonical = _canonical(name, catalog)
        if canonical is None:
            report.add(
                UNKNOWN_ERRNO, Severity.ERROR, location,
                f"errno {name} not present in the errno catalogue",
            )
        elif canonical != name:
            report.add(
                NONCANONICAL_ERRNO, Severity.ERROR, location,
                f"errno {name} is an alias; traced events classify as "
                f"{canonical}, so this partition can never be credited",
            )


def _check_bitmap(report: AnalysisReport, location: str, spec: ArgSpec) -> None:
    bitmap = spec.bitmap or {}
    masks: dict[str, int] = dict(bitmap)
    # Zero and duplicate masks.
    by_value: dict[int, str] = {}
    for name, mask in masks.items():
        if mask == 0 and name != spec.zero_name:
            report.add(
                BITMAP_ZERO_FLAG, Severity.ERROR, location,
                f"flag {name} has mask 0; decode() can never credit it",
            )
        if mask in by_value and mask != 0:
            report.add(
                BITMAP_DUPLICATE, Severity.ERROR, location,
                f"flags {by_value[mask]} and {name} share mask {mask:#o}",
            )
        else:
            by_value.setdefault(mask, name)
    # Partial overlaps: allowed only when one mask strictly contains
    # the other (composite flags decoded longest-first).
    names = sorted(masks)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            va, vb = masks[a], masks[b]
            common = va & vb
            if common and va != vb and common not in (va, vb):
                report.add(
                    BITMAP_OVERLAP, Severity.ERROR, location,
                    f"flags {a} ({va:#o}) and {b} ({vb:#o}) overlap "
                    f"without containment; decode order is ambiguous",
                )
    # The access-mode field must not collide with any modifier bit.
    if spec.access_mask:
        for name, mask in masks.items():
            if mask & spec.access_mask:
                report.add(
                    BITMAP_OVERLAP, Severity.ERROR, location,
                    f"flag {name} ({mask:#o}) intersects the access "
                    f"mask {spec.access_mask:#o}",
                )
    # access_names values must fit inside the mask.
    for value, name in (spec.access_names or {}).items():
        if value & ~spec.access_mask:
            report.add(
                ACCESS_NAME_OUT_OF_MASK, Severity.ERROR, location,
                f"access value {value:#o} ({name}) has bits outside "
                f"access_mask {spec.access_mask:#o}",
            )
    # zero_name consistency: with an access field, the zero partition
    # is access_names[0]; zero_name must agree.  Without one, zero_name
    # must not collide with a nonzero flag.
    if spec.access_names is not None:
        zero_access = spec.access_names.get(0)
        if spec.zero_name is not None and spec.zero_name != zero_access:
            report.add(
                ZERO_NAME_CONFLICT, Severity.ERROR, location,
                f"zero_name {spec.zero_name} disagrees with "
                f"access_names[0] = {zero_access}",
            )
    elif spec.zero_name is not None and masks.get(spec.zero_name, 0) != 0:
        report.add(
            ZERO_NAME_CONFLICT, Severity.ERROR, location,
            f"zero_name {spec.zero_name} is also a nonzero flag "
            f"({masks[spec.zero_name]:#o}); value 0 would be misattributed",
        )


def _check_categorical(report: AnalysisReport, location: str, spec: ArgSpec) -> None:
    by_value: dict[int, str] = {}
    for name, value in (spec.categories or {}).items():
        if value in by_value:
            report.add(
                CATEGORICAL_COLLISION, Severity.ERROR, location,
                f"categories {by_value[value]} and {name} share value {value}",
            )
        else:
            by_value[value] = name


def _size_keys_monotone(keys: list[str], prefix: str = "2^") -> str | None:
    """Check strictly increasing, contiguous exponents; return an error
    description or None."""
    exponents = []
    for key in keys:
        if key.startswith(prefix):
            tail = key[len(prefix):]
            if tail.lstrip("-").isdigit():
                exponents.append(int(tail))
    for prev, cur in zip(exponents, exponents[1:]):
        if cur <= prev:
            return f"size partitions not strictly increasing: 2^{prev} then 2^{cur}"
        if cur != prev + 1:
            return f"size partitions skip a bucket between 2^{prev} and 2^{cur}"
    return None


def _probe_values(spec: ArgSpec) -> tuple:
    if spec.arg_class is ArgClass.NUMERIC:
        return NUMERIC_PROBES
    if spec.arg_class is ArgClass.CATEGORICAL:
        values = tuple((spec.categories or {}).values())
        out_of_domain = (max(values, default=0) + 17,)
        return values + out_of_domain
    if spec.arg_class is ArgClass.IDENTIFIER:
        return FD_PROBES + PATH_PROBES
    # BITMAP: each single flag, the zero value, each access value, and
    # a value with a bit outside every mask.
    masks = tuple((spec.bitmap or {}).values())
    access = tuple((spec.access_names or {}).keys())
    covered = 0
    for mask in masks:
        covered |= mask
    covered |= spec.access_mask
    unknown_bit = 1
    while unknown_bit & covered:
        unknown_bit <<= 1
    return (0,) + masks + access + (unknown_bit,)


def _check_partitions(
    report: AnalysisReport,
    location: str,
    spec: ArgSpec,
    partitioner_factory: Callable[[ArgSpec], object],
) -> int:
    """Probe disjointness and exhaustiveness; returns probes run."""
    try:
        partitioner = partitioner_factory(spec)
    except Exception as exc:
        report.add(
            PARTITION_GAP, Severity.ERROR, location,
            f"partitioner construction failed: {exc!r}",
        )
        return 0
    domain = list(partitioner.domain())
    seen: set[str] = set()
    for key in domain:
        if key in seen:
            report.add(
                PARTITION_OVERLAP, Severity.ERROR, location,
                f"domain key {key!r} appears twice",
            )
        seen.add(key)
    order_error = _size_keys_monotone(domain)
    if order_error:
        report.add(SIZE_PARTITION_ORDER, Severity.ERROR, location, order_error)
    probes = _probe_values(spec)
    for value in probes:
        keys = partitioner.classify(value)
        if not keys:
            report.add(
                PARTITION_GAP, Severity.ERROR, location,
                f"value {value!r} falls into no partition (non-exhaustive)",
            )
            continue
        if spec.arg_class is not ArgClass.BITMAP and len(keys) > 1:
            report.add(
                PARTITION_OVERLAP, Severity.ERROR, location,
                f"value {value!r} falls into {len(keys)} partitions: {keys}",
            )
        for key in keys:
            if key not in seen:
                report.add(
                    PARTITION_GAP, Severity.ERROR, location,
                    f"value {value!r} classified into {key!r}, which is "
                    f"outside the declared domain",
                )
    return len(probes)


def _check_output_domain(
    report: AnalysisReport,
    spec: SyscallSpec,
    catalog: Mapping[str, int],
    output_factory: Callable[[SyscallSpec], object],
) -> None:
    location = f"{spec.name}.errnos"
    _check_errno_tuple(report, location, spec.errnos, catalog)
    try:
        partitioner = output_factory(spec)
    except Exception as exc:
        report.add(
            PARTITION_GAP, Severity.ERROR, location,
            f"output partitioner construction failed: {exc!r}",
        )
        return
    domain = list(partitioner.domain())
    order_error = _size_keys_monotone(domain, prefix="OK:2^")
    if order_error:
        report.add(SIZE_PARTITION_ORDER, Severity.ERROR, location, order_error)


def _check_variants(
    report: AnalysisReport,
    registry: Mapping[str, SyscallSpec],
    variants: Mapping[str, str],
) -> None:
    for variant, base in variants.items():
        if base not in registry:
            report.add(
                DANGLING_VARIANT, Severity.ERROR, f"variants.{variant}",
                f"variant {variant} merges into {base!r}, which is not a "
                f"registered base syscall",
            )
        if variant in registry:
            report.add(
                VARIANT_SHADOWS_BASE, Severity.ERROR, f"variants.{variant}",
                f"variant {variant} is also a registry key; its events "
                f"would be double-counted",
            )


def registry_suppressions(source: str | None = None) -> dict[str, frozenset[str]]:
    """Scan ``# lint: allow(...)`` pragmas out of the registry source.

    A pragma on any line of a ``_spec("name", ...)`` (or
    ``SyscallSpec(...)``) call suppresses that rule for every finding
    whose location starts with ``name.``; a pragma on a
    ``VARIANT_TO_BASE`` entry's line covers ``variants.<name>``.  This
    gives the spec lint the same suppression syntax as the concurrency
    pass even though spec findings address registry entries, not the
    source lines the checks run from.
    """
    import ast as _ast

    if source is None:
        from pathlib import Path

        from repro.core import argspec as _argspec

        source = Path(_argspec.__file__).read_text(encoding="utf-8")
    pragmas = scan_pragmas(source)
    if not pragmas:
        return {}
    suppressions: dict[str, frozenset[str]] = {}

    def note(prefix: str, rules: frozenset[str]) -> None:
        merged = suppressions.get(prefix, frozenset()) | rules
        suppressions[prefix] = merged

    tree = _ast.parse(source)
    for node in _ast.walk(tree):
        if isinstance(node, _ast.Call) and isinstance(node.func, _ast.Name):
            if node.func.id not in ("_spec", "SyscallSpec"):
                continue
            name = None
            if node.args and isinstance(node.args[0], _ast.Constant):
                name = node.args[0].value
            for keyword in node.keywords:
                if keyword.arg == "name" and isinstance(
                    keyword.value, _ast.Constant
                ):
                    name = keyword.value.value
            if not isinstance(name, str):
                continue
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            for lineno in range(node.lineno, end + 1):
                if lineno in pragmas:
                    note(name, pragmas[lineno])
        elif isinstance(node, _ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, _ast.Name)
            ]
            if "VARIANT_TO_BASE" in targets and isinstance(
                node.value, _ast.Dict
            ):
                for variant_key in node.value.keys:
                    if isinstance(variant_key, _ast.Constant) and isinstance(
                        variant_key.value, str
                    ):
                        rules = pragmas.get(variant_key.lineno)
                        if rules:
                            note(f"variants.{variant_key.value}", rules)
        elif isinstance(node, _ast.AnnAssign):
            if (
                isinstance(node.target, _ast.Name)
                and node.target.id == "VARIANT_TO_BASE"
                and isinstance(node.value, _ast.Dict)
            ):
                for variant_key in node.value.keys:
                    if isinstance(variant_key, _ast.Constant) and isinstance(
                        variant_key.value, str
                    ):
                        rules = pragmas.get(variant_key.lineno)
                        if rules:
                            note(f"variants.{variant_key.value}", rules)
    return suppressions


def lint_registry(
    registry: Mapping[str, SyscallSpec] | None = None,
    variants: Mapping[str, str] | None = None,
    *,
    partitioner_factory: Callable[[ArgSpec], object] = make_input_partitioner,
    output_factory: Callable[[SyscallSpec], object] = OutputPartitioner,
    errno_catalog: Mapping[str, int] | None = None,
    suppressions: Mapping[str, frozenset[str]] | None = None,
) -> AnalysisReport:
    """Lint a syscall registry; defaults to the repo's live registry.

    ``suppressions`` maps location prefixes to allowed rules (see
    :func:`registry_suppressions`); it defaults to the pragmas in the
    live registry source when linting the live registry.
    """
    if suppressions is None and registry is None and variants is None:
        suppressions = registry_suppressions()
    registry = dict(BASE_SYSCALLS) if registry is None else dict(registry)
    variants = dict(VARIANT_TO_BASE) if variants is None else dict(variants)
    catalog = ERRNO_BY_NAME if errno_catalog is None else errno_catalog
    report = AnalysisReport(tool="speclint")
    probes = 0
    args_checked = 0
    for name, spec in registry.items():
        for arg in spec.tracked_args:
            location = f"{name}.{arg.name}"
            args_checked += 1
            if arg.arg_class is ArgClass.BITMAP:
                _check_bitmap(report, location, arg)
            elif arg.arg_class is ArgClass.CATEGORICAL:
                _check_categorical(report, location, arg)
            probes += _check_partitions(report, location, arg, partitioner_factory)
        _check_output_domain(report, spec, catalog, output_factory)
    _check_variants(report, registry, variants)
    suppressed = 0
    if suppressions:
        kept = []
        for finding in report.findings:
            if location_suppressed(finding.location, finding.defect, suppressions):
                suppressed += 1
            else:
                kept.append(finding)
        report.findings[:] = kept
    report.stats.update(
        syscalls=len(registry),
        variants=len(variants),
        args_checked=args_checked,
        probes=probes,
        suppressed=suppressed,
    )
    return report
