"""Finding and report types shared by every analysis pass.

A *finding* is one detected defect: a defect-class slug (stable,
kebab-case — the CLI and tests key on these), a severity, a location
("open.flags", "vfs/syscalls.py:chdir"), and a human message.
A report is an ordered collection of findings plus pass-specific
summary statistics; errors drive the exit code, warnings do not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is: errors fail the lint, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One detected defect."""

    defect: str
    severity: Severity
    location: str
    message: str

    def to_dict(self) -> dict[str, str]:
        return {
            "defect": self.defect,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.severity.value.upper():7s} {self.defect:28s} {self.location}: {self.message}"


@dataclass
class AnalysisReport:
    """Outcome of one analysis pass."""

    tool: str
    findings: list[Finding] = field(default_factory=list)
    stats: dict[str, object] = field(default_factory=dict)

    def add(
        self, defect: str, severity: Severity, location: str, message: str
    ) -> None:
        self.findings.append(Finding(defect, severity, location, message))

    def extend(self, other: "AnalysisReport") -> None:
        self.findings.extend(other.findings)
        self.stats.update(other.stats)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def defect_classes(self) -> list[str]:
        """Distinct defect-class slugs present, in first-seen order."""
        seen: set[str] = set()
        return [
            f.defect
            for f in self.findings
            if not (f.defect in seen or seen.add(f.defect))
        ]

    def exit_code(self) -> int:
        """0 when clean (warnings allowed), 1 when any error finding."""
        return 1 if self.errors else 0

    def to_dict(self) -> dict[str, object]:
        return {
            "tool": self.tool,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
            "stats": self.stats,
        }

    def render_text(self) -> str:
        lines = [f"{self.tool}: {len(self.errors)} errors, {len(self.warnings)} warnings"]
        lines.extend("  " + f.render() for f in self.findings)
        for key, value in sorted(self.stats.items()):
            lines.append(f"  [{key}] {value}")
        return "\n".join(lines)
