"""Static concurrency analysis: ``repro lint --concurrency``.

Builds an AST lock model over a set of python sources (by default the
concurrent subsystems: ``repro/obs/``, ``repro/parallel/``, and
``repro/trace/push.py``) and runs four detector families — lock-order
cycles, leaked explicit acquires, LockDoc-style unguarded field
accesses, and blocking calls under a held lock — reporting through the
shared :class:`repro.analysis.findings.AnalysisReport` machinery.

Findings can be silenced with ``# lint: allow(<rule>)`` comments at
the flagged line (see :mod:`repro.analysis.suppress`) or accepted
wholesale in a committed baseline file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.findings import AnalysisReport
from repro.analysis.suppress import apply_baseline, load_baseline
from repro.analysis.concurrency.model import Model, load_repo_sources
from repro.analysis.concurrency.detectors import (
    ACQUIRE_NO_RELEASE,
    BLOCKING_UNDER_LOCK,
    LOCK_ORDER_CYCLE,
    RULES,
    UNGUARDED_ACCESS,
    filter_suppressed,
    run_detectors,
)

__all__ = [
    "analyze_concurrency",
    "load_repo_sources",
    "Model",
    "RULES",
    "LOCK_ORDER_CYCLE",
    "ACQUIRE_NO_RELEASE",
    "UNGUARDED_ACCESS",
    "BLOCKING_UNDER_LOCK",
]

DEFAULT_BASELINE = ".concurrency-baseline.json"


def analyze_concurrency(
    sources: Mapping[str, str] | None = None,
    *,
    targets: Iterable[str] | None = None,
    baseline: str | Path | set[tuple[str, str]] | None = None,
    suppress: bool = True,
) -> AnalysisReport:
    """Run the concurrency pass and return an :class:`AnalysisReport`.

    ``sources`` maps display names to python text; when None the
    ``targets`` paths (relative to the installed ``repro`` package,
    default: the concurrent dogfood set) are loaded.  ``baseline`` is a
    baseline file path or a pre-loaded set of ``(defect, location)``
    pairs.  ``suppress=False`` disables pragma filtering so tests can
    see raw findings.
    """
    if sources is None:
        sources = load_repo_sources(targets)
    model = Model(sources)
    report = run_detectors(model)
    for error in model.parse_errors:
        report.stats.setdefault("parse_errors", []).append(error)
    if suppress:
        filter_suppressed(report, model.sources)
    else:
        report.stats.setdefault("suppressed", 0)
    if baseline is not None:
        accepted = (
            baseline
            if isinstance(baseline, set)
            else load_baseline(baseline)
        )
        apply_baseline(report, accepted)
    else:
        report.stats.setdefault("baselined", 0)
    return report
