"""AST lock model for the static concurrency pass.

Builds, from a set of python sources, a whole-set model of:

- **locks** — ``threading``/``multiprocessing`` ``Lock``/``RLock``/
  ``Condition``/``Semaphore`` objects bound to class attributes or
  module globals, including aliases (``self._lock = registry._lock``
  shares identity with ``MetricsRegistry._lock``);
- **functions** — every function/method body walked with a symbolic
  held-lock stack: ``with``-acquisitions, explicit ``acquire()`` /
  ``release()`` pairs, ``fcntl.flock`` sites, attribute accesses on
  ``self`` with the locks held at that point, resolved call sites, and
  blocking calls (fsync, sleep, socket, blocking queue ops, waits).

Receivers are resolved through a light type environment fed by the
codebase's own annotations: parameter and return annotations, class
attribute assignments (``self.store = store`` with ``store:
BaseRunStore | None``), and local constructor calls.  Resolution is
deliberately under-approximate — an unresolved receiver contributes
nothing rather than a guess — except for one fallback shared with the
reachability pass: an attribute name that names exactly one known lock
(or one method) across the analyzed set resolves to it, unless the
name collides with a common builtin-container method.

Nested ``def``/``lambda`` bodies are skipped: they run at call time,
not at definition time, so crediting the enclosing held-set to them
would fabricate findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

__all__ = ["LockInfo", "FunctionInfo", "ClassInfo", "Model", "load_repo_sources"]

# Factory callables creating synchronisation primitives, keyed by the
# last two elements of the (import-expanded) name chain.
_LOCK_FACTORIES = {
    ("threading", "Lock"): "Lock",
    ("threading", "RLock"): "RLock",
    ("threading", "Condition"): "Condition",
    ("threading", "Semaphore"): "Semaphore",
    ("threading", "BoundedSemaphore"): "Semaphore",
    ("multiprocessing", "Lock"): "Lock",
    ("multiprocessing", "RLock"): "RLock",
    ("multiprocessing", "Condition"): "Condition",
    ("multiprocessing", "Semaphore"): "Semaphore",
}
_QUEUE_FACTORIES = {
    ("queue", "Queue"),
    ("queue", "LifoQueue"),
    ("queue", "PriorityQueue"),
    ("queue", "SimpleQueue"),
    ("multiprocessing", "Queue"),
    ("multiprocessing", "JoinableQueue"),
    ("multiprocessing", "SimpleQueue"),
}
_EVENT_FACTORIES = {("threading", "Event"), ("multiprocessing", "Event")}
_THREAD_FACTORIES = {
    ("threading", "Thread"),
    ("threading", "Timer"),
    ("multiprocessing", "Process"),
}

# Module-level calls that block the calling thread.
_MODULE_BLOCKING = {
    ("time", "sleep"): "time.sleep",
    ("os", "fsync"): "os.fsync",
    ("os", "fdatasync"): "os.fdatasync",
    ("select", "select"): "select.select",
    ("socket", "create_connection"): "socket.create_connection",
    ("subprocess", "run"): "subprocess.run",
    ("subprocess", "call"): "subprocess.call",
    ("subprocess", "check_call"): "subprocess.check_call",
    ("subprocess", "check_output"): "subprocess.check_output",
}

# Method names blocking regardless of receiver type (socket-specific
# enough to trust name-only matching).
_SOCKET_METHODS = {"recv", "recvfrom", "recv_into", "accept", "sendall"}

# Builtin-container/stdlib method names excluded from the
# unique-method-name call fallback (list.append must never resolve to
# BatchedJournal.append).
_BUILTIN_METHOD_NAMES = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "index", "count", "sort", "reverse", "copy", "get", "setdefault",
    "update", "keys", "values", "items", "add", "discard", "union",
    "intersection", "join", "split", "rsplit", "strip", "lstrip",
    "rstrip", "encode", "decode", "format", "startswith", "endswith",
    "read", "write", "readline", "readlines", "flush", "close", "seek",
    "tell", "fileno", "truncate", "open", "send", "sendall", "recv",
    "accept", "connect", "bind", "listen", "put", "put_nowait",
    "get_nowait", "acquire", "release", "wait", "notify", "notify_all",
    "set", "is_set", "start", "run", "cancel", "group", "groups",
    "match", "search", "sub", "findall", "mkdir", "exists", "resolve",
    "unlink", "replace", "execute", "commit", "fetchone", "fetchall",
}

# Mutating container methods: a call like ``self.quarantine.extend(x)``
# counts as a *write* to the ``quarantine`` field.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "put", "put_nowait",
}

# Typing containers whose subscript annotation does NOT type the
# attribute as the element class.
_CONTAINER_NAMES = {
    "dict", "list", "set", "tuple", "frozenset", "Dict", "List", "Set",
    "Tuple", "FrozenSet", "Mapping", "MutableMapping", "Sequence",
    "Iterable", "Iterator", "Callable", "Deque", "deque", "type", "Type",
}

_INIT_METHOD_NAMES = {"__init__", "__post_init__", "__new__"}


@dataclass
class LockInfo:
    lock_id: str
    kind: str  # Lock | RLock | Condition | Semaphore
    module: str
    lineno: int

    @property
    def reentrant(self) -> bool:
        # threading.Condition wraps an RLock by default.
        return self.kind in ("RLock", "Condition")


@dataclass
class Acquisition:
    lock_id: str
    lineno: int
    held: tuple[str, ...]  # locks already held at this site
    explicit: bool = False  # .acquire() call rather than `with`
    in_try: bool = False


@dataclass
class FieldAccess:
    cls: str
    attr: str
    write: bool
    held: tuple[str, ...]
    lineno: int


@dataclass
class CallSite:
    callee: str  # qualname of a function in Model.functions
    held: tuple[str, ...]
    lineno: int


@dataclass
class BlockingCall:
    desc: str
    held: tuple[str, ...]
    lineno: int
    condition: str | None = None  # lock_id when this is Condition.wait


@dataclass
class FunctionInfo:
    qualname: str
    module: str
    cls: str | None
    name: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False, default=None)
    acquisitions: list[Acquisition] = field(default_factory=list)
    accesses: list[FieldAccess] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)
    releases_in_finally: set[str] = field(default_factory=set)
    releases: set[str] = field(default_factory=set)
    lock_sites: int = 0


@dataclass
class ClassInfo:
    name: str
    module: str
    lineno: int
    bases: list[str] = field(default_factory=list)
    raw_attrs: dict[str, tuple] = field(default_factory=dict)
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname


def load_repo_sources(
    targets: Iterable[str] | None = None,
) -> dict[str, str]:
    """Load analyzer input from the installed ``repro`` package.

    *targets* are paths relative to the package root — directories
    (walked recursively) or single ``.py`` files.  ``"."`` means the
    whole package.  Defaults to the concurrent dogfood set.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    if targets is None:
        targets = ("obs", "parallel", "trace/push.py")
    sources: dict[str, str] = {}
    for target in targets:
        path = root if target in (".", "") else root / target
        if path.is_dir():
            files = sorted(path.rglob("*.py"))
        elif path.is_file():
            files = [path]
        else:
            raise FileNotFoundError(f"no such module under repro/: {target}")
        for file in files:
            key = file.relative_to(root).as_posix()
            sources[key] = file.read_text(encoding="utf-8")
    return sources


def _name_chain(node: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` -> ("a", "b", "c"); None for non-trivial shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class Model:
    """Whole-set lock/call/field model over a mapping of sources."""

    def __init__(self, sources: Mapping[str, str]) -> None:
        self.sources = dict(sources)
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.locks: dict[str, LockInfo] = {}
        self.module_locks: dict[tuple[str, str], LockInfo] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        self.imports: dict[str, dict[str, tuple[str, ...]]] = {}
        self.parse_errors: list[str] = []
        self._dotted_to_module: dict[tuple[str, ...], str] = {}
        self._attr_kind_memo: dict[tuple[str, str], tuple | None] = {}
        self._lock_attr_names: dict[str, list[LockInfo]] = {}
        self._trees: dict[str, ast.Module] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction

    def _build(self) -> None:
        for key, text in self.sources.items():
            try:
                tree = ast.parse(text, filename=key)
            except SyntaxError as exc:  # pragma: no cover - defensive
                self.parse_errors.append(f"{key}: {exc}")
                continue
            self._trees[key] = tree
            parts = tuple(key[:-3].split("/")) if key.endswith(".py") else (key,)
            if parts and parts[-1] == "__init__":
                parts = parts[:-1]
            self._dotted_to_module[parts] = key
            self._dotted_to_module[("repro",) + parts] = key
        for key, tree in self._trees.items():
            self._index_module(key, tree)
        # Eagerly register every factory-assigned lock so alias chains
        # and the unique-attr fallback resolve against a complete set.
        for cls in self.classes.values():
            for attr, raw in cls.raw_attrs.items():
                if raw[0] == "factory" and raw[1] in (
                    "Lock", "RLock", "Condition", "Semaphore",
                ):
                    info = LockInfo(
                        f"{cls.name}.{attr}", raw[1], cls.module, raw[2]
                    )
                    self.locks[info.lock_id] = info
                    self._attr_kind_memo[(cls.name, attr)] = ("lock", info)
                    self._lock_attr_names.setdefault(attr, []).append(info)
        for (module, name), info in self.module_locks.items():
            self.locks[info.lock_id] = info
        for key, tree in self._trees.items():
            self._walk_module(key, tree)

    def _index_module(self, key: str, tree: ast.Module) -> None:
        imports: dict[str, tuple[str, ...]] = {}
        self.imports[key] = imports
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    dotted = tuple(alias.name.split("."))
                    imports[alias.asname or dotted[0]] = dotted
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = tuple(node.module.split("."))
                for alias in node.names:
                    imports[alias.asname or alias.name] = base + (alias.name,)
            elif isinstance(node, ast.Assign):
                self._index_module_assign(key, node)
            elif isinstance(node, ast.ClassDef):
                self._index_class(key, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{key}::{node.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname, key, None, node.name, node.lineno, node
                )

    def _index_module_assign(self, key: str, node: ast.Assign) -> None:
        raw = self._classify_rhs(key, node.value, None)
        if raw is None or raw[0] != "factory":
            return
        kind = raw[1]
        if kind not in ("Lock", "RLock", "Condition", "Semaphore"):
            return
        stem = Path(key).stem
        for target in node.targets:
            if isinstance(target, ast.Name):
                info = LockInfo(
                    f"{stem}.{target.id}", kind, key, node.lineno
                )
                self.module_locks[(key, target.id)] = info

    def _index_class(self, key: str, node: ast.ClassDef) -> None:
        cls = ClassInfo(node.name, key, node.lineno)
        cls.bases = [
            base.id for base in node.bases if isinstance(base, ast.Name)
        ]
        if node.name not in self.classes:
            self.classes[node.name] = cls
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                cls.raw_attrs.setdefault(
                    item.target.id, ("annnode", item.annotation, item.lineno)
                )
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{node.name}.{item.name}"
                cls.methods[item.name] = qualname
                self.functions[qualname] = FunctionInfo(
                    qualname, key, node.name, item.name, item.lineno, item
                )
                self.methods_by_name.setdefault(item.name, []).append(qualname)
                self._index_self_assigns(key, cls, item)

    def _index_self_assigns(
        self, key: str, cls: ClassInfo, fn: ast.FunctionDef
    ) -> None:
        params = {
            arg.arg: arg.annotation
            for arg in list(fn.args.args) + list(fn.args.kwonlyargs)
            if arg.annotation is not None
        }
        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    raw = None
                    if value is not None:
                        raw = self._classify_rhs(key, value, params)
                    if raw is None and isinstance(node, ast.AnnAssign):
                        raw = ("annnode", node.annotation, node.lineno)
                    if raw is not None:
                        cls.raw_attrs.setdefault(target.attr, raw)

    @staticmethod
    def _queue_bounded(node: ast.Call, tail: tuple[str, ...]) -> bool:
        """True when the queue factory call sets a nonzero maxsize.

        ``put`` on an unbounded queue never blocks, so boundedness
        decides whether it counts as a blocking call.
        """
        if tail[-1] == "SimpleQueue":
            return False
        size: ast.expr | None = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "maxsize":
                size = keyword.value
        if size is None:
            return False
        if isinstance(size, ast.Constant) and not size.value:
            return False
        return True

    def _classify_rhs(
        self,
        key: str,
        node: ast.expr,
        params: dict[str, ast.expr] | None,
    ) -> tuple | None:
        if isinstance(node, ast.BoolOp):
            for operand in node.values:
                raw = self._classify_rhs(key, operand, params)
                if raw is not None:
                    return raw
            return None
        if isinstance(node, ast.IfExp):
            return self._classify_rhs(key, node.body, params) or (
                self._classify_rhs(key, node.orelse, params)
            )
        if isinstance(node, ast.Call):
            chain = _name_chain(node.func)
            if chain is not None:
                expanded = self._expand(key, chain)
                tail = expanded[-2:] if len(expanded) >= 2 else expanded
                if tail in _LOCK_FACTORIES:
                    return ("factory", _LOCK_FACTORIES[tail], node.lineno)
                if tail in _QUEUE_FACTORIES:
                    kind = "queue" if self._queue_bounded(node, tail) else (
                        "uqueue"
                    )
                    return ("factory", kind, node.lineno)
                if tail in _EVENT_FACTORIES:
                    return ("factory", "event", node.lineno)
                if tail in _THREAD_FACTORIES:
                    return ("factory", "thread", node.lineno)
                if len(chain) == 1 and self._class_in_scope(key, chain[0]):
                    return ("classcall", chain[0])
            return None
        if isinstance(node, ast.Name) and params and node.id in params:
            return ("annnode", params[node.id], node.lineno)
        if isinstance(node, ast.Attribute):
            chain = _name_chain(node)
            if chain is not None and len(chain) >= 2:
                root_ann = params.get(chain[0]) if params else None
                return ("chain", chain, root_ann, key)
        return None

    # ------------------------------------------------------------------
    # resolution

    def _expand(self, key: str, chain: tuple[str, ...]) -> tuple[str, ...]:
        mapped = self.imports.get(key, {}).get(chain[0])
        if mapped is not None:
            return mapped + chain[1:]
        return chain

    def _class_in_scope(self, key: str, name: str) -> bool:
        cls = self.classes.get(name)
        if cls is None:
            return False
        if cls.module == key:
            return True
        mapped = self.imports.get(key, {}).get(name)
        if mapped is not None and mapped[-1] == name:
            return self._dotted_to_module.get(mapped[:-1]) == cls.module
        return False

    def attr_kind(self, cls_name: str, attr: str) -> tuple | None:
        """Resolve (class, attr) to a value kind.

        Returns ``("lock", LockInfo)``, ``("queue",)``, ``("event",)``,
        ``("thread",)``, ``("class", name)``, or None.
        """
        memo_key = (cls_name, attr)
        if memo_key in self._attr_kind_memo:
            return self._attr_kind_memo[memo_key]
        self._attr_kind_memo[memo_key] = None  # cycle guard
        kind = self._attr_kind_uncached(cls_name, attr, set())
        self._attr_kind_memo[memo_key] = kind
        return kind

    def _attr_kind_uncached(
        self, cls_name: str, attr: str, seen: set[str]
    ) -> tuple | None:
        if cls_name in seen:
            return None
        seen.add(cls_name)
        cls = self.classes.get(cls_name)
        if cls is None:
            return None
        raw = cls.raw_attrs.get(attr)
        if raw is None:
            for base in cls.bases:
                kind = self._attr_kind_uncached(base, attr, seen)
                if kind is not None:
                    return kind
            return None
        tag = raw[0]
        if tag == "factory":
            factory = raw[1]
            if factory in ("Lock", "RLock", "Condition", "Semaphore"):
                # registered eagerly at build time
                return self._attr_kind_memo.get((cls_name, attr))
            return (factory,)
        if tag == "classcall":
            return ("class", raw[1]) if raw[1] in self.classes else None
        if tag == "annnode":
            return self._ann_kind(cls.module, raw[1])
        if tag == "chain":
            _, chain, root_ann, key = raw
            kind = None
            if root_ann is not None:
                kind = self._ann_kind(key, root_ann)
            for part in chain[1:]:
                if kind is not None and kind[0] == "class":
                    kind = self.attr_kind(kind[1], part)
                else:
                    kind = None
            if kind is not None:
                return kind
            # fallback: final attr names exactly one known lock
            return self._unique_lock_attr(chain[-1])
        return None

    def _unique_lock_attr(self, attr: str) -> tuple | None:
        infos = self._lock_attr_names.get(attr)
        if infos is not None and len(infos) == 1:
            return ("lock", infos[0])
        return None

    def _ann_kind(self, key: str, node: ast.expr | None) -> tuple | None:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                try:
                    parsed = ast.parse(node.value, mode="eval")
                except SyntaxError:
                    return None
                return self._ann_kind(key, parsed.body)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._ann_kind(key, node.left) or self._ann_kind(
                key, node.right
            )
        if isinstance(node, ast.Subscript):
            chain = _name_chain(node.value)
            if chain is not None and chain[-1] == "Optional":
                return self._ann_kind(key, node.slice)
            return None  # dict[...]/list[...] do not type the attr
        chain = _name_chain(node)
        if chain is None:
            return None
        expanded = self._expand(key, chain)
        tail = expanded[-2:] if len(expanded) >= 2 else expanded
        if tail in _QUEUE_FACTORIES:
            return ("queue",)
        if tail in _EVENT_FACTORIES:
            return ("event",)
        if tail in _THREAD_FACTORIES:
            return ("thread",)
        if tail in _LOCK_FACTORIES:
            return None  # an annotation carries no lock identity
        if len(chain) == 1:
            name = chain[0]
            if name in _CONTAINER_NAMES:
                return None
            if self._class_in_scope(key, name):
                return ("class", name)
        elif expanded[-1] in self.classes:
            mod = self._dotted_to_module.get(expanded[:-1])
            if mod == self.classes[expanded[-1]].module:
                return ("class", expanded[-1])
        return None

    def method_lookup(self, cls_name: str, name: str) -> str | None:
        seen: set[str] = set()
        stack = [cls_name]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(cls.bases)
        return None

    def is_sync_attr(self, cls_name: str, attr: str) -> bool:
        kind = self.attr_kind(cls_name, attr)
        return kind is not None and kind[0] in (
            "lock", "queue", "uqueue", "event", "thread",
        )

    # ------------------------------------------------------------------
    # function walking

    def _walk_module(self, key: str, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_function(key, None, node)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._walk_function(key, node.name, item)

    def _walk_function(
        self, key: str, cls: str | None, node: ast.FunctionDef
    ) -> None:
        qualname = f"{cls}.{node.name}" if cls else f"{key}::{node.name}"
        fn = self.functions.get(qualname)
        if fn is None or fn.node is not node:
            return
        walker = _FunctionWalker(self, fn)
        for stmt in node.body:
            walker.visit(stmt)
        fn.releases_in_finally = walker.released_in_finally
        fn.releases = walker.released


class _FunctionWalker(ast.NodeVisitor):
    """Walk one function body with a symbolic held-lock stack."""

    def __init__(self, model: Model, fn: FunctionInfo) -> None:
        self.model = model
        self.fn = fn
        self.module = fn.module
        self.cls = fn.cls
        self.held: list[str] = []
        self.try_depth = 0
        self.finally_depth = 0
        self.released_in_finally: set[str] = set()
        self.released: set[str] = set()
        self.env: dict[str, tuple | None] = {}
        if fn.node is not None:
            args = fn.node.args
            for arg in list(args.args) + list(args.kwonlyargs):
                if arg.annotation is not None:
                    self.env[arg.arg] = model._ann_kind(
                        self.module, arg.annotation
                    )

    # -- type environment ------------------------------------------------

    def _expr_kind(self, node: ast.expr) -> tuple | None:
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cls:
                return ("class", self.cls)
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._expr_kind(node.value)
            if base is not None and base[0] == "class":
                return self.model.attr_kind(base[1], node.attr)
            return None
        if isinstance(node, ast.Call):
            callee = self._resolve_call(node.func)
            if callee is not None:
                info = self.model.functions.get(callee)
                if info is not None and info.node is not None:
                    returns = info.node.returns
                    if returns is not None:
                        return self.model._ann_kind(info.module, returns)
                # Constructor call resolved to __init__
                if callee.endswith(".__init__"):
                    return ("class", callee.rsplit(".", 1)[0])
            chain = _name_chain(node.func)
            if chain is not None and len(chain) == 1 and (
                self.model._class_in_scope(self.module, chain[0])
            ):
                return ("class", chain[0])
            return None
        if isinstance(node, ast.BoolOp):
            for operand in node.values:
                kind = self._expr_kind(operand)
                if kind is not None:
                    return kind
        return None

    def _resolve_lock(self, node: ast.expr) -> LockInfo | None:
        if isinstance(node, ast.Name):
            info = self.model.module_locks.get((self.module, node.id))
            if info is not None:
                return info
            kind = self.env.get(node.id)
            if kind is not None and kind[0] == "lock":
                return kind[1]
            return None
        kind = self._expr_kind(node)
        if kind is not None and kind[0] == "lock":
            return kind[1]
        if isinstance(node, ast.Attribute):
            fallback = self.model._unique_lock_attr(node.attr)
            if fallback is not None:
                return fallback[1]
        return None

    def _resolve_call(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            qualname = f"{self.module}::{func.id}"
            if qualname in self.model.functions:
                return qualname
            mapped = self.model.imports.get(self.module, {}).get(func.id)
            if mapped is not None and len(mapped) >= 2:
                mod = self.model._dotted_to_module.get(mapped[:-1])
                if mod is not None:
                    imported = f"{mod}::{mapped[-1]}"
                    if imported in self.model.functions:
                        return imported
            if self.model._class_in_scope(self.module, func.id):
                return self.model.method_lookup(func.id, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            # Only annotation-typed receivers resolve: a unique-name
            # fallback here resolves `self.iocov.report()` (an
            # unanalyzed object) to an analyzed method of the same
            # name and fabricates call edges.
            base = self._expr_kind(func.value)
            if base is not None and base[0] == "class":
                return self.model.method_lookup(base[1], func.attr)
        return None

    # -- recording -------------------------------------------------------

    def _record_access(self, attr: str, write: bool, lineno: int) -> None:
        if self.cls is None:
            return
        cls = self.model.classes.get(self.cls)
        if cls is not None and attr in cls.methods:
            return
        if self.model.is_sync_attr(self.cls, attr):
            return
        self.fn.accesses.append(
            FieldAccess(self.cls, attr, write, tuple(self.held), lineno)
        )

    def _acquire(
        self, info: LockInfo, lineno: int, explicit: bool
    ) -> None:
        self.fn.acquisitions.append(
            Acquisition(
                info.lock_id,
                lineno,
                tuple(self.held),
                explicit=explicit,
                in_try=self.try_depth > 0,
            )
        )
        self.fn.lock_sites += 1
        self.held.append(info.lock_id)

    # -- visitors --------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs run at call time, not here

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            self.visit(item.context_expr)
            info = self._resolve_lock(item.context_expr)
            if info is not None:
                self._acquire(info, item.context_expr.lineno, explicit=False)
                pushed += 1
            elif isinstance(item.optional_vars, ast.Name):
                self.env[item.optional_vars.id] = self._expr_kind(
                    item.context_expr
                )
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    visit_AsyncWith = visit_With

    def visit_Try(self, node: ast.Try) -> None:
        self.try_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.try_depth -= 1
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self.finally_depth += 1
        for stmt in node.finalbody:
            self.visit(stmt)
        self.finally_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._bind_target(target, node.value)
            self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._bind_target(node.target, node.value)
        self.visit(node.target)

    def _bind_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            kind = self._expr_kind(value)
            if kind is None and isinstance(value, ast.Call):
                raw = self.model._classify_rhs(self.module, value, None)
                if raw is not None and raw[0] == "factory" and raw[1] in (
                    "Lock", "RLock", "Condition", "Semaphore",
                ):
                    info = LockInfo(
                        f"{self.fn.qualname}:{target.id}",
                        raw[1],
                        self.module,
                        value.lineno,
                    )
                    self.model.locks[info.lock_id] = info
                    kind = ("lock", info)
            self.env[target.id] = kind
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env[element.id] = None

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            self._record_access(node.attr, write, node.lineno)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) and isinstance(
            node.value, ast.Attribute
        ):
            target = node.value
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                self._record_access(target.attr, True, node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        handled = self._handle_acquire_release(node)
        if not handled:
            self._handle_blocking(node)
            self._handle_mutator(node)
            callee = self._resolve_call(node.func)
            if callee is not None:
                self.fn.calls.append(
                    CallSite(callee, tuple(self.held), node.lineno)
                )
        self.generic_visit(node)

    def _handle_acquire_release(self, node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr not in ("acquire", "release"):
            return False
        info = self._resolve_lock(func.value)
        if info is None:
            return False
        if func.attr == "acquire":
            self._acquire(info, node.lineno, explicit=True)
        else:
            self.released.add(info.lock_id)
            if self.finally_depth > 0:
                self.released_in_finally.add(info.lock_id)
            if info.lock_id in self.held:
                # drop the most recent acquisition of this lock
                for index in range(len(self.held) - 1, -1, -1):
                    if self.held[index] == info.lock_id:
                        del self.held[index]
                        break
        return True

    def _handle_mutator(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            self._record_access(func.value.attr, True, node.lineno)

    def _handle_blocking(self, node: ast.Call) -> None:
        chain = _name_chain(node.func)
        if chain is not None:
            expanded = self.model._expand(self.module, chain)
            tail = expanded[-2:] if len(expanded) >= 2 else expanded
            if tail in _MODULE_BLOCKING:
                self._blocking(_MODULE_BLOCKING[tail], node.lineno)
                return
            if tail == ("fcntl", "flock"):
                self.fn.lock_sites += 1
                if not self._flock_nonblocking(node):
                    self._blocking("fcntl.flock", node.lineno)
                return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = self._expr_kind(func.value)
        name = func.attr
        if receiver is not None:
            if receiver[0] in ("queue", "uqueue") and name in ("get", "put"):
                # put on an unbounded queue never blocks
                if receiver[0] == "uqueue" and name == "put":
                    return
                if not self._queue_nonblocking(node):
                    self._blocking(f"queue.Queue.{name}", node.lineno)
                return
            if receiver[0] == "event" and name in ("wait",):
                self._blocking("Event.wait", node.lineno)
                return
            if receiver[0] == "thread" and name == "join":
                self._blocking("Thread.join", node.lineno)
                return
            if (
                receiver[0] == "lock"
                and receiver[1].kind == "Condition"
                and name in ("wait", "wait_for")
            ):
                self._blocking(
                    f"Condition.{name}",
                    node.lineno,
                    condition=receiver[1].lock_id,
                )
                return
        if name in _SOCKET_METHODS:
            # Skip module-qualified calls (handled above); name-based
            # socket methods only fire on object receivers.
            root = chain[0] if chain else None
            if root is None or root not in self.model.imports.get(
                self.module, {}
            ):
                self._blocking(f"socket.{name}", node.lineno)

    def _blocking(
        self, desc: str, lineno: int, condition: str | None = None
    ) -> None:
        self.fn.blocking.append(
            BlockingCall(desc, tuple(self.held), lineno, condition=condition)
        )

    @staticmethod
    def _queue_nonblocking(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "block" and isinstance(
                keyword.value, ast.Constant
            ):
                return keyword.value.value is False
        # q.get(False) / q.put(item, False)
        positional_block = None
        if node.func.attr == "get" and len(node.args) >= 1:
            positional_block = node.args[0]
        elif node.func.attr == "put" and len(node.args) >= 2:
            positional_block = node.args[1]
        if isinstance(positional_block, ast.Constant):
            return positional_block.value is False
        return False

    @staticmethod
    def _flock_nonblocking(node: ast.Call) -> bool:
        if len(node.args) < 2:
            return False
        names: set[str] = set()
        for sub in ast.walk(node.args[1]):
            if isinstance(sub, ast.Attribute):
                names.add(sub.attr)
            elif isinstance(sub, ast.Name):
                names.add(sub.id)
        return bool(names & {"LOCK_NB", "LOCK_UN"})
