"""Detectors over the lock model: the four concurrency rule families.

All rules report through :class:`repro.analysis.findings.AnalysisReport`
with ERROR severity so the CLI exit-code contract (0 clean / 1 findings
/ 2 error) gates them in CI.

Rule slugs
----------
``lock-order-cycle``
    The lock-order graph (edges "A held while acquiring B", including
    locks inherited from callers via may-held propagation) contains a
    cycle, or a non-reentrant ``Lock`` is re-acquired while already
    held — a potential deadlock.
``acquire-no-release``
    An explicit ``.acquire()`` inside a ``try`` whose lock is not
    released in a ``finally`` (or never released in the function): an
    exception leaks the lock.
``unguarded-access``
    LockDoc-style guarded-field inference: when a strict majority
    (and at least two) of a field's post-init accesses hold the same
    lock, the remaining accesses are flagged as racy.
``blocking-under-lock``
    fsync/sleep/socket/blocking-queue/subprocess/wait calls while a
    lock is held (directly or in every/any caller, see may-held
    propagation) — latency and deadlock hazards on daemon hot paths.

Propagation modes: *may-held* (union over call sites) feeds the
lock-order and blocking detectors, where a single bad path suffices;
*must-held* (intersection over call sites) feeds guarded-field
inference, where crediting a lock requires it on every path.
"""

from __future__ import annotations

from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.suppress import SuppressionIndex
from repro.analysis.concurrency.model import Model

__all__ = [
    "LOCK_ORDER_CYCLE",
    "ACQUIRE_NO_RELEASE",
    "UNGUARDED_ACCESS",
    "BLOCKING_UNDER_LOCK",
    "RULES",
    "run_detectors",
]

LOCK_ORDER_CYCLE = "lock-order-cycle"
ACQUIRE_NO_RELEASE = "acquire-no-release"
UNGUARDED_ACCESS = "unguarded-access"
BLOCKING_UNDER_LOCK = "blocking-under-lock"

RULES = (
    LOCK_ORDER_CYCLE,
    ACQUIRE_NO_RELEASE,
    UNGUARDED_ACCESS,
    BLOCKING_UNDER_LOCK,
)

_INIT_NAMES = {"__init__", "__post_init__", "__new__"}

# Guarded-field inference thresholds: the majority lock needs at least
# this many supporting accesses, and a strict majority overall.
_GUARD_MIN_EVIDENCE = 2


def _compute_callers(model: Model) -> dict[str, set[str]]:
    callers: dict[str, set[str]] = {}
    for fn in model.functions.values():
        for call in fn.calls:
            if call.callee in model.functions:
                callers.setdefault(call.callee, set()).add(fn.qualname)
    return callers


def _entry_may(model: Model) -> dict[str, set[str]]:
    """Union of locks held at any call site, propagated transitively."""
    entry: dict[str, set[str]] = {q: set() for q in model.functions}
    changed = True
    while changed:
        changed = False
        for fn in model.functions.values():
            for call in fn.calls:
                target = entry.get(call.callee)
                if target is None:
                    continue
                incoming = set(call.held) | entry[fn.qualname]
                if not incoming <= target:
                    target |= incoming
                    changed = True
    return entry


def _entry_must(model: Model) -> dict[str, set[str]]:
    """Locks held at *every* analyzed call site (empty for roots).

    Starts from the empty set and grows monotonically, so the result
    under-approximates must-held — sound for crediting guard evidence.
    """
    entry: dict[str, set[str]] = {q: set() for q in model.functions}
    for _ in range(len(model.functions) + 2):
        fresh: dict[str, set[str]] = {}
        for fn in model.functions.values():
            for call in fn.calls:
                if call.callee not in entry:
                    continue
                incoming = set(call.held) | entry[fn.qualname]
                if call.callee in fresh:
                    fresh[call.callee] &= incoming
                else:
                    fresh[call.callee] = set(incoming)
        new_entry = {q: fresh.get(q, set()) for q in entry}
        if new_entry == entry:
            break
        entry = new_entry
    return entry


def _init_only(model: Model, callers: dict[str, set[str]]) -> set[str]:
    """Functions reachable only from ``__init__``-phase code.

    Accesses there (e.g. a journal ``_scan`` populating counters before
    the object escapes) are single-threaded and excluded from
    guarded-field evidence.
    """
    init_only: set[str] = set()
    changed = True
    while changed:
        changed = False
        for qualname, fn in model.functions.items():
            if qualname in init_only or fn.name in _INIT_NAMES:
                continue
            calling = callers.get(qualname)
            if not calling:
                continue
            if all(
                model.functions[c].name in _INIT_NAMES or c in init_only
                for c in calling
            ):
                init_only.add(qualname)
                changed = True
    return init_only


def _location(module: str, lineno: int) -> str:
    return f"{module}:{lineno}"


def _detect_lock_order(
    model: Model, entry_may: dict[str, set[str]]
) -> list[tuple[Finding, str, int]]:
    edges: dict[tuple[str, str], tuple[str, int]] = {}
    found: list[tuple[Finding, str, int]] = []
    reported_self: set[tuple[str, str, int]] = set()
    for fn in model.functions.values():
        inherited = entry_may[fn.qualname]
        for acq in fn.acquisitions:
            prior = set(acq.held) | inherited
            for held in prior:
                if held == acq.lock_id:
                    info = model.locks.get(held)
                    if info is not None and not info.reentrant:
                        key = (held, fn.module, acq.lineno)
                        if key not in reported_self:
                            reported_self.add(key)
                            found.append((
                                Finding(
                                    defect=LOCK_ORDER_CYCLE,
                                    severity=Severity.ERROR,
                                    location=_location(fn.module, acq.lineno),
                                    message=(
                                        f"non-reentrant lock {held} "
                                        "re-acquired while already held "
                                        "(self-deadlock)"
                                    ),
                                ),
                                fn.module,
                                acq.lineno,
                            ))
                else:
                    edges.setdefault(
                        (held, acq.lock_id), (fn.module, acq.lineno)
                    )
    # Cycle detection over the (tiny) lock digraph.
    graph: dict[str, set[str]] = {}
    for (src, dst) in edges:
        graph.setdefault(src, set()).add(dst)
        graph.setdefault(dst, set())
    reach: dict[str, set[str]] = {}
    for node in graph:
        seen: set[str] = set()
        stack = list(graph[node])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(graph.get(current, ()))
        reach[node] = seen
    cycles: set[tuple[str, ...]] = set()
    for node in graph:
        if node in reach[node]:
            component = tuple(sorted(
                other
                for other in graph
                if other in reach[node] and node in reach.get(other, ())
            ))
            cycles.add(component)
    for component in sorted(cycles):
        arcs = [
            f"{src} -> {dst} (at {edges[(src, dst)][0]}:{edges[(src, dst)][1]})"
            for (src, dst) in sorted(edges)
            if src in component and dst in component
        ]
        module, lineno = next(
            edges[(src, dst)]
            for (src, dst) in sorted(edges)
            if src in component and dst in component
        )
        found.append((
            Finding(
                defect=LOCK_ORDER_CYCLE,
                severity=Severity.ERROR,
                location=_location(module, lineno),
                message=(
                    "potential deadlock: lock-order cycle between "
                    + ", ".join(component)
                    + "; "
                    + "; ".join(arcs)
                ),
            ),
            module,
            lineno,
        ))
    return found, edges


def _detect_leaked_acquires(model: Model) -> list[tuple[Finding, str, int]]:
    found: list[tuple[Finding, str, int]] = []
    for fn in model.functions.values():
        for acq in fn.acquisitions:
            if not acq.explicit:
                continue
            if acq.lock_id in fn.releases_in_finally:
                continue
            if acq.in_try:
                reason = (
                    "acquired inside try without release in finally; "
                    "an exception leaks the lock"
                )
            elif acq.lock_id not in fn.releases:
                reason = "never released in this function"
            else:
                continue
            found.append((
                Finding(
                    defect=ACQUIRE_NO_RELEASE,
                    severity=Severity.ERROR,
                    location=_location(fn.module, acq.lineno),
                    message=f"{acq.lock_id}.acquire() {reason}",
                ),
                fn.module,
                acq.lineno,
            ))
    return found


def _detect_unguarded_fields(
    model: Model,
    entry_must: dict[str, set[str]],
    init_only: set[str],
) -> tuple[list[tuple[Finding, str, int]], dict[str, str], int]:
    by_field: dict[tuple[str, str], list[tuple]] = {}
    for fn in model.functions.values():
        if fn.name in _INIT_NAMES or fn.qualname in init_only:
            continue
        inherited = entry_must[fn.qualname]
        for access in fn.accesses:
            effective = frozenset(access.held) | inherited
            by_field.setdefault((access.cls, access.attr), []).append(
                (access, effective, fn)
            )
    found: list[tuple[Finding, str, int]] = []
    guarded: dict[str, str] = {}
    fields_tracked = 0
    for (cls, attr), entries in sorted(by_field.items()):
        if not any(access.write for access, _, _ in entries):
            continue  # effectively immutable after __init__
        fields_tracked += 1
        total = len(entries)
        tally: dict[str, int] = {}
        for _, effective, _ in entries:
            for lock_id in effective:
                tally[lock_id] = tally.get(lock_id, 0) + 1
        if not tally:
            continue
        guard, covered = max(tally.items(), key=lambda item: (item[1], item[0]))
        if covered == total:
            guarded[f"{cls}.{attr}"] = guard
            continue
        if covered < _GUARD_MIN_EVIDENCE or 2 * covered <= total:
            continue
        for access, effective, fn in entries:
            if guard in effective:
                continue
            verb = "write to" if access.write else "read of"
            found.append((
                Finding(
                    defect=UNGUARDED_ACCESS,
                    severity=Severity.ERROR,
                    location=_location(fn.module, access.lineno),
                    message=(
                        f"{verb} {cls}.{attr} without {guard}, which "
                        f"guards {covered}/{total} of its accesses"
                    ),
                ),
                fn.module,
                access.lineno,
            ))
    return found, guarded, fields_tracked


def _detect_blocking(
    model: Model, entry_may: dict[str, set[str]]
) -> list[tuple[Finding, str, int]]:
    found: list[tuple[Finding, str, int]] = []
    for fn in model.functions.values():
        inherited = entry_may[fn.qualname]
        for call in fn.blocking:
            effective = set(call.held) | inherited
            if call.condition is not None:
                # Waiting on a condition releases that condition's own
                # lock; only *other* held locks are hazards.
                effective.discard(call.condition)
            if not effective:
                continue
            origin = ""
            if not (effective & set(call.held)):
                origin = " (held by callers)"
            found.append((
                Finding(
                    defect=BLOCKING_UNDER_LOCK,
                    severity=Severity.ERROR,
                    location=_location(fn.module, call.lineno),
                    message=(
                        f"blocking call {call.desc} while holding "
                        + ", ".join(sorted(effective))
                        + origin
                    ),
                ),
                fn.module,
                call.lineno,
            ))
    return found


def run_detectors(model: Model) -> AnalysisReport:
    """Run all detector families; returns an unfiltered report.

    Suppressions and baselines are applied by the caller (see
    :func:`repro.analysis.concurrency.analyze_concurrency`) so tests
    can inspect the raw findings.
    """
    report = AnalysisReport(tool="concurrency")
    callers = _compute_callers(model)
    entry_may = _entry_may(model)
    entry_must = _entry_must(model)
    init_only = _init_only(model, callers)

    order_findings, edges = _detect_lock_order(model, entry_may)
    leak_findings = _detect_leaked_acquires(model)
    field_findings, guarded, fields_tracked = _detect_unguarded_fields(
        model, entry_must, init_only
    )
    blocking_findings = _detect_blocking(model, entry_may)

    tagged = order_findings + leak_findings + field_findings + blocking_findings
    tagged.sort(key=lambda item: (item[1], item[2], item[0].defect))

    per_module: dict[str, dict[str, int]] = {}

    def bucket(module: str) -> dict[str, int]:
        return per_module.setdefault(module, {
            "locks": 0,
            "lock_sites": 0,
            "functions": 0,
            "guarded_fields": 0,
            "unguarded_accesses": 0,
            "blocking_calls": 0,
        })

    for module in model.sources:
        bucket(module)
    for info in model.locks.values():
        bucket(info.module)["locks"] += 1
    for fn in model.functions.values():
        stats = bucket(fn.module)
        stats["functions"] += 1
        stats["lock_sites"] += fn.lock_sites
        stats["blocking_calls"] += len(fn.blocking)
    for field_name, guard in guarded.items():
        cls = field_name.split(".", 1)[0]
        info = model.classes.get(cls)
        if info is not None:
            bucket(info.module)["guarded_fields"] += 1
    for finding, module, _ in tagged:
        if finding.defect == UNGUARDED_ACCESS:
            bucket(module)["unguarded_accesses"] += 1

    report.findings.extend(finding for finding, _, _ in tagged)

    report.stats.update({
        "modules": len(model.sources),
        "classes": len(model.classes),
        "functions": len(model.functions),
        "locks": len(model.locks),
        "lock_sites": sum(fn.lock_sites for fn in model.functions.values()),
        "lock_order_edges": len(edges),
        "fields_tracked": fields_tracked,
        "guarded_fields": dict(sorted(guarded.items())),
        "lock_coverage": dict(sorted(per_module.items())),
    })
    return report


def filter_suppressed(
    report: AnalysisReport, sources: dict[str, str]
) -> AnalysisReport:
    """Drop findings allowed by ``# lint: allow(...)`` pragmas."""
    indexes = {
        module: SuppressionIndex(text) for module, text in sources.items()
    }
    kept = []
    suppressed = 0
    for finding in report.findings:
        module, _, lineno_text = finding.location.rpartition(":")
        index = indexes.get(module)
        try:
            lineno = int(lineno_text)
        except ValueError:
            lineno = -1
        if index is not None and index.allows(lineno, finding.defect):
            suppressed += 1
        else:
            kept.append(finding)
    report.findings[:] = kept
    report.stats["suppressed"] = suppressed
    return report
