"""Suppression comments and baselines for ``repro lint``.

One syntax covers every lint surface: a ``# lint: allow(<rule>)``
comment on the offending line (or on the line directly above it)
suppresses findings of that rule at that location.  Several rules may
be listed, comma-separated, and ``all`` matches any rule::

    os.fsync(fd)  # lint: allow(blocking-under-lock) group commit is the point

    # lint: allow(unguarded-access)
    self.counter += 1

Baselines let a repo adopt a new lint without fixing historical
findings first: a committed JSON file listing ``defect``/``location``
pairs that are filtered from the report (and counted in its stats)
instead of failing the gate.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Mapping

from repro.analysis.findings import AnalysisReport, Finding

__all__ = [
    "SuppressionIndex",
    "scan_pragmas",
    "load_baseline",
    "apply_baseline",
]

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")


def scan_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule names allowed on that line."""
    pragmas: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if rules:
            pragmas[lineno] = rules
    return pragmas


class SuppressionIndex:
    """Per-file index answering "is <rule> allowed at <line>?"."""

    def __init__(self, source: str) -> None:
        self._by_line = scan_pragmas(source)

    def allows(self, lineno: int, rule: str) -> bool:
        for candidate in (lineno, lineno - 1):
            rules = self._by_line.get(candidate)
            if rules is not None and (rule in rules or "all" in rules):
                return True
        return False

    def __bool__(self) -> bool:
        return bool(self._by_line)


def load_baseline(path: str | Path) -> set[tuple[str, str]]:
    """Load accepted ``(defect, location)`` pairs from a baseline file.

    The file is a JSON document ``{"findings": [{"defect": ...,
    "location": ...}, ...]}``; unknown keys are ignored so the file can
    carry human-facing context (dates, justifications).
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    accepted: set[tuple[str, str]] = set()
    for entry in doc.get("findings", []):
        defect = entry.get("defect")
        location = entry.get("location")
        if isinstance(defect, str) and isinstance(location, str):
            accepted.add((defect, location))
    return accepted


def apply_baseline(
    report: AnalysisReport, accepted: set[tuple[str, str]]
) -> AnalysisReport:
    """Drop baselined findings from *report*, counting them in stats."""
    kept: list[Finding] = []
    baselined = 0
    for finding in report.findings:
        if (finding.defect, finding.location) in accepted:
            baselined += 1
        else:
            kept.append(finding)
    report.findings[:] = kept
    report.stats["baselined"] = baselined
    return report


def location_suppressed(
    location: str, rule: str, suppressions: Mapping[str, frozenset[str]]
) -> bool:
    """True when *rule* is allowed for *location* by a prefix map.

    ``suppressions`` maps location prefixes (e.g. a syscall name) to
    allowed rule sets; a prefix matches the exact location or any
    dotted extension of it (``open`` matches ``open.flags``).
    """
    for prefix, rules in suppressions.items():
        if location == prefix or location.startswith(prefix + "."):
            if rule in rules or "all" in rules:
                return True
    return False
