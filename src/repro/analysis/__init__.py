"""Static analysis over the IOCov spec and its implementations.

Three passes, none of which executes a single traced syscall:

* :mod:`repro.analysis.speclint` — pure consistency checks over the
  syscall registry, the partitioners, and the variant table;
* :mod:`repro.analysis.reachability` — an AST walk of the VFS that
  extracts the errno set actually raisable from each syscall
  implementation and diffs it against the registry's declared output
  partitions;
* :mod:`repro.analysis.predict` — an AST walk of the workload
  generators with constant folding that upper-bounds the input
  partitions each suite can exercise, comparable against a real
  traced run;
* :mod:`repro.analysis.concurrency` — a lock model over the repo's
  concurrent subsystems feeding lock-order, guarded-field, and
  blocking-under-lock detectors.

All passes report through :class:`repro.analysis.findings.AnalysisReport`.
"""

from repro.analysis.concurrency import analyze_concurrency
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.predict import StaticPredictor, predict_repo
from repro.analysis.reachability import ReachabilityAnalysis, analyze_repo
from repro.analysis.speclint import lint_registry

__all__ = [
    "AnalysisReport",
    "Finding",
    "Severity",
    "lint_registry",
    "ReachabilityAnalysis",
    "analyze_repo",
    "StaticPredictor",
    "predict_repo",
    "analyze_concurrency",
]
