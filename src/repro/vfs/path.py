"""Path resolution: walking names to inodes with POSIX error semantics.

This is the part of the VFS where most of the "interesting" open(2)
errnos originate: ENOENT, ENOTDIR, ELOOP, ENAMETOOLONG, EACCES.  The
resolver walks one component at a time, following symlinks up to
SYMLOOP_MAX, and checks search (execute) permission on every directory
it traverses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vfs import constants
from repro.vfs.errors import (
    EACCES,
    EINVAL,
    ELOOP,
    ENAMETOOLONG,
    ENOENT,
    ENOTDIR,
    FsError,
)
from repro.vfs.inode import DirInode, Inode, InodeTable, SymlinkInode


@dataclass(frozen=True)
class Credentials:
    """The identity a syscall runs under; drives permission checks."""

    uid: int = 0
    gid: int = 0

    @property
    def is_superuser(self) -> bool:
        return self.uid == 0


#: Permission request bits for :func:`check_permission`.
MAY_READ = 0o4
MAY_WRITE = 0o2
MAY_EXEC = 0o1


def check_permission(inode: Inode, creds: Credentials, want: int) -> None:
    """Check classic UNIX rwx permission on *inode* for *creds*.

    Superuser bypasses read/write checks but still needs at least one
    execute bit set somewhere for MAY_EXEC on regular files (matching
    Linux); for directories root always passes.

    Raises:
        FsError(EACCES): permission denied.
    """
    if creds.is_superuser:
        if want & MAY_EXEC and inode.is_regular():
            if not inode.mode & (constants.S_IXUSR | constants.S_IXGRP | constants.S_IXOTH):
                raise FsError(EACCES, "no execute bits for root")
        return
    if creds.uid == inode.uid:
        granted = (inode.mode >> 6) & 0o7
    elif creds.gid == inode.gid:
        granted = (inode.mode >> 3) & 0o7
    else:
        granted = inode.mode & 0o7
    if want & ~granted:
        raise FsError(EACCES, f"want {want:o}, granted {granted:o}")


@dataclass
class ResolveResult:
    """Outcome of a path resolution.

    Attributes:
        parent: the directory inode containing the final component, or
            ``None`` when the path was just ``/``.
        name: the final component name ("" for the root).
        inode: the resolved inode, or ``None`` if the final component
            does not exist (parent resolution still succeeded — this is
            the O_CREAT case).
    """

    parent: DirInode | None
    name: str
    inode: Inode | None


class PathResolver:
    """Walks paths against an :class:`InodeTable` rooted at *root_ino*."""

    def __init__(self, table: InodeTable, root_ino: int) -> None:
        self._table = table
        self.root_ino = root_ino

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def split(path: str) -> list[str]:
        """Split a path into components, dropping empty segments."""
        return [part for part in path.split("/") if part]

    def _validate(self, path: str) -> None:
        if not path:
            raise FsError(ENOENT, "empty path")
        if len(path) > constants.PATH_MAX:
            raise FsError(ENAMETOOLONG, f"path length {len(path)}")
        for part in self.split(path):
            if len(part) > constants.NAME_MAX:
                raise FsError(ENAMETOOLONG, f"component length {len(part)}")
        if "\0" in path:
            raise FsError(EINVAL, "embedded NUL")

    # -- resolution ---------------------------------------------------------

    def resolve(
        self,
        path: str,
        cwd_ino: int,
        creds: Credentials,
        *,
        follow_final: bool = True,
        must_exist: bool = True,
        forbid_symlinks: bool = False,
        _depth: int = 0,
    ) -> ResolveResult:
        """Resolve *path* to an inode (or its would-be parent).

        Args:
            path: absolute or cwd-relative path.
            cwd_ino: inode number of the working directory for relative
                paths (or the dirfd directory for \\*at syscalls).
            creds: identity for traversal permission checks.
            follow_final: whether a symlink in the final component is
                followed (False for lstat/lsetxattr-style calls and
                O_NOFOLLOW).
            forbid_symlinks: reject *any* symlink encountered during
                resolution with ELOOP (openat2's RESOLVE_NO_SYMLINKS).
            must_exist: when False, a missing *final* component yields a
                result with ``inode=None`` instead of ENOENT (the
                O_CREAT / mkdir case).  Missing intermediate components
                always raise.

        Raises:
            FsError: ENOENT, ENOTDIR, ELOOP, ENAMETOOLONG, EACCES, EINVAL.
        """
        if _depth > constants.SYMLOOP_MAX:
            raise FsError(ELOOP, path)
        self._validate(path)

        if path.startswith("/"):
            current = self._table.get(self.root_ino)
        else:
            current = self._table.get(cwd_ino)

        parts = self.split(path)
        if not parts:
            # Path was "/" (or all slashes): the root itself.
            assert isinstance(current, DirInode)
            return ResolveResult(parent=None, name="", inode=current)

        symlink_budget = [constants.SYMLOOP_MAX - _depth]
        for index, name in enumerate(parts):
            is_final = index == len(parts) - 1
            if not isinstance(current, DirInode):
                raise FsError(ENOTDIR, "/".join(parts[:index]) or "/")
            check_permission(current, creds, MAY_EXEC)

            if name == ".":
                child: Inode | None = current
            elif name == "..":
                child = self._table.get(current.parent_ino)
            else:
                try:
                    child_ino = current.lookup(name)
                except FsError:
                    child = None
                else:
                    child = self._table.get(child_ino)

            if child is None:
                if is_final and not must_exist:
                    return ResolveResult(parent=current, name=name, inode=None)
                raise FsError(ENOENT, path)

            if isinstance(child, SymlinkInode) and forbid_symlinks:
                raise FsError(ELOOP, f"symlink {name!r} with RESOLVE_NO_SYMLINKS")

            if isinstance(child, SymlinkInode) and (not is_final or follow_final):
                child = self._follow_symlink(
                    child, current, creds, symlink_budget
                )
                # A final-component symlink whose target is missing:
                if child is None:
                    if is_final and not must_exist:
                        # POSIX: O_CREAT through a dangling symlink
                        # creates the *target*; model the common case by
                        # reporting the dangling target's parent.
                        raise FsError(ENOENT, path)
                    raise FsError(ENOENT, path)

            if is_final:
                parent = current if isinstance(current, DirInode) else None
                return ResolveResult(parent=parent, name=name, inode=child)
            current = child

        raise AssertionError("unreachable: loop always returns on final component")

    def _follow_symlink(
        self,
        link: SymlinkInode,
        link_dir: DirInode,
        creds: Credentials,
        budget: list[int],
    ) -> Inode | None:
        """Resolve a symlink inode to its target, consuming loop budget."""
        budget[0] -= 1
        if budget[0] < 0:
            raise FsError(ELOOP, link.target)
        try:
            result = self.resolve(
                link.target,
                link_dir.ino,
                creds,
                follow_final=True,
                must_exist=True,
                _depth=constants.SYMLOOP_MAX - budget[0],
            )
        except FsError as exc:
            if exc.errno == ENOENT:
                return None
            raise
        return result.inode

    # -- convenience --------------------------------------------------------

    def lookup_inode(
        self,
        path: str,
        cwd_ino: int,
        creds: Credentials,
        *,
        follow_final: bool = True,
    ) -> Inode:
        """Resolve *path* and return the inode; ENOENT if missing."""
        result = self.resolve(path, cwd_ino, creds, follow_final=follow_final)
        assert result.inode is not None  # must_exist=True guarantees this
        return result.inode
