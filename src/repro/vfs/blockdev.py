"""Simulated block device: capacity accounting behind the VFS.

The device does not store bytes itself (file content lives in the
inodes); it models *allocation*, which is what drives the ENOSPC and
EDQUOT behaviour the paper's output-coverage metric cares about.  It
also exposes a write-ahead journal of block updates so the crash
simulator (:mod:`repro.vfs.crash`) can truncate in-flight state at an
arbitrary persistence point, the way CrashMonkey's crash-consistency
harness does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vfs import constants
from repro.vfs.errors import ENOSPC, FsError


@dataclass
class BlockDeviceStats:
    """Point-in-time allocation statistics for a :class:`BlockDevice`."""

    block_size: int
    total_blocks: int
    allocated_blocks: int

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self.allocated_blocks

    @property
    def total_bytes(self) -> int:
        return self.total_blocks * self.block_size

    @property
    def free_bytes(self) -> int:
        return self.free_blocks * self.block_size


class BlockDevice:
    """Fixed-capacity allocator with a persistence barrier.

    Allocation is tracked per *owner* (an inode number) so the device
    can release everything an inode held when it is truncated or
    removed.  The pending/persisted split models a volatile page cache
    over durable storage: ``sync`` moves pending allocations into the
    persisted set, and :meth:`crash` discards anything not persisted.
    """

    def __init__(
        self,
        total_blocks: int = constants.DEFAULT_DEVICE_BLOCKS,
        block_size: int = constants.DEFAULT_BLOCK_SIZE,
    ) -> None:
        if total_blocks <= 0:
            raise ValueError("total_blocks must be positive")
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        self.block_size = block_size
        self.total_blocks = total_blocks
        #: blocks currently allocated, per owner inode number
        self._allocated: dict[int, int] = {}
        #: blocks durably persisted, per owner inode number
        self._persisted: dict[int, int] = {}
        #: blocks withheld from allocation (Ext4's reserved-blocks
        #: mechanism; test harnesses use it to force ENOSPC cheaply)
        self.reserved_blocks = 0

    # -- queries ----------------------------------------------------------

    @property
    def allocated_blocks(self) -> int:
        """Total blocks currently allocated (pending + persisted)."""
        return sum(self._allocated.values())

    @property
    def free_blocks(self) -> int:
        return max(0, self.total_blocks - self.allocated_blocks - self.reserved_blocks)

    def reserve_all_free(self) -> int:
        """Withhold every free block (forces ENOSPC); returns the count."""
        self.reserved_blocks += self.free_blocks
        return self.reserved_blocks

    def release_reserved(self) -> None:
        """Return all withheld blocks to the free pool."""
        self.reserved_blocks = 0

    def blocks_for(self, nbytes: int) -> int:
        """Number of blocks needed to hold *nbytes* of data."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.block_size)

    def owner_blocks(self, owner: int) -> int:
        """Blocks currently held by *owner* (an inode number)."""
        return self._allocated.get(owner, 0)

    def stats(self) -> BlockDeviceStats:
        return BlockDeviceStats(
            block_size=self.block_size,
            total_blocks=self.total_blocks,
            allocated_blocks=self.allocated_blocks,
        )

    # -- allocation -------------------------------------------------------

    def resize_owner(self, owner: int, new_bytes: int) -> None:
        """Grow or shrink *owner*'s allocation to cover *new_bytes*.

        Raises:
            FsError(ENOSPC): if growth would exceed device capacity.
        """
        needed = self.blocks_for(new_bytes)
        current = self._allocated.get(owner, 0)
        delta = needed - current
        if delta > 0 and delta > self.free_blocks:
            raise FsError(ENOSPC, f"need {delta} blocks, {self.free_blocks} free")
        if needed:
            self._allocated[owner] = needed
        else:
            self._allocated.pop(owner, None)

    def release_owner(self, owner: int) -> None:
        """Free every block held by *owner* (inode removal)."""
        self._allocated.pop(owner, None)
        self._persisted.pop(owner, None)

    # -- persistence / crash ----------------------------------------------

    def sync(self) -> None:
        """Persist all pending allocations (fsync/sync barrier)."""
        self._persisted = dict(self._allocated)

    def sync_owner(self, owner: int) -> None:
        """Persist one owner's allocation (per-file fsync)."""
        blocks = self._allocated.get(owner)
        if blocks is None:
            self._persisted.pop(owner, None)
        else:
            self._persisted[owner] = blocks

    def crash(self) -> None:
        """Discard all allocations that were never persisted."""
        self._allocated = dict(self._persisted)
