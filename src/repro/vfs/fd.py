"""Open file descriptions and the per-process descriptor table.

Mirrors the kernel's split between the *file description* (offset,
flags, inode reference — shared across dup'ed descriptors) and the
*descriptor table* (small integers per process).  EBADF, EMFILE, and
ENFILE all originate here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vfs import constants
from repro.vfs.errors import EBADF, EMFILE, ENFILE, FsError
from repro.vfs.inode import Inode
from repro.vfs.path import Credentials


@dataclass
class OpenFileDescription:
    """One open(2) result: inode + position + the flags it was opened with."""

    inode: Inode
    flags: int
    offset: int = 0
    refcount: int = 1

    @property
    def access_mode(self) -> int:
        return self.flags & constants.O_ACCMODE

    def readable(self) -> bool:
        # O_PATH descriptors allow no I/O at all.
        if self.flags & constants.O_PATH:
            return False
        return self.access_mode in (constants.O_RDONLY, constants.O_RDWR)

    def writable(self) -> bool:
        if self.flags & constants.O_PATH:
            return False
        return self.access_mode in (constants.O_WRONLY, constants.O_RDWR)

    def append_mode(self) -> bool:
        return bool(self.flags & constants.O_APPEND)


class SystemFileTable:
    """System-wide open-file accounting (the file-max limit → ENFILE)."""

    def __init__(self, max_open: int = constants.DEFAULT_MAX_OPEN_FILES) -> None:
        self.max_open = max_open
        self.open_count = 0

    def acquire(self) -> None:
        if self.open_count >= self.max_open:
            raise FsError(ENFILE, f"system file table full ({self.max_open})")
        self.open_count += 1

    def release(self) -> None:
        if self.open_count > 0:
            self.open_count -= 1


class FdTable:
    """Per-process descriptor table: fd int -> OpenFileDescription."""

    def __init__(
        self,
        system_table: SystemFileTable,
        max_fds: int = constants.DEFAULT_MAX_FDS,
    ) -> None:
        self._system = system_table
        self.max_fds = max_fds
        self._fds: dict[int, OpenFileDescription] = {}

    def __len__(self) -> int:
        return len(self._fds)

    def __contains__(self, fd: int) -> bool:
        return fd in self._fds

    def _lowest_free(self) -> int:
        fd = 0
        while fd in self._fds:
            fd += 1
        return fd

    def install(self, ofd: OpenFileDescription) -> int:
        """Install *ofd* at the lowest free fd number.

        Raises:
            FsError(EMFILE): the process fd limit is reached.
            FsError(ENFILE): the system-wide table is full.
        """
        if len(self._fds) >= self.max_fds:
            raise FsError(EMFILE, f"process fd limit {self.max_fds}")
        self._system.acquire()
        fd = self._lowest_free()
        self._fds[fd] = ofd
        return fd

    def install_at(self, ofd: OpenFileDescription, fd: int) -> int:
        """Install *ofd* at a specific number (dup2 semantics).

        An existing descriptor at *fd* is closed first.

        Raises:
            FsError(EBADF): *fd* is negative or beyond the limit.
            FsError(ENFILE): the system-wide table is full.
        """
        if fd < 0 or fd >= self.max_fds:
            raise FsError(EBADF, f"dup2 target {fd}")
        if fd in self._fds:
            self.close(fd)
        self._system.acquire()
        self._fds[fd] = ofd
        return fd

    def get(self, fd: int) -> OpenFileDescription:
        """Look up *fd*.

        Raises:
            FsError(EBADF): not an open descriptor.
        """
        if fd not in self._fds:
            raise FsError(EBADF, f"fd {fd}")
        return self._fds[fd]

    def close(self, fd: int) -> None:
        """Close *fd*.

        Raises:
            FsError(EBADF): not an open descriptor.
        """
        if fd not in self._fds:
            raise FsError(EBADF, f"fd {fd}")
        ofd = self._fds.pop(fd)
        ofd.refcount -= 1
        self._system.release()

    def close_all(self) -> None:
        for fd in list(self._fds):
            self.close(fd)

    def open_fds(self) -> list[int]:
        return sorted(self._fds)


@dataclass
class Process:
    """The execution context syscalls run under: creds, cwd, fd table."""

    creds: Credentials
    fd_table: FdTable
    cwd_ino: int
    umask: int = 0o022
    pid: int = 1
    comm: str = "tester"
