"""Errno catalogue and the exception type used throughout the VFS.

The in-memory file system mirrors the Linux syscall boundary: every
syscall either succeeds (returning a non-negative value) or fails with a
POSIX errno.  Internally, failures propagate as :class:`FsError`
exceptions carrying the errno; the syscall layer in
:mod:`repro.vfs.syscalls` catches them and converts to the
``(retval, errno)`` convention that the tracer records.

The errno values here follow the Linux/x86-64 numbering so that traces
produced by this VFS are byte-compatible with traces captured from a
real kernel by LTTng or strace.
"""

from __future__ import annotations

import errno as _errno

# Re-export the standard numbering under short names.  Only the errnos
# that file-system syscalls can legitimately return are listed; this is
# the same set that appears on the x-axis of the paper's Figure 4 (the
# output-coverage plot for ``open``), plus a few needed by other
# syscalls (e.g. ESPIPE for lseek, ERANGE/ENODATA for xattrs).
EPERM = _errno.EPERM
ENOENT = _errno.ENOENT
EINTR = _errno.EINTR
EIO = _errno.EIO
ENXIO = _errno.ENXIO
E2BIG = _errno.E2BIG
EBADF = _errno.EBADF
EAGAIN = _errno.EAGAIN
ENOMEM = _errno.ENOMEM
EACCES = _errno.EACCES
EFAULT = _errno.EFAULT
ENOTBLK = _errno.ENOTBLK
EBUSY = _errno.EBUSY
EEXIST = _errno.EEXIST
EXDEV = _errno.EXDEV
ENODEV = _errno.ENODEV
ENOTDIR = _errno.ENOTDIR
EISDIR = _errno.EISDIR
EINVAL = _errno.EINVAL
ENFILE = _errno.ENFILE
EMFILE = _errno.EMFILE
ETXTBSY = _errno.ETXTBSY
EFBIG = _errno.EFBIG
ENOSPC = _errno.ENOSPC
ESPIPE = _errno.ESPIPE
EROFS = _errno.EROFS
EMLINK = _errno.EMLINK
EPIPE = _errno.EPIPE
ERANGE = _errno.ERANGE
ENAMETOOLONG = _errno.ENAMETOOLONG
ELOOP = _errno.ELOOP
EOVERFLOW = _errno.EOVERFLOW
EOPNOTSUPP = _errno.EOPNOTSUPP
EDQUOT = _errno.EDQUOT
ENODATA = _errno.ENODATA
ENOSYS = _errno.ENOSYS
ENOTEMPTY = _errno.ENOTEMPTY

#: Errno number -> symbolic name (e.g. 2 -> "ENOENT").
ERRNO_NAMES: dict[int, str] = dict(_errno.errorcode)

#: Symbolic name -> errno number (e.g. "ENOENT" -> 2).  Aliases that
#: share a number (EOPNOTSUPP/ENOTSUP, EAGAIN/EWOULDBLOCK) are all
#: present so parsers accept either spelling; :func:`errno_name` emits
#: the canonical one from ``errno.errorcode``.
ERRNO_BY_NAME: dict[str, int] = {name: num for num, name in _errno.errorcode.items()}
ERRNO_BY_NAME.setdefault("EOPNOTSUPP", _errno.EOPNOTSUPP)
ERRNO_BY_NAME.setdefault("ENOTSUP", _errno.ENOTSUP)
ERRNO_BY_NAME.setdefault("EWOULDBLOCK", _errno.EWOULDBLOCK)
ERRNO_BY_NAME.setdefault("EDEADLOCK", _errno.EDEADLK)


def errno_name(err: int) -> str:
    """Return the symbolic name for *err* (e.g. ``2`` -> ``"ENOENT"``).

    Unknown numbers render as ``"E?<num>"`` so that malformed traces
    remain debuggable rather than raising.
    """
    return ERRNO_NAMES.get(err, f"E?{err}")


def errno_from_name(name: str) -> int:
    """Return the errno number for a symbolic *name* (e.g. ``"ENOENT"``).

    Raises:
        KeyError: if *name* is not a recognized errno symbol.
    """
    return ERRNO_BY_NAME[name]


class FsError(Exception):
    """A file-system operation failed with a POSIX errno.

    Attributes:
        errno: the numeric errno (Linux numbering).
        message: optional human-readable context.
    """

    def __init__(self, err: int, message: str = "") -> None:
        self.errno = err
        self.message = message
        super().__init__(f"{errno_name(err)}: {message}" if message else errno_name(err))

    @property
    def name(self) -> str:
        """Symbolic errno name, e.g. ``"ENOENT"``."""
        return errno_name(self.errno)
