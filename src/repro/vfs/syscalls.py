"""The traced syscall boundary of the in-memory VFS.

This module implements the 27 file-system syscalls IOCov traces —
11 base calls (open, read, write, lseek, truncate, mkdir, chmod,
close, chdir, setxattr, getxattr) and their variants — plus the
auxiliary calls real testers issue (unlink, rmdir, rename, symlink,
stat, fsync, sync), which show up in raw traces and exercise the trace
filter and the "untracked syscall" path of the analyzer.

Every call follows the kernel convention: the return value is
non-negative on success and ``-errno`` on failure.  Results are wrapped
in :class:`SyscallResult` so read-like calls can also hand back data.
Each invocation emits one :class:`~repro.trace.events.SyscallEvent` to
all subscribed listeners — this is the LTTng tracepoint equivalent.

User-buffer faults (EFAULT) are modelled by the ``buf_faulty`` keyword:
a real tester cannot pass a Python "bad pointer", so workloads that
want to exercise the EFAULT output partition arm it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.trace.events import SyscallEvent, make_event
from repro.vfs import constants
from repro.vfs.errors import (
    E2BIG,
    EBADF,
    EBUSY,
    EEXIST,
    EFAULT,
    EFBIG,
    EINVAL,
    EISDIR,
    ELOOP,
    ENAMETOOLONG,
    ENOSPC,
    ENOTDIR,
    ENOTEMPTY,
    ENXIO,
    EOPNOTSUPP,
    EOVERFLOW,
    EPERM,
    FsError,
)
from repro.vfs.faults import FaultInjector
from repro.vfs.fd import FdTable, OpenFileDescription, Process, SystemFileTable
from repro.vfs.filesystem import FileSystem
from repro.vfs.inode import DirInode, FileInode, Inode, SymlinkInode
from repro.vfs.path import MAY_EXEC, MAY_READ, MAY_WRITE, Credentials, check_permission


@dataclass
class SyscallResult:
    """Outcome of one syscall.

    Attributes:
        retval: kernel-style return value (``-errno`` on failure).
        errno: positive errno on failure, else 0.
        data: payload for read-like calls (read/pread64/readv/getxattr).
    """

    retval: int
    errno: int = 0
    data: bytes | None = None

    @property
    def ok(self) -> bool:
        return self.retval >= 0

    def __int__(self) -> int:
        return self.retval


Listener = Callable[[SyscallEvent], None]

#: xattr namespaces the VFS accepts (others yield EOPNOTSUPP).
_XATTR_NAMESPACES = ("user.", "trusted.", "security.", "system.")

#: openat2 resolve bits we understand; unknown bits are EINVAL.
_KNOWN_RESOLVE_FLAGS = (
    constants.RESOLVE_NO_XDEV
    | constants.RESOLVE_NO_MAGICLINKS
    | constants.RESOLVE_NO_SYMLINKS
    | constants.RESOLVE_BENEATH
    | constants.RESOLVE_IN_ROOT
)


class SyscallInterface:
    """Executes syscalls for one process against one file system.

    Args:
        fs: the mounted file system.
        process: execution context; a default root-owned process with
            cwd at the FS root is created when omitted.
        faults: fault injector consulted at every syscall entry.
    """

    def __init__(
        self,
        fs: FileSystem,
        process: Process | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.fs = fs
        if process is None:
            system_table = SystemFileTable()
            process = Process(
                creds=Credentials(uid=0, gid=0),
                fd_table=FdTable(system_table),
                cwd_ino=fs.root_ino,
            )
        self.process = process
        self.faults = faults or FaultInjector()
        self._listeners: list[Listener] = []
        self.call_count = 0

    # ------------------------------------------------------------------
    # tracing plumbing
    # ------------------------------------------------------------------

    def subscribe(self, listener: Listener) -> None:
        """Attach a tracepoint listener (the LTTng recorder)."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    def _emit(self, name: str, args: dict[str, Any], result: SyscallResult) -> None:
        if not self._listeners:
            return
        event = make_event(
            name,
            args,
            result.retval,
            result.errno,
            pid=self.process.pid,
            comm=self.process.comm,
            timestamp=self.fs.tick(),
        )
        for listener in self._listeners:
            listener(event)

    def _run(
        self,
        name: str,
        args: dict[str, Any],
        body: Callable[[], int | tuple[int, bytes | None]],
    ) -> SyscallResult:
        """Run one syscall body with fault check, errno capture, tracing."""
        self.call_count += 1
        try:
            self.faults.check(name)
            out = body()
            if isinstance(out, tuple):
                retval, data = out
            else:
                retval, data = out, None
            result = SyscallResult(retval=retval, data=data)
        except FsError as exc:
            result = SyscallResult(retval=-exc.errno, errno=exc.errno)
        self._emit(name, args, result)
        return result

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    @property
    def creds(self) -> Credentials:
        return self.process.creds

    def _require_path(self, path: str | None) -> str:
        """Model a bad userspace pointer for path arguments."""
        if path is None:
            raise FsError(EFAULT, "NULL path")
        return path

    def _dirfd_ino(self, dirfd: int) -> int:
        """Translate an \\*at dirfd to a starting inode number."""
        if dirfd == constants.AT_FDCWD:
            return self.process.cwd_ino
        ofd = self.process.fd_table.get(dirfd)
        if not ofd.inode.is_directory():
            raise FsError(ENOTDIR, f"dirfd {dirfd}")
        return ofd.inode.ino

    def _resolve(
        self,
        path: str,
        *,
        dirfd: int = constants.AT_FDCWD,
        follow_final: bool = True,
        must_exist: bool = True,
        forbid_symlinks: bool = False,
    ):
        return self.fs.resolver.resolve(
            path,
            self._dirfd_ino(dirfd),
            self.creds,
            follow_final=follow_final,
            must_exist=must_exist,
            forbid_symlinks=forbid_symlinks,
        )

    def _writable_file_ofd(self, fd: int) -> OpenFileDescription:
        ofd = self.process.fd_table.get(fd)
        if not ofd.writable():
            raise FsError(EBADF, f"fd {fd} not open for writing")
        return ofd

    def _readable_file_ofd(self, fd: int) -> OpenFileDescription:
        ofd = self.process.fd_table.get(fd)
        if not ofd.readable():
            raise FsError(EBADF, f"fd {fd} not open for reading")
        return ofd

    def _max_write_bytes(self, inode: FileInode, end_wanted: int) -> int:
        """Largest file size the device and quota allow for *inode*.

        Used to produce POSIX short writes: when the full request does
        not fit but a prefix does, ``write`` returns the prefix length
        instead of ENOSPC.
        """
        device = self.fs.device
        budget_blocks = device.owner_blocks(inode.ino) + device.free_blocks
        limit = budget_blocks * device.block_size
        quota = self.fs._quota_for(inode.uid)
        if quota is not None:
            quota_blocks = (
                quota.block_limit - quota.blocks_used + device.owner_blocks(inode.ino)
            )
            limit = min(limit, max(0, quota_blocks) * device.block_size)
        return min(limit, self.fs.max_file_size, end_wanted)

    # ------------------------------------------------------------------
    # open family
    # ------------------------------------------------------------------

    def open(self, path: str | None, flags: int, mode: int = 0o644) -> SyscallResult:
        """open(2)."""
        args = {"pathname": path, "flags": flags, "mode": mode}
        return self._run("open", args, lambda: self._do_open(path, flags, mode))

    def creat(self, path: str | None, mode: int = 0o644) -> SyscallResult:
        """creat(2): equivalent to open with O_CREAT|O_WRONLY|O_TRUNC."""
        flags = constants.O_CREAT | constants.O_WRONLY | constants.O_TRUNC
        args = {"pathname": path, "mode": mode}
        return self._run("creat", args, lambda: self._do_open(path, flags, mode))

    def openat(
        self, dirfd: int, path: str | None, flags: int, mode: int = 0o644
    ) -> SyscallResult:
        """openat(2)."""
        args = {"dfd": dirfd, "pathname": path, "flags": flags, "mode": mode}
        return self._run(
            "openat", args, lambda: self._do_open(path, flags, mode, dirfd=dirfd)
        )

    def openat2(
        self,
        dirfd: int,
        path: str | None,
        flags: int,
        mode: int = 0o644,
        resolve: int = 0,
    ) -> SyscallResult:
        """openat2(2) with a struct open_how {flags, mode, resolve}."""
        args = {
            "dfd": dirfd,
            "pathname": path,
            "flags": flags,
            "mode": mode,
            "resolve": resolve,
        }

        def body() -> int:
            if resolve & ~_KNOWN_RESOLVE_FLAGS:
                raise FsError(EINVAL, f"unknown resolve bits {resolve:#x}")
            forbid = bool(resolve & constants.RESOLVE_NO_SYMLINKS)
            return self._do_open(
                path, flags, mode, dirfd=dirfd, forbid_symlinks=forbid
            )

        return self._run("openat2", args, body)

    def _do_open(
        self,
        path: str | None,
        flags: int,
        mode: int,
        *,
        dirfd: int = constants.AT_FDCWD,
        forbid_symlinks: bool = False,
    ) -> int:
        path = self._require_path(path)
        access = flags & constants.O_ACCMODE
        if access == constants.O_ACCMODE:
            raise FsError(EINVAL, "invalid access mode O_RDONLY|O_WRONLY|O_RDWR")
        wants_write = access in (constants.O_WRONLY, constants.O_RDWR)
        is_tmpfile = (flags & constants.O_TMPFILE) == constants.O_TMPFILE

        if is_tmpfile and not wants_write:
            raise FsError(EINVAL, "O_TMPFILE requires write access")

        if wants_write or flags & constants.O_TRUNC or is_tmpfile:
            self.fs.require_writable()

        follow_final = not flags & constants.O_NOFOLLOW
        creating = bool(flags & constants.O_CREAT) and not is_tmpfile

        result = self._resolve(
            path,
            dirfd=dirfd,
            follow_final=follow_final,
            must_exist=not creating,
            forbid_symlinks=forbid_symlinks,
        )
        inode = result.inode
        just_created = False

        if creating and inode is not None and flags & constants.O_EXCL:
            raise FsError(EEXIST, path)

        if inode is None:
            # O_CREAT path: make the file in the resolved parent.
            assert result.parent is not None
            self.fs.require_writable()
            check_permission(result.parent, self.creds, MAY_WRITE | MAY_EXEC)
            self.fs.check_creation_allowed(self.creds.uid)
            effective_mode = mode & ~self.process.umask & 0o7777
            inode = self.fs.inodes.new_file(
                mode=effective_mode, uid=self.creds.uid, gid=self.creds.gid
            )
            result.parent.link(result.name, inode.ino)
            just_created = True
        elif isinstance(inode, SymlinkInode):
            # Unfollowed final symlink (O_NOFOLLOW without O_PATH).
            if not flags & constants.O_PATH:
                raise FsError(ELOOP, path)
        elif inode.is_directory():
            if is_tmpfile:
                check_permission(inode, self.creds, MAY_WRITE | MAY_EXEC)
                tmp = self.fs.inodes.new_file(
                    mode=mode & ~self.process.umask & 0o7777,
                    uid=self.creds.uid,
                    gid=self.creds.gid,
                )
                tmp.nlink = 0  # anonymous until linked
                inode = tmp
            elif wants_write:
                raise FsError(EISDIR, path)
        elif flags & constants.O_DIRECTORY:
            raise FsError(ENOTDIR, path)

        if not flags & constants.O_PATH and not just_created:
            # Linux skips the permission check on the file it just
            # created: creat(path, 0444) hands back a writable fd.
            want = 0
            if access in (constants.O_RDONLY, constants.O_RDWR):
                want |= MAY_READ
            if wants_write:
                want |= MAY_WRITE
            if want and not isinstance(inode, SymlinkInode):
                check_permission(inode, self.creds, want)

        if (
            isinstance(inode, FileInode)
            and inode.size > 2**31 - 1
            and not flags & constants.O_LARGEFILE
            and not flags & constants.O_PATH
        ):
            # generic_file_open(): files over 2 GiB need O_LARGEFILE
            # (the check a real 2022 XFS fix restored).
            raise FsError(EOVERFLOW, f"size {inode.size} without O_LARGEFILE")

        if wants_write and isinstance(inode, FileInode):
            self.fs.require_not_text_busy(inode)

        if (
            flags & constants.O_TRUNC
            and isinstance(inode, FileInode)
            and not flags & constants.O_PATH
            and wants_write
        ):
            self.fs.charge_file_size(inode, 0)
            inode.truncate_to(0)
            inode.times.mtime = self.fs.tick()

        ofd = OpenFileDescription(inode=inode, flags=flags)
        if flags & constants.O_APPEND and isinstance(inode, FileInode):
            ofd.offset = inode.size
        return self.process.fd_table.install(ofd)

    # ------------------------------------------------------------------
    # close
    # ------------------------------------------------------------------

    def close(self, fd: int) -> SyscallResult:
        """close(2)."""

        def body() -> int:
            self.process.fd_table.close(fd)
            return 0

        return self._run("close", {"fd": fd}, body)

    # ------------------------------------------------------------------
    # read family
    # ------------------------------------------------------------------

    def read(self, fd: int, count: int, *, buf_faulty: bool = False) -> SyscallResult:
        """read(2): returns up to *count* bytes from the fd offset."""
        args = {"fd": fd, "count": count}
        return self._run(
            "read", args, lambda: self._do_read(fd, count, None, buf_faulty)
        )

    def pread64(
        self, fd: int, count: int, offset: int, *, buf_faulty: bool = False
    ) -> SyscallResult:
        """pread64(2): positional read, fd offset unchanged."""
        args = {"fd": fd, "count": count, "pos": offset}
        return self._run(
            "pread64", args, lambda: self._do_read(fd, count, offset, buf_faulty)
        )

    def readv(
        self, fd: int, iov_lens: list[int], *, buf_faulty: bool = False
    ) -> SyscallResult:
        """readv(2): vectored read; *iov_lens* are the iovec buffer sizes."""
        args = {"fd": fd, "vlen": len(iov_lens), "count": sum(iov_lens)}

        def body() -> tuple[int, bytes | None]:
            if len(iov_lens) > constants.IOV_MAX:
                raise FsError(EINVAL, f"iovcnt {len(iov_lens)} > IOV_MAX")
            if any(length < 0 for length in iov_lens):
                raise FsError(EINVAL, "negative iov_len")
            total = sum(iov_lens)
            if total > constants.MAX_RW_COUNT:
                raise FsError(EINVAL, "iov total exceeds MAX_RW_COUNT")
            return self._read_common(fd, total, None, buf_faulty)

        return self._run("readv", args, body)

    def _do_read(
        self, fd: int, count: int, offset: int | None, buf_faulty: bool
    ) -> tuple[int, bytes | None]:
        if count < 0:
            raise FsError(EINVAL, f"count {count}")
        count = min(count, constants.MAX_RW_COUNT)
        return self._read_common(fd, count, offset, buf_faulty)

    def _read_common(
        self, fd: int, count: int, offset: int | None, buf_faulty: bool
    ) -> tuple[int, bytes | None]:
        ofd = self._readable_file_ofd(fd)
        if offset is not None and offset < 0:
            raise FsError(EINVAL, f"offset {offset}")
        inode = ofd.inode
        if inode.is_directory():
            raise FsError(EISDIR, "read on directory")
        if not isinstance(inode, FileInode):
            raise FsError(EINVAL, "read on non-regular file")
        if buf_faulty:
            raise FsError(EFAULT, "bad user buffer")
        if count == 0:
            return 0, b""
        pos = ofd.offset if offset is None else offset
        data = inode.read_at(pos, count)
        if offset is None:
            ofd.offset = pos + len(data)
        inode.times.atime = self.fs.tick()
        return len(data), data

    # ------------------------------------------------------------------
    # write family
    # ------------------------------------------------------------------

    def write(
        self,
        fd: int,
        data: bytes | None = None,
        count: int | None = None,
        *,
        buf_faulty: bool = False,
    ) -> SyscallResult:
        """write(2).

        Either *data* (bytes to write) or *count* (write that many
        generated bytes) must be given; workload generators usually pass
        just a count, the way a tracer only sees the requested size.
        """
        data, count = self._coerce_write_buffer(data, count)
        args = {"fd": fd, "count": count}
        return self._run(
            "write", args, lambda: self._do_write(fd, data, count, None, buf_faulty)
        )

    def pwrite64(
        self,
        fd: int,
        data: bytes | None = None,
        count: int | None = None,
        offset: int = 0,
        *,
        buf_faulty: bool = False,
    ) -> SyscallResult:
        """pwrite64(2): positional write, fd offset unchanged."""
        data, count = self._coerce_write_buffer(data, count)
        args = {"fd": fd, "count": count, "pos": offset}
        return self._run(
            "pwrite64",
            args,
            lambda: self._do_write(fd, data, count, offset, buf_faulty),
        )

    def writev(
        self, fd: int, buffers: list[bytes], *, buf_faulty: bool = False
    ) -> SyscallResult:
        """writev(2): vectored write."""
        args = {"fd": fd, "vlen": len(buffers), "count": sum(len(b) for b in buffers)}

        def body() -> int:
            if len(buffers) > constants.IOV_MAX:
                raise FsError(EINVAL, f"iovcnt {len(buffers)} > IOV_MAX")
            blob = b"".join(buffers)
            if len(blob) > constants.MAX_RW_COUNT:
                raise FsError(EINVAL, "iov total exceeds MAX_RW_COUNT")
            retval, _ = self._write_common(fd, blob, len(blob), None, buf_faulty)
            return retval

        return self._run("writev", args, body)

    @staticmethod
    def _coerce_write_buffer(
        data: bytes | None, count: int | None
    ) -> tuple[bytes | None, int]:
        """Normalize the (data, count) calling conventions."""
        if data is None and count is None:
            raise ValueError("write needs data or count")
        if count is None:
            assert data is not None
            return data, len(data)
        if count < 0:
            # Let the syscall body report EINVAL; keep a placeholder.
            return b"", count
        if data is None:
            # Count-only write: payload is all zeros, materialized
            # lazily in the inode (no giant temporary for huge counts).
            return None, count
        return data[:count].ljust(count, b"\0"), count

    def _do_write(
        self,
        fd: int,
        data: bytes | None,
        count: int,
        offset: int | None,
        buf_faulty: bool,
    ) -> int:
        if count < 0:
            raise FsError(EINVAL, f"count {count}")
        if count > constants.MAX_RW_COUNT:
            count = constants.MAX_RW_COUNT
            if data is not None:
                data = data[:count]
        retval, _ = self._write_common(fd, data, count, offset, buf_faulty)
        return retval

    def _write_common(
        self,
        fd: int,
        data: bytes | None,
        count: int,
        offset: int | None,
        buf_faulty: bool,
    ) -> tuple[int, bytes | None]:
        ofd = self._writable_file_ofd(fd)
        if offset is not None and offset < 0:
            raise FsError(EINVAL, f"offset {offset}")
        self.fs.require_writable()
        inode = ofd.inode
        if not isinstance(inode, FileInode):
            raise FsError(EINVAL, "write on non-regular file")
        if buf_faulty:
            raise FsError(EFAULT, "bad user buffer")
        if count == 0:
            return 0, None

        if offset is None:
            pos = inode.size if ofd.append_mode() else ofd.offset
        else:
            pos = offset
        end_wanted = pos + count
        if pos >= self.fs.max_file_size:
            # Writing at or past the file-size limit is EFBIG.
            raise FsError(EFBIG, f"offset {pos} at file size limit")

        allowed_end = self._max_write_bytes(inode, end_wanted)
        writable = allowed_end - pos
        if writable <= 0:
            raise FsError(ENOSPC, "no space for write")
        nbytes = min(count, writable)
        new_size = max(inode.size, pos + nbytes)
        new_materialized = max(inode.materialized_bytes, pos + nbytes)
        self.fs.charge_file_size(inode, new_size, materialized=new_materialized)
        if data is None:
            written = inode.write_zeros_at(pos, nbytes)
        else:
            written = inode.write_at(pos, data[:nbytes])
        if offset is None:
            ofd.offset = pos + written
        inode.times.mtime = self.fs.tick()
        return written, None

    # ------------------------------------------------------------------
    # lseek
    # ------------------------------------------------------------------

    def lseek(self, fd: int, offset: int, whence: int) -> SyscallResult:
        """lseek(2)."""
        args = {"fd": fd, "offset": offset, "whence": whence}

        def body() -> int:
            ofd = self.process.fd_table.get(fd)
            inode = ofd.inode
            size = inode.size if isinstance(inode, FileInode) else 0
            if whence == constants.SEEK_SET:
                new = offset
            elif whence == constants.SEEK_CUR:
                new = ofd.offset + offset
            elif whence == constants.SEEK_END:
                new = size + offset
            elif whence in (constants.SEEK_DATA, constants.SEEK_HOLE):
                if not isinstance(inode, FileInode):
                    raise FsError(EINVAL, "SEEK_DATA/HOLE on non-file")
                if offset < 0 or offset >= size:
                    raise FsError(ENXIO, f"offset {offset} beyond size {size}")
                # No-hole model: data everywhere, one hole at EOF.
                new = offset if whence == constants.SEEK_DATA else size
            else:
                raise FsError(EINVAL, f"whence {whence}")
            if new < 0:
                raise FsError(EINVAL, f"resulting offset {new}")
            if new > constants.MAX_OFFSET:
                raise FsError(EOVERFLOW, f"resulting offset {new}")
            ofd.offset = new
            return new

        return self._run("lseek", args, body)

    # ------------------------------------------------------------------
    # truncate family
    # ------------------------------------------------------------------

    def truncate(self, path: str | None, length: int) -> SyscallResult:
        """truncate(2)."""
        args = {"path": path, "length": length}

        def body() -> int:
            real_path = self._require_path(path)
            if length < 0:
                raise FsError(EINVAL, f"length {length}")
            self.fs.require_writable()
            inode = self.fs.resolver.lookup_inode(
                real_path, self.process.cwd_ino, self.creds
            )
            if inode.is_directory():
                raise FsError(EISDIR, real_path)
            if not isinstance(inode, FileInode):
                raise FsError(EINVAL, real_path)
            check_permission(inode, self.creds, MAY_WRITE)
            self.fs.require_not_text_busy(inode)
            self._truncate_inode(inode, length)
            return 0

        return self._run("truncate", args, body)

    def ftruncate(self, fd: int, length: int) -> SyscallResult:
        """ftruncate(2)."""
        args = {"fd": fd, "length": length}

        def body() -> int:
            if length < 0:
                raise FsError(EINVAL, f"length {length}")
            ofd = self.process.fd_table.get(fd)
            if not ofd.writable():
                raise FsError(EINVAL, f"fd {fd} not open for writing")
            self.fs.require_writable()
            inode = ofd.inode
            if not isinstance(inode, FileInode):
                raise FsError(EINVAL, "ftruncate on non-regular file")
            self._truncate_inode(inode, length)
            return 0

        return self._run("ftruncate", args, body)

    def _truncate_inode(self, inode: FileInode, length: int) -> None:
        # Truncate growth is a sparse hole: nothing new materializes.
        materialized = min(length, inode.materialized_bytes)
        self.fs.charge_file_size(inode, length, materialized=materialized)
        inode.truncate_to(length)
        inode.times.mtime = self.fs.tick()

    # ------------------------------------------------------------------
    # mkdir family
    # ------------------------------------------------------------------

    def mkdir(self, path: str | None, mode: int = 0o755) -> SyscallResult:
        """mkdir(2)."""
        args = {"pathname": path, "mode": mode}
        return self._run("mkdir", args, lambda: self._do_mkdir(path, mode))

    def mkdirat(self, dirfd: int, path: str | None, mode: int = 0o755) -> SyscallResult:
        """mkdirat(2)."""
        args = {"dfd": dirfd, "pathname": path, "mode": mode}
        return self._run(
            "mkdirat", args, lambda: self._do_mkdir(path, mode, dirfd=dirfd)
        )

    def _do_mkdir(
        self, path: str | None, mode: int, *, dirfd: int = constants.AT_FDCWD
    ) -> int:
        real_path = self._require_path(path)
        self.fs.require_writable()
        result = self._resolve(real_path, dirfd=dirfd, must_exist=False)
        if result.inode is not None:
            raise FsError(EEXIST, real_path)
        assert result.parent is not None
        check_permission(result.parent, self.creds, MAY_WRITE | MAY_EXEC)
        # A directory consumes one block for its entries.
        new_dir = self.fs.inodes.new_dir(
            mode=mode & ~self.process.umask,
            uid=self.creds.uid,
            gid=self.creds.gid,
            parent_ino=result.parent.ino,
        )
        try:
            self.fs.charge_blocks(new_dir, self.fs.device.block_size)
        except FsError:
            self.fs.inodes.remove(new_dir.ino)
            raise
        result.parent.link(result.name, new_dir.ino)
        result.parent.nlink += 1
        return 0

    # ------------------------------------------------------------------
    # chmod family
    # ------------------------------------------------------------------

    def chmod(self, path: str | None, mode: int) -> SyscallResult:
        """chmod(2)."""
        args = {"pathname": path, "mode": mode}
        return self._run("chmod", args, lambda: self._do_chmod_path(path, mode))

    def fchmod(self, fd: int, mode: int) -> SyscallResult:
        """fchmod(2)."""
        args = {"fd": fd, "mode": mode}

        def body() -> int:
            ofd = self.process.fd_table.get(fd)
            self._apply_chmod(ofd.inode, mode)
            return 0

        return self._run("fchmod", args, body)

    def fchmodat(
        self, dirfd: int, path: str | None, mode: int, flags: int = 0
    ) -> SyscallResult:
        """fchmodat(2)."""
        args = {"dfd": dirfd, "pathname": path, "mode": mode, "flags": flags}

        def body() -> int:
            if flags & constants.AT_SYMLINK_NOFOLLOW:
                # Linux: not supported on symlinks; kernel returns EOPNOTSUPP.
                raise FsError(EOPNOTSUPP, "AT_SYMLINK_NOFOLLOW")
            if flags & ~constants.AT_SYMLINK_NOFOLLOW:
                raise FsError(EINVAL, f"flags {flags:#x}")
            return self._do_chmod_path(path, mode, dirfd=dirfd)

        return self._run("fchmodat", args, body)

    def _do_chmod_path(
        self, path: str | None, mode: int, *, dirfd: int = constants.AT_FDCWD
    ) -> int:
        real_path = self._require_path(path)
        result = self._resolve(real_path, dirfd=dirfd)
        assert result.inode is not None
        self._apply_chmod(result.inode, mode)
        return 0

    def _apply_chmod(self, inode: Inode, mode: int) -> None:
        self.fs.require_writable()
        if not self.creds.is_superuser and self.creds.uid != inode.uid:
            raise FsError(EPERM, "chmod by non-owner")
        inode.set_permissions(mode)
        inode.times.ctime = self.fs.tick()

    # ------------------------------------------------------------------
    # chdir family
    # ------------------------------------------------------------------

    def chdir(self, path: str | None) -> SyscallResult:
        """chdir(2)."""
        args = {"filename": path}

        def body() -> int:
            real_path = self._require_path(path)
            inode = self.fs.resolver.lookup_inode(
                real_path, self.process.cwd_ino, self.creds
            )
            if not inode.is_directory():
                raise FsError(ENOTDIR, real_path)
            check_permission(inode, self.creds, MAY_EXEC)
            self.process.cwd_ino = inode.ino
            return 0

        return self._run("chdir", args, body)

    def fchdir(self, fd: int) -> SyscallResult:
        """fchdir(2)."""
        args = {"fd": fd}

        def body() -> int:
            ofd = self.process.fd_table.get(fd)
            if not ofd.inode.is_directory():
                raise FsError(ENOTDIR, f"fd {fd}")
            check_permission(ofd.inode, self.creds, MAY_EXEC)
            self.process.cwd_ino = ofd.inode.ino
            return 0

        return self._run("fchdir", args, body)

    # ------------------------------------------------------------------
    # xattr family
    # ------------------------------------------------------------------

    def setxattr(
        self,
        path: str | None,
        name: str,
        value: bytes,
        size: int | None = None,
        flags: int = 0,
        *,
        buf_faulty: bool = False,
    ) -> SyscallResult:
        """setxattr(2)."""
        size = len(value) if size is None else size
        args = {"pathname": path, "name": name, "size": size, "flags": flags}
        return self._run(
            "setxattr",
            args,
            lambda: self._do_setxattr_path(
                path, name, value, size, flags, follow=True, buf_faulty=buf_faulty
            ),
        )

    def lsetxattr(
        self,
        path: str | None,
        name: str,
        value: bytes,
        size: int | None = None,
        flags: int = 0,
        *,
        buf_faulty: bool = False,
    ) -> SyscallResult:
        """lsetxattr(2): does not follow a final symlink."""
        size = len(value) if size is None else size
        args = {"pathname": path, "name": name, "size": size, "flags": flags}
        return self._run(
            "lsetxattr",
            args,
            lambda: self._do_setxattr_path(
                path, name, value, size, flags, follow=False, buf_faulty=buf_faulty
            ),
        )

    def fsetxattr(
        self,
        fd: int,
        name: str,
        value: bytes,
        size: int | None = None,
        flags: int = 0,
        *,
        buf_faulty: bool = False,
    ) -> SyscallResult:
        """fsetxattr(2)."""
        size = len(value) if size is None else size
        args = {"fd": fd, "name": name, "size": size, "flags": flags}

        def body() -> int:
            ofd = self.process.fd_table.get(fd)
            return self._apply_setxattr(
                ofd.inode, name, value, size, flags, buf_faulty
            )

        return self._run("fsetxattr", args, body)

    def _do_setxattr_path(
        self,
        path: str | None,
        name: str,
        value: bytes,
        size: int,
        flags: int,
        *,
        follow: bool,
        buf_faulty: bool,
    ) -> int:
        real_path = self._require_path(path)
        result = self._resolve(real_path, follow_final=follow)
        inode = result.inode
        assert inode is not None
        if inode.is_symlink() and name.startswith("user."):
            # user.* xattrs are not allowed on symlinks.
            raise FsError(EPERM, "user xattr on symlink")
        return self._apply_setxattr(inode, name, value, size, flags, buf_faulty)

    def _apply_setxattr(
        self,
        inode: Inode,
        name: str,
        value: bytes,
        size: int,
        flags: int,
        buf_faulty: bool,
    ) -> int:
        self.fs.require_writable()
        if flags & ~(constants.XATTR_CREATE | constants.XATTR_REPLACE):
            raise FsError(EINVAL, f"xattr flags {flags:#x}")
        if (flags & constants.XATTR_CREATE) and (flags & constants.XATTR_REPLACE):
            raise FsError(EINVAL, "XATTR_CREATE|XATTR_REPLACE")
        if not name:
            raise FsError(EINVAL, "empty xattr name")
        if len(name) > constants.XATTR_NAME_MAX:
            raise FsError(ENAMETOOLONG, f"xattr name length {len(name)}")
        if not name.startswith(_XATTR_NAMESPACES):
            raise FsError(EOPNOTSUPP, f"xattr namespace of {name!r}")
        if size < 0 or size > constants.XATTR_SIZE_MAX:
            raise FsError(E2BIG, f"xattr value size {size}")
        if buf_faulty:
            raise FsError(EFAULT, "bad user buffer")
        if not self.creds.is_superuser and self.creds.uid != inode.uid:
            check_permission(inode, self.creds, MAY_WRITE)
        inode.set_xattr(
            name,
            value[:size].ljust(size, b"\0"),
            create=bool(flags & constants.XATTR_CREATE),
            replace=bool(flags & constants.XATTR_REPLACE),
        )
        inode.times.ctime = self.fs.tick()
        return 0

    def getxattr(
        self, path: str | None, name: str, size: int = 0, *, buf_faulty: bool = False
    ) -> SyscallResult:
        """getxattr(2): *size* 0 probes the value length."""
        args = {"pathname": path, "name": name, "size": size}
        return self._run(
            "getxattr",
            args,
            lambda: self._do_getxattr_path(path, name, size, True, buf_faulty),
        )

    def lgetxattr(
        self, path: str | None, name: str, size: int = 0, *, buf_faulty: bool = False
    ) -> SyscallResult:
        """lgetxattr(2): does not follow a final symlink."""
        args = {"pathname": path, "name": name, "size": size}
        return self._run(
            "lgetxattr",
            args,
            lambda: self._do_getxattr_path(path, name, size, False, buf_faulty),
        )

    def fgetxattr(
        self, fd: int, name: str, size: int = 0, *, buf_faulty: bool = False
    ) -> SyscallResult:
        """fgetxattr(2)."""
        args = {"fd": fd, "name": name, "size": size}

        def body() -> tuple[int, bytes | None]:
            ofd = self.process.fd_table.get(fd)
            return self._apply_getxattr(ofd.inode, name, size, buf_faulty)

        return self._run("fgetxattr", args, body)

    def _do_getxattr_path(
        self, path: str | None, name: str, size: int, follow: bool, buf_faulty: bool
    ) -> tuple[int, bytes | None]:
        real_path = self._require_path(path)
        result = self._resolve(real_path, follow_final=follow)
        assert result.inode is not None
        return self._apply_getxattr(result.inode, name, size, buf_faulty)

    def _apply_getxattr(
        self, inode: Inode, name: str, size: int, buf_faulty: bool
    ) -> tuple[int, bytes | None]:
        if not name:
            raise FsError(EINVAL, "empty xattr name")
        if not name.startswith(_XATTR_NAMESPACES):
            raise FsError(EOPNOTSUPP, f"xattr namespace of {name!r}")
        if buf_faulty and size:
            raise FsError(EFAULT, "bad user buffer")
        value = inode.get_xattr(name, size)
        if size == 0:
            return len(value), None
        return len(value), value

    # ------------------------------------------------------------------
    # auxiliary syscalls (outside IOCov's 27 but used by real testers)
    # ------------------------------------------------------------------

    def link(self, oldpath: str | None, newpath: str | None) -> SyscallResult:
        """link(2): create a hard link to an existing file."""
        args = {"oldpath": oldpath, "newpath": newpath}

        def body() -> int:
            old = self._require_path(oldpath)
            new = self._require_path(newpath)
            self.fs.require_writable()
            src = self._resolve(old, follow_final=False)
            assert src.inode is not None
            if src.inode.is_directory():
                # Hard links to directories are forbidden.
                raise FsError(EPERM, old)
            dst = self._resolve(new, follow_final=False, must_exist=False)
            if dst.inode is not None:
                raise FsError(EEXIST, new)
            assert dst.parent is not None
            check_permission(dst.parent, self.creds, MAY_WRITE | MAY_EXEC)
            dst.parent.link(dst.name, src.inode.ino)
            src.inode.nlink += 1
            src.inode.times.ctime = self.fs.tick()
            return 0

        return self._run("link", args, body)

    def access(self, path: str | None, mode: int) -> SyscallResult:
        """access(2): check F_OK existence or R/W/X permission bits."""
        args = {"pathname": path, "mode": mode}

        def body() -> int:
            real_path = self._require_path(path)
            if mode & ~0o7:
                raise FsError(EINVAL, f"mode {mode:#o}")
            inode = self.fs.resolver.lookup_inode(
                real_path, self.process.cwd_ino, self.creds
            )
            if mode:  # F_OK == 0 checks existence only
                check_permission(inode, self.creds, mode)
            return 0

        return self._run("access", args, body)

    def statfs(self, path: str | None) -> SyscallResult:
        """statfs(2): retval 0 on success; sizes via fs.stats()."""
        args = {"pathname": path}

        def body() -> int:
            real_path = self._require_path(path)
            self.fs.resolver.lookup_inode(real_path, self.process.cwd_ino, self.creds)
            return 0

        return self._run("statfs", args, body)

    def symlink(self, target: str, linkpath: str | None) -> SyscallResult:
        """symlink(2)."""
        args = {"target": target, "linkpath": linkpath}

        def body() -> int:
            real_path = self._require_path(linkpath)
            self.fs.require_writable()
            result = self._resolve(real_path, must_exist=False, follow_final=False)
            if result.inode is not None:
                raise FsError(EEXIST, real_path)
            assert result.parent is not None
            check_permission(result.parent, self.creds, MAY_WRITE | MAY_EXEC)
            link = self.fs.inodes.new_symlink(
                target, uid=self.creds.uid, gid=self.creds.gid
            )
            result.parent.link(result.name, link.ino)
            return 0

        return self._run("symlink", args, body)

    def unlink(self, path: str | None) -> SyscallResult:
        """unlink(2)."""
        args = {"pathname": path}

        def body() -> int:
            real_path = self._require_path(path)
            self.fs.require_writable()
            result = self._resolve(real_path, follow_final=False)
            inode = result.inode
            assert inode is not None
            if inode.is_directory():
                raise FsError(EISDIR, real_path)
            assert result.parent is not None
            check_permission(result.parent, self.creds, MAY_WRITE | MAY_EXEC)
            result.parent.unlink(result.name)
            inode.nlink -= 1
            if inode.nlink <= 0:
                self.fs.release_inode_space(inode)
                self.fs.inodes.remove(inode.ino)
            return 0

        return self._run("unlink", args, body)

    def rmdir(self, path: str | None) -> SyscallResult:
        """rmdir(2)."""
        args = {"pathname": path}

        def body() -> int:
            real_path = self._require_path(path)
            self.fs.require_writable()
            result = self._resolve(real_path, follow_final=False)
            inode = result.inode
            assert inode is not None
            if not isinstance(inode, DirInode):
                raise FsError(ENOTDIR, real_path)
            if inode.ino == self.fs.root_ino:
                raise FsError(EBUSY, "rmdir of the root")
            if not inode.is_empty():
                raise FsError(ENOTEMPTY, real_path)
            assert result.parent is not None
            check_permission(result.parent, self.creds, MAY_WRITE | MAY_EXEC)
            result.parent.unlink(result.name)
            result.parent.nlink -= 1
            self.fs.release_inode_space(inode)
            self.fs.inodes.remove(inode.ino)
            return 0

        return self._run("rmdir", args, body)

    def rename(self, oldpath: str | None, newpath: str | None) -> SyscallResult:
        """rename(2) (same-directory and cross-directory, no overwrite of
        non-empty directories)."""
        args = {"oldpath": oldpath, "newpath": newpath}

        def body() -> int:
            old = self._require_path(oldpath)
            new = self._require_path(newpath)
            self.fs.require_writable()
            src = self._resolve(old, follow_final=False)
            assert src.inode is not None and src.parent is not None
            dst = self._resolve(new, follow_final=False, must_exist=False)
            assert dst.parent is not None
            check_permission(src.parent, self.creds, MAY_WRITE | MAY_EXEC)
            check_permission(dst.parent, self.creds, MAY_WRITE | MAY_EXEC)
            if isinstance(src.inode, DirInode):
                # POSIX: a directory may not be moved into its own
                # subtree (newpath would orphan the hierarchy).
                ancestor = dst.parent
                while True:
                    if ancestor.ino == src.inode.ino:
                        raise FsError(EINVAL, f"{new} is inside {old}")
                    if ancestor.parent_ino == ancestor.ino:
                        break
                    parent = self.fs.inodes.get(ancestor.parent_ino)
                    assert isinstance(parent, DirInode)
                    ancestor = parent
            if dst.inode is not None:
                if dst.inode.ino == src.inode.ino:
                    return 0
                if isinstance(dst.inode, DirInode):
                    if not dst.inode.is_empty():
                        raise FsError(ENOTEMPTY, new)
                    if not isinstance(src.inode, DirInode):
                        raise FsError(EISDIR, new)
                    dst.parent.unlink(dst.name)
                    dst.parent.nlink -= 1
                    self.fs.inodes.remove(dst.inode.ino)
                else:
                    if isinstance(src.inode, DirInode):
                        raise FsError(ENOTDIR, new)
                    dst.parent.unlink(dst.name)
                    dst.inode.nlink -= 1
                    if dst.inode.nlink <= 0:
                        self.fs.release_inode_space(dst.inode)
                        self.fs.inodes.remove(dst.inode.ino)
            src.parent.unlink(src.name)
            dst.parent.link(dst.name, src.inode.ino)
            if isinstance(src.inode, DirInode):
                src.parent.nlink -= 1
                dst.parent.nlink += 1
                src.inode.parent_ino = dst.parent.ino
            return 0

        return self._run("rename", args, body)

    def stat(self, path: str | None) -> SyscallResult:
        """stat(2): retval 0 on success; size available via lookup."""
        args = {"pathname": path}

        def body() -> int:
            real_path = self._require_path(path)
            self.fs.resolver.lookup_inode(real_path, self.process.cwd_ino, self.creds)
            return 0

        return self._run("stat", args, body)

    def dup(self, fd: int) -> SyscallResult:
        """dup(2): a new fd sharing the same open file description.

        Shared means shared: seeks through one descriptor move the
        other's offset too.
        """
        args = {"fildes": fd}

        def body() -> int:
            ofd = self.process.fd_table.get(fd)
            ofd.refcount += 1
            return self.process.fd_table.install(ofd)

        return self._run("dup", args, body)

    def dup2(self, oldfd: int, newfd: int) -> SyscallResult:
        """dup2(2): duplicate onto a specific descriptor number."""
        args = {"oldfd": oldfd, "newfd": newfd}

        def body() -> int:
            ofd = self.process.fd_table.get(oldfd)
            if oldfd == newfd:
                return newfd
            ofd.refcount += 1
            return self.process.fd_table.install_at(ofd, newfd)

        return self._run("dup2", args, body)

    def lstat(self, path: str | None) -> SyscallResult:
        """lstat(2): like stat but does not follow a final symlink."""
        args = {"pathname": path}

        def body() -> int:
            real_path = self._require_path(path)
            self._resolve(real_path, follow_final=False)
            return 0

        return self._run("lstat", args, body)

    def fstat(self, fd: int) -> SyscallResult:
        """fstat(2)."""
        args = {"fd": fd}

        def body() -> int:
            self.process.fd_table.get(fd)
            return 0

        return self._run("fstat", args, body)

    def fsync(self, fd: int) -> SyscallResult:
        """fsync(2): persist one file's allocation."""
        args = {"fd": fd}

        def body() -> int:
            ofd = self.process.fd_table.get(fd)
            self.fs.device.sync_owner(ofd.inode.ino)
            return 0

        return self._run("fsync", args, body)

    def fdatasync(self, fd: int) -> SyscallResult:
        """fdatasync(2): same persistence model as fsync here."""
        args = {"fd": fd}

        def body() -> int:
            ofd = self.process.fd_table.get(fd)
            self.fs.device.sync_owner(ofd.inode.ino)
            return 0

        return self._run("fdatasync", args, body)

    def sync(self) -> SyscallResult:
        """sync(2): volume-wide persistence barrier."""

        def body() -> int:
            self.fs.sync()
            return 0

        return self._run("sync", {}, body)
