"""The mountable file system: inodes + block device + policy state.

One :class:`FileSystem` instance corresponds to one mounted volume —
the ``/mnt/test`` device a file-system tester exercises.  It owns the
inode table, the block device (space accounting), per-uid quotas, and
volume-wide policy switches (read-only, frozen) that drive EROFS and
EBUSY output partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vfs import constants
from repro.vfs.blockdev import BlockDevice
from repro.vfs.errors import (
    EDQUOT,
    EFBIG,
    ENOSPC,
    EROFS,
    ETXTBSY,
    FsError,
)
from repro.vfs.inode import DirInode, FileInode, Inode, InodeTable
from repro.vfs.path import Credentials, PathResolver


@dataclass
class Quota:
    """Per-uid block quota (drives EDQUOT)."""

    block_limit: int
    blocks_used: int = 0

    def charge(self, delta: int) -> None:
        """Apply a block-count delta; negative deltas always succeed.

        Raises:
            FsError(EDQUOT): the quota would be exceeded.
        """
        if delta > 0 and self.blocks_used + delta > self.block_limit:
            raise FsError(
                EDQUOT,
                f"quota: {self.blocks_used}+{delta} > {self.block_limit}",
            )
        self.blocks_used = max(0, self.blocks_used + delta)


class FileSystem:
    """An in-memory POSIX file system with Ext4-like limits.

    Args:
        total_blocks: device capacity in blocks.
        block_size: bytes per block (power of two).
        max_file_size: per-file size cap (drives EFBIG).
        read_only: mount the volume read-only (drives EROFS).
    """

    def __init__(
        self,
        total_blocks: int = constants.DEFAULT_DEVICE_BLOCKS,
        block_size: int = constants.DEFAULT_BLOCK_SIZE,
        max_file_size: int = constants.MAX_FILE_SIZE,
        read_only: bool = False,
    ) -> None:
        self.device = BlockDevice(total_blocks=total_blocks, block_size=block_size)
        self.inodes = InodeTable()
        root = self.inodes.new_dir(mode=0o755)
        self.root_ino = root.ino
        self.resolver = PathResolver(self.inodes, self.root_ino)
        self.max_file_size = max_file_size
        self.read_only = read_only
        self.frozen = False
        self._quotas: dict[int, Quota] = {}
        #: inode numbers currently mapped executable (ETXTBSY model).
        self._busy_text: set[int] = set()
        #: logical clock for inode timestamps.
        self._clock = 0

    # -- clock -------------------------------------------------------------

    def tick(self) -> int:
        """Advance and return the logical timestamp (ns granularity)."""
        self._clock += 1
        return self._clock

    # -- policy ------------------------------------------------------------

    def require_writable(self) -> None:
        """Raise if the volume cannot accept writes right now.

        Raises:
            FsError(EROFS): mounted read-only.
            FsError(EBUSY): frozen (e.g. mid-snapshot).
        """
        if self.read_only:
            raise FsError(EROFS, "read-only file system")
        if self.frozen:
            from repro.vfs.errors import EBUSY

            raise FsError(EBUSY, "file system frozen")

    def mark_text_busy(self, ino: int) -> None:
        """Mark a file as a running executable (open-for-write → ETXTBSY)."""
        self._busy_text.add(ino)

    def clear_text_busy(self, ino: int) -> None:
        self._busy_text.discard(ino)

    def require_not_text_busy(self, inode: Inode) -> None:
        """Raise ETXTBSY for write access to a busy executable image."""
        if inode.ino in self._busy_text:
            raise FsError(ETXTBSY, f"inode {inode.ino} is a running text image")

    # -- quota -------------------------------------------------------------

    def set_quota(self, uid: int, block_limit: int) -> None:
        """Install a block quota for *uid* (0 disables enforcement)."""
        if block_limit <= 0:
            self._quotas.pop(uid, None)
        else:
            used = sum(
                self.device.owner_blocks(inode.ino)
                for inode in self.inodes.all_inodes()
                if inode.uid == uid
            )
            self._quotas[uid] = Quota(block_limit=block_limit, blocks_used=used)

    def _quota_for(self, uid: int) -> Quota | None:
        return self._quotas.get(uid)

    # -- space accounting ----------------------------------------------------

    def charge_file_size(
        self, inode: FileInode, new_size: int, materialized: int | None = None
    ) -> None:
        """Account a file's resize against device space, quota, and EFBIG.

        Must be called *before* mutating the inode's data; it raises
        without side effects other than the accounting change itself
        (device and quota move together or not at all).

        Args:
            new_size: the new *logical* size (checked against EFBIG).
            materialized: bytes actually backed by storage after the
                operation; defaults to *new_size*.  Sparse growth
                (truncate past the data) passes the unchanged
                materialized count and is charged nothing.

        Raises:
            FsError(EFBIG): new size exceeds the per-file limit.
            FsError(ENOSPC): the device is out of blocks.
            FsError(EDQUOT): the owner's quota is exceeded.
        """
        if new_size > self.max_file_size:
            raise FsError(EFBIG, f"size {new_size} > limit {self.max_file_size}")
        if materialized is None:
            materialized = new_size
        self.charge_blocks(inode, materialized)

    def charge_blocks(self, inode: Inode, materialized: int) -> None:
        """Account *materialized* backed bytes against space and quota.

        The block-allocation half of :meth:`charge_file_size`: no EFBIG
        check, because the caller is not changing a logical file size
        (directory blocks, metadata).  Device and quota move together
        or not at all.

        Raises:
            FsError(ENOSPC): the device is out of blocks.
            FsError(EDQUOT): the owner's quota is exceeded.
        """
        old_blocks = self.device.owner_blocks(inode.ino)
        new_blocks = self.device.blocks_for(materialized)
        quota = self._quota_for(inode.uid)
        if quota is not None:
            quota.charge(new_blocks - old_blocks)
        try:
            self.device.resize_owner(inode.ino, materialized)
        except FsError:
            if quota is not None:
                quota.charge(old_blocks - new_blocks)  # roll back
            raise

    def check_creation_allowed(self, uid: int) -> None:
        """Gate inode creation on free space and quota, like Ext4.

        Creating a file consumes metadata (a directory entry and an
        inode), so creation fails when the device is completely full or
        the creator's quota is exhausted even though the new file holds
        no data blocks yet.

        Raises:
            FsError(ENOSPC): no free blocks remain on the device.
            FsError(EDQUOT): the creator's block quota is exhausted.
        """
        if self.device.free_blocks <= 0:
            raise FsError(ENOSPC, "device full: cannot create inode")
        quota = self._quota_for(uid)
        if quota is not None and quota.blocks_used >= quota.block_limit:
            raise FsError(EDQUOT, f"uid {uid} quota exhausted")

    def release_inode_space(self, inode: Inode) -> None:
        """Free all blocks (and quota) held by *inode*."""
        blocks = self.device.owner_blocks(inode.ino)
        quota = self._quota_for(inode.uid)
        if quota is not None and blocks:
            quota.charge(-blocks)
        self.device.release_owner(inode.ino)

    # -- convenience --------------------------------------------------------

    @property
    def root(self) -> DirInode:
        inode = self.inodes.get(self.root_ino)
        assert isinstance(inode, DirInode)
        return inode

    def lookup(self, path: str, creds: Credentials | None = None) -> Inode:
        """Resolve an absolute *path* from the root (test helper)."""
        creds = creds or Credentials()
        return self.resolver.lookup_inode(path, self.root_ino, creds)

    def sync(self) -> None:
        """Volume-wide persistence barrier (sync(2))."""
        self.device.sync()

    def stats(self):
        return self.device.stats()
