"""Flag, mode, and limit constants for the in-memory VFS.

Values match Linux/x86-64 so that bit patterns recorded in traces are
directly comparable with real LTTng/strace captures, and so that the
IOCov bitmap partitioner (:mod:`repro.core.partition`) can decode them
with the same tables it would use on real traces.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# open(2) flags (Linux, x86-64 generic values)
# --------------------------------------------------------------------------
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_ACCMODE = 0o3

O_CREAT = 0o100
O_EXCL = 0o200
O_NOCTTY = 0o400
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_NONBLOCK = 0o4000
O_DSYNC = 0o10000
O_ASYNC = 0o20000
O_DIRECT = 0o40000
O_LARGEFILE = 0o100000
O_DIRECTORY = 0o200000
O_NOFOLLOW = 0o400000
O_NOATIME = 0o1000000
O_CLOEXEC = 0o2000000
# O_SYNC is (__O_SYNC | O_DSYNC) on Linux; __O_SYNC is 0o4000000.
__O_SYNC = 0o4000000
O_SYNC = __O_SYNC | O_DSYNC
O_PATH = 0o10000000
# O_TMPFILE is (__O_TMPFILE | O_DIRECTORY).
__O_TMPFILE = 0o20000000
O_TMPFILE = __O_TMPFILE | O_DIRECTORY
O_NDELAY = O_NONBLOCK

#: The full per-flag decode table for open(2), in the order the paper's
#: Figure 2 x-axis lists them (access modes first, then the modifier
#: flags).  O_RDONLY is value 0 and therefore needs special handling in
#: the partitioner: an open is O_RDONLY iff ``flags & O_ACCMODE == 0``.
OPEN_FLAG_NAMES: dict[str, int] = {
    "O_RDONLY": O_RDONLY,
    "O_WRONLY": O_WRONLY,
    "O_RDWR": O_RDWR,
    "O_CREAT": O_CREAT,
    "O_EXCL": O_EXCL,
    "O_NOCTTY": O_NOCTTY,
    "O_TRUNC": O_TRUNC,
    "O_APPEND": O_APPEND,
    "O_NONBLOCK": O_NONBLOCK,
    "O_DSYNC": O_DSYNC,
    "O_ASYNC": O_ASYNC,
    "O_DIRECT": O_DIRECT,
    "O_LARGEFILE": O_LARGEFILE,
    "O_DIRECTORY": O_DIRECTORY,
    "O_NOFOLLOW": O_NOFOLLOW,
    "O_NOATIME": O_NOATIME,
    "O_CLOEXEC": O_CLOEXEC,
    "O_SYNC": O_SYNC,
    "O_PATH": O_PATH,
    "O_TMPFILE": O_TMPFILE,
}

#: Flags that occupy the access-mode field rather than independent bits.
OPEN_ACCESS_MODES: dict[str, int] = {
    "O_RDONLY": O_RDONLY,
    "O_WRONLY": O_WRONLY,
    "O_RDWR": O_RDWR,
}

#: Independent modifier bits (everything except the access-mode field).
#: O_SYNC and O_TMPFILE are composite; they are decoded before their
#: constituent bits (O_DSYNC, O_DIRECTORY) to avoid double-reporting.
OPEN_MODIFIER_FLAGS: dict[str, int] = {
    name: value
    for name, value in OPEN_FLAG_NAMES.items()
    if name not in OPEN_ACCESS_MODES
}

# --------------------------------------------------------------------------
# lseek(2) whence values
# --------------------------------------------------------------------------
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2
SEEK_DATA = 3
SEEK_HOLE = 4

SEEK_WHENCE_NAMES: dict[str, int] = {
    "SEEK_SET": SEEK_SET,
    "SEEK_CUR": SEEK_CUR,
    "SEEK_END": SEEK_END,
    "SEEK_DATA": SEEK_DATA,
    "SEEK_HOLE": SEEK_HOLE,
}

# --------------------------------------------------------------------------
# mode bits (chmod / open mode argument)
# --------------------------------------------------------------------------
S_ISUID = 0o4000
S_ISGID = 0o2000
S_ISVTX = 0o1000
S_IRUSR = 0o400
S_IWUSR = 0o200
S_IXUSR = 0o100
S_IRGRP = 0o40
S_IWGRP = 0o20
S_IXGRP = 0o10
S_IROTH = 0o4
S_IWOTH = 0o2
S_IXOTH = 0o1
S_IRWXU = S_IRUSR | S_IWUSR | S_IXUSR
S_IRWXG = S_IRGRP | S_IWGRP | S_IXGRP
S_IRWXO = S_IROTH | S_IWOTH | S_IXOTH

MODE_BIT_NAMES: dict[str, int] = {
    "S_ISUID": S_ISUID,
    "S_ISGID": S_ISGID,
    "S_ISVTX": S_ISVTX,
    "S_IRUSR": S_IRUSR,
    "S_IWUSR": S_IWUSR,
    "S_IXUSR": S_IXUSR,
    "S_IRGRP": S_IRGRP,
    "S_IWGRP": S_IWGRP,
    "S_IXGRP": S_IXGRP,
    "S_IROTH": S_IROTH,
    "S_IWOTH": S_IWOTH,
    "S_IXOTH": S_IXOTH,
}

#: File-type bits in st_mode.
S_IFMT = 0o170000
S_IFREG = 0o100000
S_IFDIR = 0o40000
S_IFLNK = 0o120000

# --------------------------------------------------------------------------
# setxattr(2) flags
# --------------------------------------------------------------------------
XATTR_CREATE = 0x1
XATTR_REPLACE = 0x2

XATTR_FLAG_NAMES: dict[str, int] = {
    "XATTR_CREATE": XATTR_CREATE,
    "XATTR_REPLACE": XATTR_REPLACE,
}

# --------------------------------------------------------------------------
# *at(2) dirfd sentinel and flags
# --------------------------------------------------------------------------
AT_FDCWD = -100
AT_SYMLINK_NOFOLLOW = 0x100
AT_EMPTY_PATH = 0x1000

# --------------------------------------------------------------------------
# openat2(2) resolve flags (struct open_how.resolve)
# --------------------------------------------------------------------------
RESOLVE_NO_XDEV = 0x01
RESOLVE_NO_MAGICLINKS = 0x02
RESOLVE_NO_SYMLINKS = 0x04
RESOLVE_BENEATH = 0x08
RESOLVE_IN_ROOT = 0x10

# --------------------------------------------------------------------------
# File-system limits (Linux / Ext4 defaults unless noted)
# --------------------------------------------------------------------------
#: Maximum length of one path component.
NAME_MAX = 255
#: Maximum length of a whole path handed to a syscall.
PATH_MAX = 4096
#: Maximum depth of symlink resolution before ELOOP.
SYMLOOP_MAX = 40
#: Per-process soft limit on open file descriptors (RLIMIT_NOFILE default).
DEFAULT_MAX_FDS = 1024
#: System-wide limit on open file descriptions (file-max analogue).
DEFAULT_MAX_OPEN_FILES = 65536
#: Default logical block size (Ext4 default 4 KiB).
DEFAULT_BLOCK_SIZE = 4096
#: Default device capacity: 1 GiB of 4 KiB blocks.
DEFAULT_DEVICE_BLOCKS = 262144
#: Maximum file size (Ext4 with 4 KiB blocks: 16 TiB).
MAX_FILE_SIZE = 16 * 1024**4
#: Largest file offset representable (2**63 - 1, loff_t).
MAX_OFFSET = 2**63 - 1
#: Maximum size of one xattr value (Linux VFS limit, 64 KiB).
XATTR_SIZE_MAX = 65536
#: Maximum length of an xattr name.
XATTR_NAME_MAX = 255
#: In-inode xattr storage space (Ext4 inode with 256-byte inodes keeps
#: roughly this much room for in-body xattrs; used by the Figure 1
#: exemplar bug model).
XATTR_IBODY_SPACE = 100
#: Maximum count for a single read/write (Linux caps at MAX_RW_COUNT).
MAX_RW_COUNT = 0x7FFFF000
#: Maximum iovec entries for readv/writev.
IOV_MAX = 1024
