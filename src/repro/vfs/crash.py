"""Crash-point simulation for crash-consistency workloads.

CrashMonkey's seq-1 testing runs a small workload, crashes the system
at a persistence point, remounts, and checks that everything that was
fsync'ed survived.  Our CrashMonkey substrate needs the same life
cycle; this module provides it over :class:`~repro.vfs.filesystem.FileSystem`.

The model is allocation-level: data written but not persisted (no
fsync/sync since the write) is discarded by :meth:`CrashSimulator.crash`.
File *content* is snapshotted at each persistence point so a remount
restores exactly the durable image.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.vfs.filesystem import FileSystem


@dataclass
class DurableImage:
    """A snapshot of the durable (persisted) file-system state."""

    inodes_snapshot: object
    root_ino: int


class CrashSimulator:
    """Snapshot/restore harness around one file system.

    Usage::

        sim = CrashSimulator(fs)
        ... run workload ...
        sim.checkpoint()      # called by fsync/sync hooks or the harness
        ... more workload ...
        sim.crash()           # discard everything after the checkpoint
    """

    def __init__(self, fs: FileSystem) -> None:
        self.fs = fs
        self._durable: DurableImage | None = None
        self.checkpoint_count = 0
        self.crash_count = 0
        self.checkpoint()  # the freshly made FS is durable

    def checkpoint(self) -> None:
        """Record the current state as durable (a sync barrier)."""
        self.fs.sync()
        self._durable = DurableImage(
            inodes_snapshot=copy.deepcopy(self.fs.inodes),
            root_ino=self.fs.root_ino,
        )
        self.checkpoint_count += 1

    def crash(self) -> None:
        """Simulate power loss: roll back to the last durable image."""
        assert self._durable is not None
        self.crash_count += 1
        self.fs.inodes = copy.deepcopy(self._durable.inodes_snapshot)  # type: ignore[assignment]
        self.fs.root_ino = self._durable.root_ino
        # Rebind the resolver to the restored table.
        from repro.vfs.path import PathResolver

        self.fs.resolver = PathResolver(self.fs.inodes, self.fs.root_ino)
        self.fs.device.crash()

    def durable_paths(self) -> list[str]:
        """List every path reachable in the durable image (for checkers)."""
        assert self._durable is not None
        table = self._durable.inodes_snapshot
        from repro.vfs.inode import DirInode

        paths: list[str] = []

        def walk(ino: int, prefix: str) -> None:
            inode = table.get(ino)  # type: ignore[attr-defined]
            if isinstance(inode, DirInode):
                for name, child_ino in inode.entries.items():
                    child_path = f"{prefix}/{name}" if prefix != "/" else f"/{name}"
                    paths.append(child_path)
                    child = table.get(child_ino)  # type: ignore[attr-defined]
                    if isinstance(child, DirInode):
                        walk(child_ino, child_path)

        walk(self._durable.root_ino, "/")
        return paths
