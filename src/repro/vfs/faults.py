"""Deterministic fault injection for hard-to-reach error paths.

The paper notes that some errnos (ENOMEM, EIO, EINTR, …) require
environmental pressure a test harness cannot easily create — e.g.
"triggering ENOMEM requires a system with limited memory".  This module
lets workloads and tests arm those faults deterministically so that
output-coverage partitions for such errors can actually be exercised.

A fault is a rule: (syscall-name pattern, errno, firing schedule).  The
schedule may fire once, every call, every Nth call, or for a bounded
number of calls.  Rules are consulted by the syscall layer before the
operation body runs, matching where the kernel would fail (allocation
at entry, interrupted before any work).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from repro.vfs.errors import FsError, errno_name


@dataclass
class FaultRule:
    """One armed fault.

    Attributes:
        pattern: fnmatch-style syscall-name pattern (``"open*"``,
            ``"write"``, ``"*"``).
        errno: errno to inject.
        every: fire on every Nth matching call (1 = every call).
        remaining: how many more times this rule may fire; ``None``
            means unlimited.
    """

    pattern: str
    errno: int
    every: int = 1
    remaining: int | None = 1
    _seen: int = field(default=0, repr=False)

    def matches(self, syscall: str) -> bool:
        return fnmatch.fnmatch(syscall, self.pattern)

    def should_fire(self) -> bool:
        """Record one matching call; report whether the fault fires now."""
        if self.remaining is not None and self.remaining <= 0:
            return False
        self._seen += 1
        if self._seen % self.every != 0:
            return False
        if self.remaining is not None:
            self.remaining -= 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.remaining is not None and self.remaining <= 0


class FaultInjector:
    """Registry of fault rules checked at syscall entry."""

    def __init__(self) -> None:
        self._rules: list[FaultRule] = []
        self.injected_count = 0

    def arm(
        self,
        pattern: str,
        errno: int,
        *,
        every: int = 1,
        count: int | None = 1,
    ) -> FaultRule:
        """Arm a fault: the next *count* calls matching *pattern* fail.

        Args:
            pattern: fnmatch pattern over syscall names.
            errno: errno to inject.
            every: fire only on every Nth matching call.
            count: number of firings before the rule exhausts
                (``None`` = forever).
        """
        if every < 1:
            raise ValueError("every must be >= 1")
        rule = FaultRule(pattern=pattern, errno=errno, every=every, remaining=count)
        self._rules.append(rule)
        return rule

    def disarm_all(self) -> None:
        self._rules.clear()

    def check(self, syscall: str) -> None:
        """Raise the armed fault for *syscall*, if any rule fires.

        Exhausted rules are pruned lazily.

        Raises:
            FsError: with the armed errno.
        """
        fired: FaultRule | None = None
        for rule in self._rules:
            if rule.matches(syscall) and rule.should_fire():
                fired = rule
                break
        self._rules = [rule for rule in self._rules if not rule.exhausted]
        if fired is not None:
            self.injected_count += 1
            raise FsError(
                fired.errno,
                f"injected {errno_name(fired.errno)} on {syscall}",
            )

    @property
    def armed_rules(self) -> list[FaultRule]:
        return list(self._rules)
