"""Inode objects: regular files, directories, and symlinks.

Inodes hold content (bytes for regular files, child-name maps for
directories, target strings for symlinks), mode/ownership metadata, and
extended attributes.  Space accounting is delegated to the owning
file system so that inode methods stay pure data operations; the FS
layer charges the block device before calling them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.vfs import constants
from repro.vfs.errors import (
    EEXIST,
    ENODATA,
    ENOENT,
    ENOSPC,
    ERANGE,
    FsError,
)


@dataclass
class InodeTimes:
    """atime/mtime/ctime in nanoseconds since the epoch (logical clock)."""

    atime: int = 0
    mtime: int = 0
    ctime: int = 0


class Inode:
    """Base class for all inode kinds.

    Attributes:
        ino: inode number, unique within one file system.
        mode: full st_mode including the file-type bits.
        uid / gid: ownership.
        nlink: hard-link count.
        xattrs: extended attributes (name -> value bytes).
    """

    def __init__(self, ino: int, mode: int, uid: int = 0, gid: int = 0) -> None:
        self.ino = ino
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.nlink = 1
        self.times = InodeTimes()
        self.xattrs: dict[str, bytes] = {}
        #: bytes of in-inode xattr space remaining (Figure 1 exemplar:
        #: Ext4 stores small xattrs in the inode body and must check
        #: remaining room before accepting another one).
        self.xattr_ibody_space = constants.XATTR_IBODY_SPACE

    # -- type predicates ----------------------------------------------------

    @property
    def file_type(self) -> int:
        return self.mode & constants.S_IFMT

    def is_regular(self) -> bool:
        return self.file_type == constants.S_IFREG

    def is_directory(self) -> bool:
        return self.file_type == constants.S_IFDIR

    def is_symlink(self) -> bool:
        return self.file_type == constants.S_IFLNK

    @property
    def permissions(self) -> int:
        """Just the permission bits (and setuid/setgid/sticky)."""
        return self.mode & 0o7777

    def set_permissions(self, mode: int) -> None:
        self.mode = self.file_type | (mode & 0o7777)

    # -- size ---------------------------------------------------------------

    @property
    def size(self) -> int:
        """Logical size in bytes (overridden per kind)."""
        return 0

    # -- xattrs ---------------------------------------------------------------

    def xattr_space_used(self) -> int:
        """Bytes of xattr storage consumed (names + values)."""
        return sum(len(name) + len(value) for name, value in self.xattrs.items())

    def set_xattr(self, name: str, value: bytes, create: bool, replace: bool) -> None:
        """Set one extended attribute, honouring XATTR_CREATE/REPLACE.

        Raises:
            FsError(EEXIST): XATTR_CREATE and the name already exists.
            FsError(ENODATA): XATTR_REPLACE and the name is absent.
            FsError(ENOSPC): no room left in the in-inode xattr area.
        """
        exists = name in self.xattrs
        if create and exists:
            raise FsError(EEXIST, f"xattr {name!r} already exists")
        if replace and not exists:
            raise FsError(ENODATA, f"xattr {name!r} not found")
        old_len = len(name) + len(self.xattrs[name]) if exists else 0
        new_len = len(name) + len(value)
        available = self.xattr_ibody_space - self.xattr_space_used() + old_len
        if new_len > available:
            raise FsError(ENOSPC, f"xattr {name!r}: {new_len} bytes > {available} free")
        self.xattrs[name] = bytes(value)

    def get_xattr(self, name: str, size: int) -> bytes:
        """Read one extended attribute.

        A *size* of 0 is the POSIX "probe" convention: the caller asks
        for the value length only, so any size fits.  Otherwise the
        buffer must be at least as large as the value.

        Raises:
            FsError(ENODATA): the attribute does not exist.
            FsError(ERANGE): *size* is nonzero but smaller than the value.
        """
        if name not in self.xattrs:
            raise FsError(ENODATA, f"xattr {name!r} not found")
        value = self.xattrs[name]
        if size and size < len(value):
            raise FsError(ERANGE, f"buffer {size} < value {len(value)}")
        return value


class FileInode(Inode):
    """Regular file: a materialized byte prefix plus a sparse zero tail.

    Growing a file by ``truncate`` does not materialize bytes: the
    logical size moves, the tail reads as zeros, and only written
    bytes consume memory (and, via the FS layer, device blocks).  This
    mirrors real file systems, where a multi-GiB truncate allocates
    nothing — and it is what lets tests create the >2 GiB O_LARGEFILE
    boundary files cheaply.
    """

    def __init__(self, ino: int, mode: int = 0o644, uid: int = 0, gid: int = 0) -> None:
        super().__init__(ino, constants.S_IFREG | (mode & 0o7777), uid, gid)
        self.data = bytearray()
        #: logical size when it exceeds the materialized data (tail hole)
        self._sparse_size = 0

    @property
    def size(self) -> int:
        return max(len(self.data), self._sparse_size)

    @property
    def materialized_bytes(self) -> int:
        """Bytes actually backed by storage (what the device charges)."""
        return len(self.data)

    def read_at(self, offset: int, count: int) -> bytes:
        """Read up to *count* bytes starting at *offset* (short at EOF)."""
        if offset >= self.size or count <= 0:
            return b""
        count = min(count, self.size - offset)
        if offset >= len(self.data):
            # Entirely inside the sparse tail: zero-filled bytes come
            # straight from calloc'd pages, with no slice/concat copies.
            return bytes(count)
        chunk = bytes(self.data[offset : offset + count])
        if len(chunk) < count:
            # The request extends into the sparse tail: zeros.
            chunk += b"\0" * (count - len(chunk))
        return chunk

    def write_at(self, offset: int, data: bytes) -> int:
        """Write *data* at *offset*, zero-filling any hole; returns count."""
        end = offset + len(data)
        if end > len(self.data):
            self.data.extend(b"\0" * (end - len(self.data)))
        self.data[offset:end] = data
        self._sparse_size = max(self._sparse_size, end)
        return len(data)

    def write_zeros_at(self, offset: int, count: int) -> int:
        """Write *count* zero bytes at *offset* without a temporary buffer.

        Fast path for calibration workloads issuing very large writes
        (e.g. the 258 MiB maximum in the paper's Figure 3), where only
        the size matters for coverage, not the payload.
        """
        end = offset + count
        if end > len(self.data):
            self.data.extend(b"\0" * (end - len(self.data)))
        else:
            self.data[offset:end] = b"\0" * count
        self._sparse_size = max(self._sparse_size, end)
        return count

    def truncate_to(self, length: int) -> None:
        """Set the logical size to *length*; growth is a sparse hole."""
        if length < len(self.data):
            del self.data[length:]
        self._sparse_size = length


class DirInode(Inode):
    """Directory: an ordered name -> inode-number map."""

    def __init__(
        self,
        ino: int,
        mode: int = 0o755,
        uid: int = 0,
        gid: int = 0,
        parent_ino: int | None = None,
    ) -> None:
        super().__init__(ino, constants.S_IFDIR | (mode & 0o7777), uid, gid)
        self.entries: dict[str, int] = {}
        self.parent_ino = parent_ino if parent_ino is not None else ino
        self.nlink = 2  # "." and the parent's entry

    @property
    def size(self) -> int:
        # Directories report a nominal block-multiple size like Ext4.
        return max(constants.DEFAULT_BLOCK_SIZE, len(self.entries) * 32)

    def lookup(self, name: str) -> int:
        """Return the inode number bound to *name*.

        Raises:
            FsError(ENOENT): no such entry.
        """
        if name not in self.entries:
            raise FsError(ENOENT, name)
        return self.entries[name]

    def link(self, name: str, ino: int) -> None:
        """Bind *name* -> *ino*.

        Raises:
            FsError(EEXIST): the name is already bound.
        """
        if name in self.entries:
            raise FsError(EEXIST, name)
        self.entries[name] = ino

    def unlink(self, name: str) -> int:
        """Remove the entry for *name*, returning its inode number.

        Raises:
            FsError(ENOENT): no such entry.
        """
        if name not in self.entries:
            raise FsError(ENOENT, name)
        return self.entries.pop(name)

    def names(self) -> Iterator[str]:
        return iter(self.entries)

    def is_empty(self) -> bool:
        return not self.entries


class SymlinkInode(Inode):
    """Symbolic link: stores its target path as a string."""

    def __init__(self, ino: int, target: str, uid: int = 0, gid: int = 0) -> None:
        super().__init__(ino, constants.S_IFLNK | 0o777, uid, gid)
        self.target = target

    @property
    def size(self) -> int:
        return len(self.target)


class InodeTable:
    """Allocator and registry for all inodes of one file system."""

    def __init__(self, max_inodes: int = 1 << 20) -> None:
        self._inodes: dict[int, Inode] = {}
        self._next_ino = itertools.count(start=2)  # 1 is reserved; root gets 2
        self.max_inodes = max_inodes

    def __len__(self) -> int:
        return len(self._inodes)

    def __contains__(self, ino: int) -> bool:
        return ino in self._inodes

    def get(self, ino: int) -> Inode:
        """Fetch an inode by number.

        Raises:
            FsError(ENOENT): the inode does not exist (stale reference).
        """
        if ino not in self._inodes:
            raise FsError(ENOENT, f"inode {ino}")
        return self._inodes[ino]

    def _allocate_ino(self) -> int:
        if len(self._inodes) >= self.max_inodes:
            raise FsError(ENOSPC, "inode table full")
        return next(self._next_ino)

    def new_file(self, mode: int = 0o644, uid: int = 0, gid: int = 0) -> FileInode:
        inode = FileInode(self._allocate_ino(), mode, uid, gid)
        self._inodes[inode.ino] = inode
        return inode

    def new_dir(
        self, mode: int = 0o755, uid: int = 0, gid: int = 0, parent_ino: int | None = None
    ) -> DirInode:
        inode = DirInode(self._allocate_ino(), mode, uid, gid, parent_ino)
        self._inodes[inode.ino] = inode
        return inode

    def new_symlink(self, target: str, uid: int = 0, gid: int = 0) -> SymlinkInode:
        inode = SymlinkInode(self._allocate_ino(), target, uid, gid)
        self._inodes[inode.ino] = inode
        return inode

    def remove(self, ino: int) -> None:
        """Drop an inode from the table (after its last link is gone)."""
        self._inodes.pop(ino, None)

    def all_inodes(self) -> Iterator[Inode]:
        return iter(self._inodes.values())
