"""In-memory POSIX file system substrate.

The VFS gives IOCov a realistic syscall boundary to trace: all 27
syscalls the paper's prototype covers, with Linux-faithful flag values,
errno behaviour, and resource limits.  See :mod:`repro.vfs.syscalls`
for the call surface.
"""

from repro.vfs.blockdev import BlockDevice, BlockDeviceStats
from repro.vfs.crash import CrashSimulator
from repro.vfs.errors import FsError, errno_from_name, errno_name
from repro.vfs.faults import FaultInjector, FaultRule
from repro.vfs.fd import FdTable, OpenFileDescription, Process, SystemFileTable
from repro.vfs.filesystem import FileSystem, Quota
from repro.vfs.inode import DirInode, FileInode, Inode, InodeTable, SymlinkInode
from repro.vfs.path import Credentials, PathResolver, ResolveResult
from repro.vfs.syscalls import SyscallInterface, SyscallResult

__all__ = [
    "BlockDevice",
    "BlockDeviceStats",
    "CrashSimulator",
    "Credentials",
    "DirInode",
    "FaultInjector",
    "FaultRule",
    "FdTable",
    "FileInode",
    "FileSystem",
    "FsError",
    "Inode",
    "InodeTable",
    "OpenFileDescription",
    "PathResolver",
    "Process",
    "Quota",
    "ResolveResult",
    "SymlinkInode",
    "SyscallInterface",
    "SyscallResult",
    "SystemFileTable",
    "errno_from_name",
    "errno_name",
]
