"""The weighted mutation layer over the coverage-guided fuzzer.

:class:`WeightedFuzzer` overrides the base fuzzer's ``_choose_*`` hooks
so every argument decision consults a :class:`WeightModel`:

* **syscall mix** — op kinds are drawn proportionally to the remaining
  coverage gap of their syscall;
* **argument partitions** — numeric sizes/offsets, open flags, mode
  bits, and whence values are synthesized *inside* a partition sampled
  by weight, so an untested decade like ``2^40`` is hit directly
  instead of waiting for the mutation walk to reach it;
* **errno-provoking environments** — programs run against hostile VFS
  states (read-only, frozen, full device, exhausted quota, fd limit,
  dropped privileges) sampled from the weights of untested *output*
  partitions, closing the paper's output-coverage gap the same way
  argument bias closes the input one.

Determinism: all choices flow through the fuzzer's single seeded
``random.Random``, domains are fixed ordered lists, and weight lookups
are pure — same seed + same weight vector ⇒ byte-identical workload
(``workload_text()``), which the campaign CI gate relies on.
"""

from __future__ import annotations

from repro.campaign.weights import WeightModel, boosted_distribution
from repro.testsuites.fuzzer import CoverageGuidedFuzzer, FuzzProgram
from repro.vfs import constants
from repro.vfs.filesystem import FileSystem
from repro.vfs.path import Credentials
from repro.vfs.syscalls import SyscallInterface

#: Which (syscall, arg) domain each op kind's ``size`` slot feeds.
_SIZE_ARGS = {
    "read": ("read", "count"),
    "write": ("write", "count"),
    "lseek": ("lseek", "offset"),
    "truncate": ("truncate", "length"),
    "setxattr": ("setxattr", "size"),
    "getxattr": ("getxattr", "size"),
}

#: Which (syscall, arg) domain each op kind's ``mode`` slot feeds.
_MODE_ARGS = {
    "open": ("open", "mode"),
    "mkdir": ("mkdir", "mode"),
    "chmod": ("chmod", "mode"),
}

#: An open-flag bit no known flag occupies (lands in "unknown_bits").
_UNKNOWN_OPEN_BIT = next(
    1 << bit
    for bit in range(20, 40)
    if not any((1 << bit) & value for value in constants.OPEN_FLAG_NAMES.values())
)

#: A mode bit above the 0o7777 permission field ("unknown_bits").
_UNKNOWN_MODE_BIT = 0o10000

#: Out-of-domain whence value (the "invalid" categorical partition).
_INVALID_WHENCE = 99

#: The unprivileged uid/gid environments drop to (mirrors the suites'
#: tester identity).
_DROPPED_UID = 1000

#: Errno -> environment setup.  Each callable hostile-izes a fresh VFS
#: after the mount point exists; only errnos listed here are reachable
#: by state setup alone (the rest need specific arguments, which the
#: input weights already steer toward).
_ENV_ERRNOS = ("EROFS", "EBUSY", "ENOSPC", "EDQUOT", "EMFILE", "EACCES")


class WeightedFuzzer(CoverageGuidedFuzzer):
    """A :class:`CoverageGuidedFuzzer` biased by a :class:`WeightModel`.

    Args:
        weights: the round's weight model (uniform = unbiased).
        pristine_weight: relative weight of running a program against a
            pristine (non-hostile) VFS when errno environments are
            targeted; higher keeps more input-coverage throughput.
    """

    def __init__(
        self,
        weights: WeightModel | None = None,
        seed: int = 0,
        guided: bool = True,
        mount_point: str = "/mnt/fuzz",
        pristine_weight: float = 24.0,
    ) -> None:
        super().__init__(seed=seed, guided=guided, mount_point=mount_point)
        self.weights = weights or WeightModel.uniform()
        self.pristine_weight = pristine_weight
        #: every executed program, in execution order (the workload).
        self.programs: list[FuzzProgram] = []
        self._env_domain, self._env_weights = self._build_env_table()

    # -- weighted choice hooks -------------------------------------------------

    def _weighted_key(self, domain: list[str], weights: dict[str, float]) -> str:
        raw = [max(1.0, weights.get(key, 1.0)) for key in domain]
        return self.rng.choices(domain, weights=raw, k=1)[0]

    def _choose_kind(self) -> str:
        kinds = list(self.coverage.registry)  # insertion-ordered, fixed
        op_kinds = [kind for kind in kinds if kind in self._op_kind_set()]
        raw = [self.weights.syscall_weight(kind) for kind in op_kinds]
        return self.rng.choices(op_kinds, weights=raw, k=1)[0]

    @staticmethod
    def _op_kind_set() -> frozenset[str]:
        from repro.testsuites.fuzzer import _OP_KINDS

        return frozenset(_OP_KINDS)

    def _choose_size(self, kind: str) -> int:
        pair = _SIZE_ARGS.get(kind)
        if pair is None:
            return super()._choose_size(kind)
        domain = self.coverage.arg(*pair).domain()
        key = self._weighted_key(domain, self.weights.input_weights.get(pair, {}))
        return self._numeric_in_partition(key)

    def _numeric_in_partition(self, key: str) -> int:
        """A concrete value inside the named numeric partition."""
        if key == "negative":
            return -(1 << self.rng.randint(0, 31))
        if key == "equal_to_0":
            return 0
        if key.startswith(">=2^"):
            return (1 << int(key[4:])) + self.rng.randrange(1 << 8)
        if key.startswith("2^"):
            exponent = int(key[2:])
            base = 1 << exponent
            return base + (self.rng.randrange(base) if exponent else 0)
        return super()._choose_size("")  # unknown key: fall back

    def _choose_flags(self) -> int:
        pair = ("open", "flags")
        domain = self.coverage.arg(*pair).domain()
        weights = self.weights.input_weights.get(pair, {})
        access = self._weighted_key(
            [k for k in domain if k in constants.OPEN_ACCESS_MODES], weights
        )
        flags = constants.OPEN_ACCESS_MODES[access]
        modifiers = [
            k for k in domain
            if k in constants.OPEN_MODIFIER_FLAGS or k == "unknown_bits"
        ]
        for _ in range(self.rng.randint(0, 3)):
            name = self._weighted_key(modifiers, weights)
            if name == "unknown_bits":
                flags |= _UNKNOWN_OPEN_BIT
            else:
                flags |= constants.OPEN_MODIFIER_FLAGS[name]
        return flags

    def _choose_mode(self, kind: str) -> int:
        pair = _MODE_ARGS.get(kind)
        if pair is None:
            return super()._choose_mode(kind)
        domain = self.coverage.arg(*pair).domain()
        weights = self.weights.input_weights.get(pair, {})
        mode = 0
        for _ in range(self.rng.randint(1, 3)):
            name = self._weighted_key(domain, weights)
            if name == "unknown_bits":
                mode |= _UNKNOWN_MODE_BIT
            elif name in constants.MODE_BIT_NAMES:
                mode |= constants.MODE_BIT_NAMES[name]
            # "0" contributes no bits: the zero-mode partition.
        return mode

    def _choose_whence(self) -> int:
        pair = ("lseek", "whence")
        domain = self.coverage.arg(*pair).domain()
        name = self._weighted_key(domain, self.weights.input_weights.get(pair, {}))
        if name == "invalid":
            return _INVALID_WHENCE
        return constants.SEEK_WHENCE_NAMES.get(name, constants.SEEK_SET)

    # -- errno environments ----------------------------------------------------

    def _build_env_table(self) -> tuple[list[str], dict[str, float]]:
        """Environment domain + weights from the model's errno targets.

        An environment's weight is the *strongest* pull any syscall has
        toward its errno; the pristine environment keeps a fixed large
        weight so most programs still run on a healthy volume.
        """
        domain = [""]
        weights: dict[str, float] = {"": self.pristine_weight}
        targeted = self.weights.targeted_errnos()
        for env in _ENV_ERRNOS:
            strongest = max(
                (
                    self.weights.errno_weight(syscall, env)
                    for syscall, errnos in targeted.items()
                    if env in errnos
                ),
                default=1.0,
            )
            if strongest > 1.0:
                domain.append(env)
                weights[env] = strongest
        return domain, weights

    def _choose_env(self) -> str:
        if len(self._env_domain) == 1:
            return ""
        return self.rng.choices(
            self._env_domain,
            weights=[self._env_weights[env] for env in self._env_domain],
            k=1,
        )[0]

    def _setup_environment(
        self, program: FuzzProgram, fs: FileSystem, sc: SyscallInterface
    ) -> None:
        env = program.env
        if not env:
            return
        if env == "EROFS":
            fs.read_only = True
        elif env == "EBUSY":
            fs.frozen = True
        elif env == "ENOSPC":
            fs.device.reserve_all_free()
        elif env == "EDQUOT":
            # Exhaust the quota for an unprivileged uid, then run as it.
            sc.process.creds = Credentials(uid=_DROPPED_UID, gid=_DROPPED_UID)
            sc.chmod(self.mount_point, 0o777)
            fs.set_quota(_DROPPED_UID, 1)
        elif env == "EMFILE":
            sc.process.fd_table.max_fds = 1
        elif env == "EACCES":
            # Root-owned 0700 mount: every path op as the dropped uid
            # fails the search-permission check.
            sc.chmod(self.mount_point, 0o700)
            sc.process.creds = Credentials(uid=_DROPPED_UID, gid=_DROPPED_UID)

    # -- workload capture ------------------------------------------------------

    def _execute(self, program: FuzzProgram) -> list:
        self.programs.append(program)
        return super()._execute(program)

    def workload_text(self) -> str:
        """Every executed program rendered, in order (byte-stable)."""
        return "\n\n".join(program.render() for program in self.programs)
