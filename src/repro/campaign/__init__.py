"""Coverage-guided campaign engine: the closed feedback loop.

The paper measures input/output coverage; this package *acts* on it —
the LockDoc-style feedback-driven direction from PAPERS.md applied to
IOCov's TCD metric.  A campaign iterates generate → trace → analyze →
re-weight rounds until TCD stops improving:

* :mod:`repro.campaign.weights` — coverage gaps (via the same ranked
  ``suggest_tests`` list humans read) become mutation weights;
* :mod:`repro.campaign.mutate` — a weighted layer over the testsuites
  fuzzer biasing syscall mix, argument partitions, and errno-provoking
  environments toward untested partitions;
* :mod:`repro.campaign.runner` — the round loop with pluggable stop
  conditions, run-store persistence, and obs-service push;
* :mod:`repro.campaign.history` — byte-stable round records that
  round-trip through ``RunStore`` meta tags.

CLI: ``repro campaign`` (see USAGE.md §17).
"""

from repro.campaign.history import CampaignResult, RoundResult, rounds_from_store
from repro.campaign.mutate import WeightedFuzzer
from repro.campaign.runner import (
    CampaignError,
    CampaignRunner,
    RoundBudget,
    StopCondition,
    TcdPlateau,
    WallClock,
    aggregate_tcd,
    default_stop_conditions,
)
from repro.campaign.weights import DEFAULT_BOOST, WeightModel, boosted_distribution

__all__ = [
    "CampaignError",
    "CampaignResult",
    "CampaignRunner",
    "DEFAULT_BOOST",
    "RoundBudget",
    "RoundResult",
    "StopCondition",
    "TcdPlateau",
    "WallClock",
    "WeightModel",
    "WeightedFuzzer",
    "aggregate_tcd",
    "boosted_distribution",
    "default_stop_conditions",
    "rounds_from_store",
]
