"""The campaign re-weighting model: coverage gaps -> mutation bias.

The paper's closing argument is that coverage output should *drive*
test improvement.  This module is the conversion step of that loop: it
reads one round's :class:`~repro.core.report.CoverageReport` (via the
same ranked :func:`~repro.core.suggestions.suggest_tests` list a human
reads) and produces per-syscall, per-partition, and per-errno weights
the weighted fuzzer consumes next round.

Weight semantics are multiplicative relative to a uniform baseline of
1.0: a weight of 1.0 means "choose as often as an unweighted fuzzer
would", anything above 1.0 boosts the choice.  Weights are **never**
below 1.0 — the model only ever *adds* probability mass to untested
partitions, it never suppresses tested ones to zero (an already-tested
partition must keep accumulating observations for its count to approach
the TCD target).  That invariant is what the hypothesis property tests
in ``tests/campaign/test_weights.py`` pin down.

Everything is deterministic: construction iterates reports in sorted
order, serialization sorts keys, and :meth:`WeightModel.fingerprint`
hashes the canonical JSON so two rounds can be compared by digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:
    from repro.core.report import CoverageReport

#: Default boost applied to a targeted (untested) partition.
DEFAULT_BOOST = 8.0

#: Extra multiplier per suggestion priority class: boundary gaps get
#: the strongest pull, errno gaps next, ordinary partitions the base.
_PRIORITY_FACTOR = {0: 2.0, 1: 1.5, 2: 1.0}

#: Untested partitions *without* a suggestion recipe (identifier
#: ranges, undocumented whence values…) still get a mild boost so the
#: model never leaves a known gap completely unweighted.
_UNSUGGESTED_FACTOR = 0.5


class WeightModel:
    """Per-syscall / per-partition / per-errno mutation weights.

    Attributes:
        syscall_weights: base-syscall name -> weight (>= 1.0).
        input_weights: ``(syscall, arg)`` -> ``{partition: weight}``.
        errno_weights: base-syscall name -> ``{errno_name: weight}``.
    """

    def __init__(
        self,
        syscall_weights: Mapping[str, float] | None = None,
        input_weights: Mapping[tuple[str, str], Mapping[str, float]] | None = None,
        errno_weights: Mapping[str, Mapping[str, float]] | None = None,
    ) -> None:
        self.syscall_weights: dict[str, float] = dict(syscall_weights or {})
        self.input_weights: dict[tuple[str, str], dict[str, float]] = {
            pair: dict(weights) for pair, weights in (input_weights or {}).items()
        }
        self.errno_weights: dict[str, dict[str, float]] = {
            name: dict(weights) for name, weights in (errno_weights or {}).items()
        }

    # -- construction ---------------------------------------------------------

    @classmethod
    def uniform(cls) -> "WeightModel":
        """The round-0 model: every weight 1.0 (no bias anywhere)."""
        return cls()

    @classmethod
    def from_report(
        cls, report: "CoverageReport", boost: float = DEFAULT_BOOST
    ) -> "WeightModel":
        """Build weights from one round's coverage gaps.

        Consumes the *same ordered list* ``suggest_tests`` renders for
        humans: a suggested partition's weight scales with the boost
        and its priority class.  Untested partitions that have no
        recipe get a reduced boost; tested partitions stay at 1.0
        implicitly (absent keys mean weight 1.0).
        """
        from repro.core.suggestions import suggest_tests

        if boost < 0:
            raise ValueError("boost must be >= 0")
        model = cls()

        # Baseline: every untested partition is a (mildly) weighted
        # target, iterated in sorted order for determinism.
        for (syscall, arg), partitions in sorted(report.untested_inputs().items()):
            for partition in sorted(partitions):
                model._set_input(
                    syscall, arg, partition, 1.0 + boost * _UNSUGGESTED_FACTOR
                )
        for syscall, errnos in sorted(report.untested_outputs().items()):
            for errno_name in sorted(errnos):
                model._set_errno(
                    syscall, errno_name, 1.0 + boost * _UNSUGGESTED_FACTOR
                )

        # Suggested gaps override the baseline with priority-scaled
        # boosts — the weight model and the human read one ranking.
        for suggestion in suggest_tests(report, limit=None):
            factor = _PRIORITY_FACTOR.get(suggestion.priority, 1.0)
            weight = 1.0 + boost * factor
            kind, _, partition = suggestion.partition.partition(":")
            if kind == "output":
                model._set_errno(suggestion.syscall, partition, weight)
            else:
                model._set_input(suggestion.syscall, kind, partition, weight)

        # Syscall mix: pull the op-kind distribution toward syscalls
        # with the most absolute gap left to close.
        gap_by_syscall: dict[str, int] = {}
        for (syscall, _arg), partitions in report.untested_inputs().items():
            gap_by_syscall[syscall] = gap_by_syscall.get(syscall, 0) + len(partitions)
        for syscall, errnos in report.untested_outputs().items():
            gap_by_syscall[syscall] = gap_by_syscall.get(syscall, 0) + len(errnos)
        max_gap = max(gap_by_syscall.values(), default=0)
        if max_gap:
            for syscall in sorted(gap_by_syscall):
                share = gap_by_syscall[syscall] / max_gap
                model.syscall_weights[syscall] = 1.0 + boost * share
        return model

    def _set_input(self, syscall: str, arg: str, partition: str, weight: float) -> None:
        self.input_weights.setdefault((syscall, arg), {})[partition] = max(1.0, weight)

    def _set_errno(self, syscall: str, errno_name: str, weight: float) -> None:
        self.errno_weights.setdefault(syscall, {})[errno_name] = max(1.0, weight)

    # -- lookups --------------------------------------------------------------

    def syscall_weight(self, syscall: str) -> float:
        return self.syscall_weights.get(syscall, 1.0)

    def input_weight(self, syscall: str, arg: str, partition: str) -> float:
        return self.input_weights.get((syscall, arg), {}).get(partition, 1.0)

    def errno_weight(self, syscall: str, errno_name: str) -> float:
        return self.errno_weights.get(syscall, {}).get(errno_name, 1.0)

    def targeted_inputs(self) -> dict[tuple[str, str], list[str]]:
        """Partitions with weight > 1.0, per (syscall, arg), sorted."""
        return {
            pair: sorted(p for p, w in weights.items() if w > 1.0)
            for pair, weights in sorted(self.input_weights.items())
            if any(w > 1.0 for w in weights.values())
        }

    def targeted_errnos(self) -> dict[str, list[str]]:
        """Errnos with weight > 1.0, per syscall, sorted."""
        return {
            syscall: sorted(e for e, w in weights.items() if w > 1.0)
            for syscall, weights in sorted(self.errno_weights.items())
            if any(w > 1.0 for w in weights.values())
        }

    def is_uniform(self) -> bool:
        return not (self.syscall_weights or self.input_weights or self.errno_weights)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "syscalls": dict(sorted(self.syscall_weights.items())),
            "inputs": {
                f"{syscall}.{arg}": dict(sorted(weights.items()))
                for (syscall, arg), weights in sorted(self.input_weights.items())
            },
            "errnos": {
                syscall: dict(sorted(weights.items()))
                for syscall, weights in sorted(self.errno_weights.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "WeightModel":
        input_weights: dict[tuple[str, str], dict[str, float]] = {}
        for key, weights in data.get("inputs", {}).items():
            syscall, _, arg = key.partition(".")
            input_weights[(syscall, arg)] = dict(weights)
        return cls(
            syscall_weights=data.get("syscalls", {}),
            input_weights=input_weights,
            errno_weights=data.get("errnos", {}),
        )

    def fingerprint(self) -> str:
        """Stable short digest of the whole weight vector."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def boosted_distribution(
    domain: list[str], weights: Mapping[str, float]
) -> dict[str, float]:
    """Normalized choice distribution over *domain* under *weights*.

    Absent keys weigh 1.0; weights are floored at 1.0 (the model never
    suppresses).  Monotonicity property the campaign relies on (and
    hypothesis pins down): the total probability mass on the targeted
    set (keys with weight > 1.0) is >= the mass a uniform distribution
    gives that set, and when all targets share one boost value, every
    individual targeted key's probability is >= its uniform 1/n share.
    """
    if not domain:
        return {}
    raw = [max(1.0, weights.get(key, 1.0)) for key in domain]
    total = sum(raw)
    return {key: value / total for key, value in zip(domain, raw)}
