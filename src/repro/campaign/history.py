"""Campaign round history: the persistent record of the feedback loop.

One :class:`RoundResult` per generate → trace → analyze → re-weight
round, one :class:`CampaignResult` per campaign.  Both serialize to
plain dicts that are byte-stable under a fixed seed (no wall-clock
values — timing lives in the run store's ``wall_seconds`` column and
the benchmark file, never in the ``repro campaign --json`` envelope).

The same record round-trips through :class:`~repro.obs.store.RunStore`
meta tags (``campaign``/``round``/``tcd``/…), so a campaign's history
is reproducible from the store alone: :func:`rounds_from_store` is the
inverse the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:
    from repro.obs.store import BaseRunStore


@dataclass
class RoundResult:
    """One campaign round's outcome (cumulative coverage snapshot)."""

    index: int
    events: int
    corpus_size: int
    tcd: float
    tcd_delta: float  # improvement vs the previous round (+ = better)
    new_input_partitions: list[str] = field(default_factory=list)
    new_output_partitions: list[str] = field(default_factory=list)
    tested_inputs: int = 0
    tested_outputs: int = 0
    weights_fingerprint: str = ""
    run_id: int | None = None
    pushed: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "round": self.index,
            "events": self.events,
            "corpus_size": self.corpus_size,
            "tcd": round(self.tcd, 6),
            "tcd_delta": round(self.tcd_delta, 6),
            "new_input_partitions": list(self.new_input_partitions),
            "new_output_partitions": list(self.new_output_partitions),
            "tested_inputs": self.tested_inputs,
            "tested_outputs": self.tested_outputs,
            "weights_fingerprint": self.weights_fingerprint,
            "run_id": self.run_id,
            "pushed": self.pushed,
        }

    def meta(self, campaign: str, seed: int) -> dict[str, Any]:
        """The run-store meta tag for this round (satellite: campaign
        metadata rides in ``meta_json`` — no schema migration)."""
        return {
            "campaign": campaign,
            "round": self.index,
            "campaign_seed": seed,
            "tcd": round(self.tcd, 6),
            "tcd_delta": round(self.tcd_delta, 6),
            "new_input_partitions": list(self.new_input_partitions),
            "new_output_partitions": list(self.new_output_partitions),
            "weights_fingerprint": self.weights_fingerprint,
            "corpus_size": self.corpus_size,
        }

    @classmethod
    def from_meta(cls, record_meta: Mapping[str, Any], *, events: int,
                  run_id: int | None) -> "RoundResult":
        return cls(
            index=int(record_meta.get("round", 0)),
            events=events,
            corpus_size=int(record_meta.get("corpus_size", 0)),
            tcd=float(record_meta.get("tcd", 0.0)),
            tcd_delta=float(record_meta.get("tcd_delta", 0.0)),
            new_input_partitions=list(record_meta.get("new_input_partitions", [])),
            new_output_partitions=list(record_meta.get("new_output_partitions", [])),
            weights_fingerprint=str(record_meta.get("weights_fingerprint", "")),
            run_id=run_id,
        )


@dataclass
class CampaignResult:
    """The full trajectory of one campaign."""

    campaign: str
    seed: int
    iterations: int
    rounds: list[RoundResult] = field(default_factory=list)
    stop_reason: str = ""

    @property
    def baseline_tcd(self) -> float:
        return self.rounds[0].tcd if self.rounds else 0.0

    @property
    def final_tcd(self) -> float:
        return self.rounds[-1].tcd if self.rounds else 0.0

    def tcd_trajectory(self) -> list[float]:
        return [round(r.tcd, 6) for r in self.rounds]

    def new_partitions_after_baseline(self) -> tuple[list[str], list[str]]:
        """Partitions first covered by a *weighted* round (> round 0)."""
        inputs: list[str] = []
        outputs: list[str] = []
        for entry in self.rounds[1:]:
            inputs.extend(entry.new_input_partitions)
            outputs.extend(entry.new_output_partitions)
        return inputs, outputs

    def improved(self) -> bool:
        """Did the loop beat its round-0 baseline?"""
        if len(self.rounds) < 2:
            return False
        inputs, outputs = self.new_partitions_after_baseline()
        return self.final_tcd < self.baseline_tcd or bool(inputs or outputs)

    def to_dict(self) -> dict[str, Any]:
        inputs, outputs = self.new_partitions_after_baseline()
        return {
            "campaign": self.campaign,
            "seed": self.seed,
            "iterations": self.iterations,
            "rounds": [r.to_dict() for r in self.rounds],
            "tcd_trajectory": self.tcd_trajectory(),
            "baseline_tcd": round(self.baseline_tcd, 6),
            "final_tcd": round(self.final_tcd, 6),
            "improved": self.improved(),
            "new_input_partitions": inputs,
            "new_output_partitions": outputs,
            "stop_reason": self.stop_reason,
        }


def rounds_from_store(
    store: "BaseRunStore",
    campaign: str,
    *,
    tenant: str = "default",
    project: str = "default",
) -> list[RoundResult]:
    """Rebuild a campaign's round history from its stored runs."""
    records = store.list_runs(campaign=campaign, tenant=tenant, project=project)
    rounds = [
        RoundResult.from_meta(
            record.meta, events=record.events_processed, run_id=record.run_id
        )
        for record in records
    ]
    rounds.sort(key=lambda r: r.index)
    return rounds
