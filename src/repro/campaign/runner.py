"""The campaign control loop: generate → trace → analyze → re-weight.

Each round the runner:

1. **generates** a workload with the :class:`WeightedFuzzer` under the
   round's weight model (round 0 runs uniform — the baseline);
2. **traces** it to a real LTTng-text file via
   :class:`~repro.trace.lttng.LttngWriter`, so every round artifact is
   an ordinary trace any `repro` subcommand can consume;
3. **analyzes** it through the existing pipeline — serial batch parse
   or the ``--jobs`` shard pool — and merges into cumulative coverage;
4. **persists** the round (cumulative report + campaign meta tags) to
   a :class:`~repro.obs.store.BaseRunStore` and optionally pushes the
   round trace to a live obs daemon (``--serve-url``);
5. **re-weights** from the cumulative report and repeats until a stop
   condition fires.

Stop conditions are pluggable objects; the built-ins cover the round
budget, TCD plateau over K rounds, and a wall-clock budget.  TCD here
is the mean :func:`~repro.core.tcd.tcd_uniform` over every tracked
input argument and output vector at the store's default target — lower
is better, and it falls as accumulated partition counts climb toward
the target.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Iterable, Sequence

from repro.campaign.history import CampaignResult, RoundResult
from repro.campaign.mutate import WeightedFuzzer
from repro.campaign.weights import DEFAULT_BOOST, WeightModel
from repro.core import IOCov
from repro.core.input_coverage import InputCoverage
from repro.core.output_coverage import OutputCoverage
from repro.core.report import CoverageReport
from repro.obs.store import DEFAULT_TCD_TARGET, BaseRunStore
from repro.trace.lttng import LttngWriter


class CampaignError(RuntimeError):
    """A round failed in a way the loop cannot recover from."""


# -- stop conditions ----------------------------------------------------------


class StopCondition:
    """Decides after each round whether the campaign is done."""

    name = "stop"

    def should_stop(self, result: CampaignResult, elapsed: float) -> bool:
        raise NotImplementedError


class RoundBudget(StopCondition):
    """Stop after *rounds* weighted rounds (round 0 is free)."""

    name = "round_budget"

    def __init__(self, rounds: int = 3) -> None:
        if rounds < 1:
            raise ValueError("round budget must be >= 1")
        self.rounds = rounds

    def should_stop(self, result: CampaignResult, elapsed: float) -> bool:
        return len(result.rounds) >= self.rounds + 1


class TcdPlateau(StopCondition):
    """Stop when TCD improved less than *min_delta* for *rounds*
    consecutive weighted rounds."""

    name = "tcd_plateau"

    def __init__(self, rounds: int = 2, min_delta: float = 1e-3) -> None:
        if rounds < 1:
            raise ValueError("plateau window must be >= 1")
        self.rounds = rounds
        self.min_delta = min_delta

    def should_stop(self, result: CampaignResult, elapsed: float) -> bool:
        weighted = result.rounds[1:]
        if len(weighted) < self.rounds:
            return False
        return all(
            entry.tcd_delta < self.min_delta for entry in weighted[-self.rounds:]
        )


class WallClock(StopCondition):
    """Stop once the campaign has run for *max_seconds*."""

    name = "wall_clock"

    def __init__(self, max_seconds: float) -> None:
        if max_seconds <= 0:
            raise ValueError("wall-clock budget must be > 0")
        self.max_seconds = max_seconds

    def should_stop(self, result: CampaignResult, elapsed: float) -> bool:
        return elapsed >= self.max_seconds


def default_stop_conditions(
    rounds: int = 3,
    plateau_rounds: int = 2,
    min_delta: float = 1e-3,
    max_seconds: float | None = None,
) -> list[StopCondition]:
    conditions: list[StopCondition] = [
        RoundBudget(rounds),
        TcdPlateau(plateau_rounds, min_delta),
    ]
    if max_seconds is not None:
        conditions.append(WallClock(max_seconds))
    return conditions


# -- scoring ------------------------------------------------------------------


def aggregate_tcd(
    report: CoverageReport, target: float = DEFAULT_TCD_TARGET
) -> float:
    """Mean TCD over every tracked input argument and output vector."""
    scores = [
        report.input_tcd(syscall, arg, target)
        for syscall, arg in sorted(report.input_coverage.tracked_pairs())
    ]
    scores.extend(
        report.output_tcd(syscall, target)
        for syscall in sorted(report.output_coverage.tracked_syscalls())
    )
    return sum(scores) / len(scores) if scores else 0.0


def _tested_inputs(coverage: InputCoverage) -> set[str]:
    return {
        f"{syscall}.{arg}:{partition}"
        for syscall, arg in coverage.tracked_pairs()
        for partition in coverage.arg(syscall, arg).tested_partitions()
    }


def _tested_outputs(coverage: OutputCoverage) -> set[str]:
    return {
        f"{syscall}:{key}"
        for syscall in coverage.tracked_syscalls()
        for key, count in coverage.syscall(syscall).frequencies().items()
        if count
    }


# -- the runner ---------------------------------------------------------------


class CampaignRunner:
    """Drives a whole campaign; see the module docstring for the loop.

    Args:
        seed: master seed; each round derives its own fuzzer seed.
        iterations: fuzzer executions per round.
        campaign: campaign id (default derives from the seed, so the
            id — like everything else — is deterministic).
        stop_conditions: checked in order after every weighted round.
        store: run store for per-round persistence (optional).
        serve_url: push each round's trace to this obs daemon.
        jobs: analyze round traces with the shard worker pool.
        boost: weight boost for targeted partitions.
        trace_dir: keep round traces here (default: a temp dir).
    """

    def __init__(
        self,
        seed: int = 0,
        iterations: int = 200,
        campaign: str | None = None,
        stop_conditions: Sequence[StopCondition] | None = None,
        store: BaseRunStore | None = None,
        tenant: str = "default",
        project: str = "default",
        serve_url: str | None = None,
        jobs: int | None = None,
        boost: float = DEFAULT_BOOST,
        mount_point: str = "/mnt/fuzz",
        trace_dir: str | None = None,
    ) -> None:
        self.seed = seed
        self.iterations = iterations
        self.campaign = campaign or f"camp-{seed}"
        self.stop_conditions = list(
            stop_conditions if stop_conditions is not None
            else default_stop_conditions()
        )
        if not self.stop_conditions:
            raise ValueError("a campaign needs at least one stop condition")
        self.store = store
        self.tenant = tenant
        self.project = project
        self.serve_url = serve_url
        self.jobs = jobs
        self.boost = boost
        self.mount_point = mount_point
        self.trace_dir = trace_dir

    # -- round plumbing -------------------------------------------------------

    def _round_seed(self, index: int) -> int:
        # Knuth multiplicative spread: distinct, reproducible per round.
        return (self.seed * 2654435761 + index * 40503) % (1 << 32)

    def _write_trace(self, events: Iterable, directory: str, index: int) -> str:
        path = os.path.join(
            directory, f"{self.campaign}-round{index}.lttng.txt"
        )
        with open(path, "w", encoding="utf-8") as handle:
            LttngWriter().write(events, handle)
        return path

    def _analyze(self, path: str, index: int) -> CoverageReport:
        label = f"{self.campaign}@r{index}"
        if self.jobs is not None:
            from repro.parallel import run_sharded

            return run_sharded(
                path,
                fmt="lttng",
                jobs=self.jobs or None,
                mount_point=self.mount_point,
                suite_name=label,
            )
        iocov = IOCov(mount_point=self.mount_point, suite_name=label)
        iocov.consume_lttng_file(path)
        return iocov.report()

    def _push(self, path: str) -> bool:
        if not self.serve_url:
            return False
        from repro.obs.client import PushError, push_file

        try:
            push_file(
                self.serve_url,
                path,
                finalize=True,
                tenant=None if self.tenant == "default" else self.tenant,
                project=None if self.project == "default" else self.project,
            )
        except (OSError, PushError, ValueError) as exc:
            raise CampaignError(f"push to {self.serve_url} failed: {exc}") from exc
        return True

    # -- the loop -------------------------------------------------------------

    def run(self) -> CampaignResult:
        result = CampaignResult(
            campaign=self.campaign, seed=self.seed, iterations=self.iterations
        )
        started = time.monotonic()
        cumulative_in = InputCoverage()
        cumulative_out = OutputCoverage()
        events_total = 0
        admitted_total = 0
        untracked_total: dict[str, int] = {}
        weights = WeightModel.uniform()
        corpus: list = []
        previous_tcd: float | None = None

        with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
            directory = self.trace_dir or tmp
            if self.trace_dir:
                os.makedirs(self.trace_dir, exist_ok=True)
            index = 0
            while True:
                fuzzer = WeightedFuzzer(
                    weights=weights,
                    seed=self._round_seed(index),
                    mount_point=self.mount_point,
                )
                fuzzer.corpus = list(corpus)  # stepping stones carry over
                fuzz_report = fuzzer.run(iterations=self.iterations)
                corpus = list(fuzzer.corpus)

                trace_path = self._write_trace(
                    fuzzer.all_events, directory, index
                )
                round_wall = time.monotonic()
                round_report = self._analyze(trace_path, index)
                round_wall = time.monotonic() - round_wall

                before_in = _tested_inputs(cumulative_in)
                before_out = _tested_outputs(cumulative_out)
                cumulative_in.merge(round_report.input_coverage)
                cumulative_out.merge(round_report.output_coverage)
                events_total += round_report.events_processed
                admitted_total += round_report.events_admitted
                for name, count in round_report.untracked.items():
                    untracked_total[name] = untracked_total.get(name, 0) + count

                snapshot = CoverageReport(
                    suite_name=f"campaign:{self.campaign}",
                    input_coverage=cumulative_in,
                    output_coverage=cumulative_out,
                    events_processed=events_total,
                    events_admitted=admitted_total,
                    untracked=dict(untracked_total),
                )
                tcd = aggregate_tcd(snapshot)
                entry = RoundResult(
                    index=index,
                    events=round_report.events_processed,
                    corpus_size=fuzz_report.corpus_size,
                    tcd=tcd,
                    tcd_delta=(
                        0.0 if previous_tcd is None else previous_tcd - tcd
                    ),
                    new_input_partitions=sorted(
                        _tested_inputs(cumulative_in) - before_in
                    ),
                    new_output_partitions=sorted(
                        _tested_outputs(cumulative_out) - before_out
                    ),
                    tested_inputs=len(_tested_inputs(cumulative_in)),
                    tested_outputs=len(_tested_outputs(cumulative_out)),
                    weights_fingerprint=weights.fingerprint(),
                )
                previous_tcd = tcd

                if self.store is not None:
                    entry.run_id = self.store.save_report(
                        snapshot,
                        trace_path=trace_path,
                        trace_format="lttng",
                        seed=self.seed,
                        jobs=self.jobs,
                        wall_seconds=round_wall,
                        meta=entry.meta(self.campaign, self.seed),
                        tenant=self.tenant,
                        project=self.project,
                    )
                entry.pushed = self._push(trace_path)
                result.rounds.append(entry)

                if not snapshot.untested_inputs() and not snapshot.untested_outputs():
                    result.stop_reason = "saturated"
                    break
                stopped = next(
                    (
                        condition
                        for condition in self.stop_conditions
                        if condition.should_stop(
                            result, time.monotonic() - started
                        )
                    ),
                    None,
                )
                if stopped is not None:
                    result.stop_reason = stopped.name
                    break

                weights = WeightModel.from_report(snapshot, boost=self.boost)
                index += 1
        return result
