"""Sharded trace analysis: fan out, stitch, merge — exactly.

:func:`run_sharded` splits a trace file into line-aligned byte spans,
analyzes each span in a worker process (parse → shard-local filter →
count), then combines the shard states into a report **bit-identical**
to a sequential pass.  Exactness rests on three mechanisms:

1. **Counter merging** — every coverage tally is a sum, so shard
   states fold together losslessly (:meth:`ShardResult.merge`,
   tree-reduced).
2. **Filter fixup replay** — events a shard could not decide locally
   (they hinge on pre-shard fd state) were deferred; the parent
   replays each shard's op log, deferred events, and boundary pairs in
   stream order against a real :class:`TraceFilter`, reconstructing
   the exact sequential fd table at every decision point.
3. **LTTng boundary stitching** — exit lines orphaned by a shard cut
   are paired with entry lines carried over from earlier shards.  When
   shard-local pairing *might* have diverged from sequential FIFO
   pairing (carried entries still queued when a shard paired locally),
   the executor detects it and falls back to a sequential pass rather
   than return an inexact result.

The fallback path means the parity guarantee is unconditional; the
fast path merely becomes the common case (real traces pair entry and
exit lines adjacently, so carried queues drain immediately).
"""

from __future__ import annotations

import heapq
import os
import queue
import threading
from collections import defaultdict, deque
from typing import Any

from repro.core.analyzer import IOCov
from repro.core.report import CoverageReport
from repro.parallel.pool import PoolError, get_pool, pool_is_warm
from repro.parallel.shardfilter import OP_ADD
from repro.parallel.sharding import DEFAULT_MIN_SHARD_BYTES, shard_spans
from repro.parallel.worker import (
    FORMATS,
    ShardResult,
    ShardTask,
    analyze_shard,
)
from repro.trace.batch import make_parse_stats
from repro.trace.lttng import pair_event
from repro.trace.syzkaller import scan_resource_bindings

#: Below this many *estimated* events per worker, fan-out costs more
#: than it saves; the executor runs sequentially instead.  Two
#: thresholds, because the dominant cost differs by an order of
#: magnitude: a *cold* call pays worker startup (~18 ms/worker
#: measured), a *warm* call only pays shared-memory handoff and result
#: pickling.
MIN_SHARD_EVENTS = 4096
MIN_SHARD_EVENTS_WARM = 1024

#: Extra shard payloads the reader thread may stage beyond the worker
#: count — the pipeline depth of the parse→analyze overlap.
PIPELINE_SLACK = 2

#: Bytes sampled from the head of the file to estimate the event count.
_SAMPLE_BYTES = 128 * 1024


class ShardAmbiguityError(RuntimeError):
    """Shard-local LTTng pairing may differ from the sequential pairing.

    Raised during the stitch phase when a shard paired an exit with a
    local entry while entries carried over from earlier shards were
    still queued for the same (pid, syscall) — sequential FIFO pairing
    would have consumed the carried entry instead.  The executor
    answers by re-running sequentially; results stay exact.
    """


def run_sharded(
    path: str,
    *,
    fmt: str = "lttng",
    jobs: int | None = None,
    mount_point: str | None = None,
    suite_name: str | None = None,
    inline: bool = False,
    min_shard_bytes: int = DEFAULT_MIN_SHARD_BYTES,
    stats: dict | None = None,
) -> CoverageReport:
    """Analyze *path* with up to *jobs* workers; exact parity guaranteed.

    Args:
        path: trace file (LTTng text, strace, or syzkaller format).
        fmt: one of ``lttng`` / ``strace`` / ``syzkaller``.
        jobs: worker count; defaults to the machine's CPU count.
        mount_point: tester mount point for the scoping filter (same
            meaning as :class:`IOCov`'s); None accepts everything.
        suite_name: report label; defaults to *path*.
        inline: run shards in-process instead of a process pool —
            deterministic single-process mode for tests and debugging.
        min_shard_bytes: floor on shard size; small files get fewer
            shards rather than micro-shards.
        stats: optional dict the executor fills with how the run
            actually executed (``shards``, ``sequential_fallback``) —
            recorded in the run store so a stored run names the
            topology that produced it.

    Returns:
        A :class:`CoverageReport` bit-identical to the sequential
        ``IOCov(...).consume_<fmt>_file(path).report()``.
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown trace format: {fmt!r}")
    suite = suite_name if suite_name is not None else path
    cpus = os.cpu_count() or 1
    if jobs is None:
        jobs = cpus
    requested = jobs
    if not inline and jobs > cpus:
        # More workers than cores is pure fork/pickle overhead: each
        # extra process time-slices the same CPUs it shares with the
        # others (the measured negative scaling on small machines).
        jobs = cpus
    if stats is None:
        stats = {}
    stats.update(jobs_requested=requested, jobs_effective=jobs)
    if jobs < requested:
        stats["degrade_reason"] = "cpu_clamp"
    spans = shard_spans(path, jobs, min_shard_bytes=min_shard_bytes)
    stats.update(shards=len(spans), sequential_fallback=False, pool_skipped=False)
    if len(spans) <= 1:
        stats.update(shards=1)
        if requested > 1:
            stats.setdefault("degrade_reason", "small_file")
        return _run_sequential(path, fmt, mount_point, suite, stats)
    warm = pool_is_warm()
    threshold = MIN_SHARD_EVENTS_WARM if warm else MIN_SHARD_EVENTS
    if not inline and _estimate_events(path, fmt) < jobs * threshold:
        # Not enough work to amortize the fan-out: the pool would
        # *lose* wall-clock time against the batch sequential path
        # (the measured --jobs regression on small traces).  A warm
        # pool lowers the bar — dispatch costs microseconds, not the
        # cold per-worker startup.
        stats.update(shards=1, pool_skipped=True)
        stats.setdefault("degrade_reason", "min_shard_events")
        return _run_sequential(path, fmt, mount_point, suite, stats)

    if fmt == "syzkaller":
        snapshots = _syzkaller_snapshots(path, [start for start, _ in spans])
    else:
        snapshots = [None] * len(spans)
    tasks = [
        ShardTask(
            index=index,
            path=path,
            start=start,
            end=end,
            fmt=fmt,
            mount_point=mount_point,
            resources=snapshots[index],
        )
        for index, (start, end) in enumerate(spans)
    ]

    merged: ShardResult | None = None
    if inline:
        results = [analyze_shard(task) for task in tasks]
    else:
        try:
            results, merged = _run_pool_pipelined(path, tasks, jobs, warm, stats)
        except PoolError as exc:
            # Pool unavailable or a worker died mid-call: the parity
            # guarantee is unconditional, so re-run sequentially.
            stats.update(
                sequential_fallback=True, fallback_reason=type(exc).__name__
            )
            return _run_sequential(path, fmt, mount_point, suite, stats)

    residue: dict[str, int] = {}
    try:
        combined = _stitch_and_merge(results, mount_point, suite, residue, merged)
    except ShardAmbiguityError:
        stats.update(sequential_fallback=True, fallback_reason="shard_ambiguity")
        return _run_sequential(path, fmt, mount_point, suite, stats)
    stats["parse"] = make_parse_stats(
        fmt,
        sum(result.skipped_lines for result in results)
        + residue.get("unstitched_orphans", 0),
        sum(result.malformed_lines for result in results),
        residue.get("unpaired_entries", 0),
    )
    return combined.report()


def _estimate_events(path: str, fmt: str) -> int:
    """Cheap event-count estimate from a head sample of the file.

    Average line length over the first :data:`_SAMPLE_BYTES` scales to
    the file size; LTTng needs two lines (entry + exit) per event.
    """
    size = os.path.getsize(path)
    if size == 0:
        return 0
    with open(path, "rb") as handle:
        sample = handle.read(_SAMPLE_BYTES)
    newlines = sample.count(b"\n")
    if newlines == 0:
        return 1
    estimated_lines = size * newlines // len(sample)
    return estimated_lines // 2 if fmt == "lttng" else estimated_lines


def _run_pool_pipelined(
    path: str,
    tasks: list[ShardTask],
    jobs: int,
    warm: bool,
    stats: dict,
) -> tuple[list[ShardResult], ShardResult]:
    """The pipelined scheduler over the persistent worker pool.

    Three stages overlap:

    * a **reader thread** walks the spans in file order, reads each
      span's bytes, and hands them to the pool through shared memory —
      staying at most ``workers + PIPELINE_SLACK`` spans ahead so a
      huge trace never materializes in memory at once;
    * **workers** parse and count each span as soon as its bytes land;
    * the **caller thread** folds shard tallies together *in completion
      order* — the stream-merge half of :func:`tree_merge`'s job — so
      merging the fast shards overlaps the slow shards' counting
      instead of barriering on the whole fan-out.

    Only the order-sensitive stitch residue waits for every shard.

    Returns ``(results_by_index, merged_tallies)``.

    Raises:
        PoolError: the pool could not be started, or a worker died
            with a shard in flight (the caller falls back sequential).
    """
    pool = get_pool(jobs)
    stats["pool"] = {
        "warm": warm,
        "workers": pool.workers,
        "cold_start_seconds": None if warm else round(pool.cold_start_seconds, 4),
    }
    done: queue.Queue = queue.Queue()
    slots = threading.Semaphore(pool.workers + PIPELINE_SLACK)
    abort = threading.Event()

    def feed() -> None:
        try:
            with open(path, "rb") as handle:
                for task in tasks:
                    slots.acquire()
                    if abort.is_set():
                        return
                    handle.seek(task.start)
                    data = handle.read(task.end - task.start)
                    future = pool.submit_shard(
                        task, data, worker=task.index % pool.workers
                    )
                    future.add_done_callback(
                        lambda f, index=task.index: done.put((index, f))
                    )
        except BaseException as exc:  # noqa: BLE001 - forwarded to caller
            done.put((None, exc))

    reader = threading.Thread(target=feed, name="iocov-shard-reader", daemon=True)
    reader.start()

    results: list[ShardResult | None] = [None] * len(tasks)
    merged: ShardResult | None = None
    try:
        for _ in range(len(tasks)):
            index, future = done.get()
            if index is None:
                raise future if isinstance(future, BaseException) else PoolError(
                    str(future)
                )
            slots.release()
            _incarnation, result = future.result()
            results[index] = result
            # Stream-merge: tallies fold as shards finish, any order.
            merged = result if merged is None else merged.merge(result)
    except BaseException:
        abort.set()
        # Unblock the reader if it is parked on the pipeline bound.
        for _ in tasks:
            slots.release()
        raise
    finally:
        reader.join(timeout=5)
    return results, merged


def _run_sequential(
    path: str, fmt: str, mount_point: str | None, suite: str, stats: dict
) -> CoverageReport:
    """The reference path: one batch-streaming pass (also the fallback)."""
    iocov = IOCov(mount_point=mount_point, suite_name=suite)
    getattr(iocov, f"consume_{fmt}_file")(path)
    stats["parse"] = iocov.parse_stats
    return iocov.report()


def _syzkaller_snapshots(path: str, starts: list[int]) -> list[dict[str, int]]:
    """Resource table at each shard start, via one cheap text pre-scan.

    Syzkaller's ``rN`` bindings allocate placeholder fds sequentially,
    so a shard parsing mid-file needs the bindings every earlier line
    established.  Scanning just the binding pattern is far cheaper
    than full parsing and keeps the parallel speedup worthwhile.
    """
    snapshots: list[dict[str, int]] = [{}]
    resources: dict[str, int] = {}
    offset = 0
    next_cut = 1
    with open(path, "rb") as handle:
        for raw in handle:
            if next_cut >= len(starts):
                break
            if offset >= starts[next_cut]:
                snapshots.append(dict(resources))
                next_cut += 1
                if next_cut >= len(starts):
                    break
            scan_resource_bindings(raw.decode("utf-8"), resources)
            offset += len(raw)
    while len(snapshots) < len(starts):
        snapshots.append(dict(resources))
    return snapshots


def tree_merge(results: list[ShardResult]) -> ShardResult:
    """Pairwise-reduce shard results: O(log n) merge depth."""
    items = list(results)
    if not items:
        raise ValueError("no shard results to merge")
    while len(items) > 1:
        merged: list[ShardResult] = []
        for i in range(0, len(items) - 1, 2):
            merged.append(items[i].merge(items[i + 1]))
        if len(items) % 2:
            merged.append(items[-1])
        items = merged
    return items[0]


def _stitch_and_merge(
    results: list[ShardResult],
    mount_point: str | None,
    suite: str,
    residue: dict | None = None,
    merged: ShardResult | None = None,
) -> IOCov:
    """Replay the cross-shard residue, then fold all tallies together.

    The fixup analyzer's real filter is driven through the exact
    sequence of fd-table mutations the sequential run would perform:
    shard op logs, deferred-event decisions, and stitched boundary
    events, interleaved in stream order by their sequence numbers.

    *residue* (if given) receives the parse-stat contributions only the
    stitch phase knows: orphan exits no earlier entry matched (the
    sequential parser counts them skipped) and entry lines whose exits
    never arrived (the sequential parser's unpaired count).

    *merged* carries tallies the pipelined scheduler already
    stream-merged in completion order; when absent (the inline path)
    they are tree-merged here.  Both are exact — every tally is a sum.
    """
    fixup = IOCov(mount_point=mount_point, suite_name=suite)
    real = fixup.filter
    carried: dict[tuple[int, str], deque] = defaultdict(deque)
    unstitched_orphans = 0

    for result in sorted(results, key=lambda r: r.index):
        # Prove shard-local pairing matched sequential FIFO pairing:
        # every carried entry for a key must have been consumed by
        # orphan exits before the shard's first local pair of that key.
        for key, orphans_before in result.first_pair_orphans.items():
            if len(carried[key]) > orphans_before:
                raise ShardAmbiguityError(
                    f"carried entries for {key} still queued at a local pair"
                )

        records = heapq.merge(
            ((seq, 0, payload) for seq, *payload in result.ops),
            ((seq, 1, payload) for seq, payload in result.orphans),
            ((seq, 2, payload) for seq, payload in result.iter_deferred()),
            key=lambda record: record[0],
        )
        for _seq, tag, payload in records:
            if tag == 0:  # definite fd-table mutation from the shard
                pid, op, fd = payload
                if op == OP_ADD:
                    real.register_fd(pid, fd)
                else:
                    real.retire_fd(pid, fd)
            elif tag == 1:  # orphan exit: pair with a carried entry
                ns, name, pid, comm, fields = payload
                queue = carried[(pid, name)]
                if queue:
                    entry_ns, entry_comm, args = queue.popleft()
                    event = pair_event(
                        name, args, fields, pid, entry_comm or comm, entry_ns
                    )
                    fixup.consume_event(event)
                else:
                    # Exit with no entry anywhere before it — the
                    # sequential parser counts it as a skipped line.
                    unstitched_orphans += 1
            else:  # deferred event: decide against the true fd state
                if real.admit(payload):
                    fixup.count_admitted(payload)

        for key, entries in result.pending.items():
            carried[key].extend(entries)

    if residue is not None:
        residue["unstitched_orphans"] = unstitched_orphans
        residue["unpaired_entries"] = sum(len(q) for q in carried.values())
    top = merged if merged is not None else tree_merge(results)
    fixup.input.merge(top.input)
    fixup.output.merge(top.output)
    fixup.untracked.update(top.untracked)
    fixup.events_processed += top.events_processed
    fixup.events_admitted += top.events_admitted
    return fixup
