"""Per-shard analysis: parse → filter → count, with stitch residue.

A worker consumes one byte span of the trace file and produces a
:class:`ShardResult` — its coverage tallies plus everything the parent
needs to make the combined result *bit-identical* to a sequential
pass:

* the :class:`~repro.parallel.shardfilter.ShardFilter` op log and
  deferred events (stateful mount-point filtering across shards);
* LTTng pairing residue: orphan exit lines (entry in an earlier
  shard) and pending entry lines (exit in a later shard), plus the
  per-key diagnostics the parent uses to prove local pairing was
  position-exact.

Every record in the shard gets a sequence number (``seq``) in stream
order; ops, deferred events, and orphans all carry their seq so the
parent can interleave its fixup replay at exactly the right points.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.core.analyzer import IOCov
from repro.core.filter import TraceFilter
from repro.core.input_coverage import InputCoverage
from repro.core.output_coverage import OutputCoverage
from repro.parallel.shardfilter import FdOp, ShardFilter
from repro.parallel.sharding import iter_span_chunks, iter_span_lines
from repro.trace.batch import StraceBatchParser, SyzkallerBatchParser
from repro.trace.binary import decode_batch, encode_batch
from repro.trace.events import SyscallEvent
from repro.trace.lttng import LttngParser, OrphanExit

#: Trace formats the sharded pipeline understands.
FORMATS = ("lttng", "strace", "syzkaller")

#: (pid, name) -> pending LTTng entries (ns, comm, args), stream order.
PendingMap = dict[tuple[int, str], list[tuple[int, str, dict[str, Any]]]]


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs; must stay cheaply picklable."""

    index: int
    path: str
    start: int
    end: int
    fmt: str
    mount_point: str | None
    #: syzkaller resource table at the shard's first line (from the
    #: executor's sequential pre-scan); None for other formats.
    resources: dict[str, int] | None = None


@dataclass
class ShardResult:
    """One shard's tallies plus the residue the stitch phase consumes."""

    index: int
    input: InputCoverage
    output: OutputCoverage
    untracked: Counter
    events_processed: int
    events_admitted: int
    #: definite fd-table mutations, (seq, pid, op, fd), stream order
    ops: list[FdOp] = field(default_factory=list)
    #: events whose filter verdict needs pre-shard fd state
    deferred: list[tuple[int, SyscallEvent]] = field(default_factory=list)
    #: LTTng exit lines whose entries live in an earlier shard
    orphans: list[tuple[int, OrphanExit]] = field(default_factory=list)
    #: LTTng entry lines whose exits live in a later shard
    pending: PendingMap = field(default_factory=dict)
    #: (pid, name) -> orphan exits seen before the first *local* pair
    #: for that key; the parent proves local pairing exact by checking
    #: the carried-over entry queue was drained by then.
    first_pair_orphans: dict[tuple[int, str], int] = field(default_factory=dict)
    #: parser drop counters for this shard's span (summed by the parent
    #: into the run-level parse stats).
    skipped_lines: int = 0
    malformed_lines: int = 0
    #: deferred events shipped as one encoded ``.rbt`` frame instead of
    #: a pickled event list (cheaper IPC); ``deferred_seqs`` carries the
    #: matching stream positions.  When set, ``deferred`` is empty.
    deferred_blob: bytes | None = None
    deferred_seqs: list[int] | None = None

    def iter_deferred(self):
        """Yield ``(seq, event)`` regardless of the transport encoding."""
        if self.deferred_blob is not None:
            return zip(self.deferred_seqs, decode_batch(self.deferred_blob).iter_events())
        return iter(self.deferred)

    def merge(self, other: "ShardResult") -> "ShardResult":
        """Fold another shard's coverage tallies in (exact: sums).

        Only the mergeable tallies combine — stitch residue (ops,
        deferred, orphans, pending) is consumed separately by the
        parent and is not carried through merges.
        """
        self.input.merge(other.input)
        self.output.merge(other.output)
        self.untracked.update(other.untracked)
        self.events_processed += other.events_processed
        self.events_admitted += other.events_admitted
        return self


def _feed(iocov: IOCov, shard_filter: ShardFilter | None, seq: int, event: SyscallEvent) -> None:
    """Route one event: count locally-admitted, tally the rest.

    Deferred events count as *processed* here (the worker saw them);
    the parent's replay adds only the admitted/coverage side, via
    :meth:`IOCov.count_admitted`.
    """
    if shard_filter is None:
        iocov.consume_event(event, prefiltered=True)
        return
    if shard_filter.admit_local(seq, event) is True:
        iocov.consume_event(event, prefiltered=True)
    else:
        iocov.events_processed += 1


def analyze_shard(task: ShardTask) -> ShardResult:
    """Analyze one byte span of the trace file (runs in a worker).

    The file-reading entry point: streams the span off disk.  The
    pool's shared-memory path hands the span bytes over directly via
    :func:`analyze_shard_data` instead.
    """
    return _analyze_shard_impl(task, data=None)


def analyze_shard_data(task: ShardTask, data: str) -> ShardResult:
    """Analyze one shard whose span text was delivered in memory.

    *data* is the exact decoded text of the span ``[start, end)`` —
    what the executor's reader thread placed in the shared-memory
    segment.  Results are identical to :func:`analyze_shard` reading
    the same span from ``task.path``.
    """
    return _analyze_shard_impl(task, data=data)


def _analyze_shard_impl(task: ShardTask, data: str | None) -> ShardResult:
    if task.fmt not in FORMATS:
        raise ValueError(f"unknown trace format: {task.fmt!r}")
    iocov = IOCov(suite_name=f"shard-{task.index}")
    shard_filter = (
        ShardFilter(TraceFilter.for_mount_point(task.mount_point))
        if task.mount_point is not None
        else None
    )

    orphans: list[tuple[int, OrphanExit]] = []
    pending: PendingMap = {}
    first_pair_orphans: dict[tuple[int, str], int] = {}
    skipped = malformed = 0

    if task.fmt == "lttng":
        # Entry/exit pairing and the orphan/pending stitch residue need
        # the record stream, so LTTng shards stay on the per-line
        # reader (whose fast line grammar does the heavy lifting).
        if data is None:
            lines = iter_span_lines(task.path, task.start, task.end)
        else:
            lines = data.splitlines(keepends=True)
        parser = LttngParser()
        orphan_seen: dict[tuple[int, str], int] = {}
        seq = 0
        for kind, payload in parser.parse_records(lines):
            if kind == "orphan":
                ns, name, pid, comm, fields = payload
                key = (pid, name)
                orphan_seen[key] = orphan_seen.get(key, 0) + 1
                orphans.append((seq, payload))
            else:
                event = payload
                key = (event.pid, event.name)
                if key not in first_pair_orphans:
                    first_pair_orphans[key] = orphan_seen.get(key, 0)
                _feed(iocov, shard_filter, seq, event)
            seq += 1
        pending = parser.pending_entries
        skipped = parser.skipped_lines
        malformed = parser.malformed_lines
    else:
        # Self-contained line formats: batch-parse the span chunk by
        # chunk; rows feed the analyzer without event construction.
        parser = (
            StraceBatchParser()
            if task.fmt == "strace"
            else SyzkallerBatchParser(resources=task.resources)
        )
        if data is None:
            chunks = iter_span_chunks(task.path, task.start, task.end)
        else:
            # In-memory span: one chunk (batch parsing is chunking-
            # independent, property-tested in tests/trace/test_batch.py).
            chunks = (data,) if data else ()
        if shard_filter is None:
            for chunk in chunks:
                iocov._ingest_rows(parser.parse_chunk(chunk))
        else:
            admit_row = shard_filter.admit_local_row
            count_record = iocov.count_admitted_record
            seq = 0
            for chunk in chunks:
                for row in parser.parse_chunk(chunk):
                    if admit_row(seq, row) is True:
                        count_record(row[0], row[1], row[2], row[3])
                    seq += 1
                iocov.events_processed = seq
        skipped = parser.skipped_lines
        malformed = parser.malformed_lines

    deferred = shard_filter.deferred if shard_filter is not None else []
    deferred_blob = None
    deferred_seqs = None
    if deferred:
        # Ship the deferred events as one encoded frame: cheaper to
        # pickle than a list of event objects, decoded lazily by the
        # parent's stitch phase.
        deferred_seqs = [seq for seq, _ in deferred]
        deferred_blob = encode_batch(
            [
                (e.name, e.args, e.retval, e.errno, e.pid, e.comm, e.timestamp)
                for _, e in deferred
            ]
        )
        deferred = []

    return ShardResult(
        index=task.index,
        input=iocov.input,
        output=iocov.output,
        untracked=iocov.untracked,
        events_processed=iocov.events_processed,
        events_admitted=iocov.events_admitted,
        ops=shard_filter.ops if shard_filter is not None else [],
        deferred=deferred,
        orphans=orphans,
        pending=pending,
        first_pair_orphans=first_pair_orphans,
        skipped_lines=skipped,
        malformed_lines=malformed,
        deferred_blob=deferred_blob,
        deferred_seqs=deferred_seqs,
    )
