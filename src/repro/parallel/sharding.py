"""Byte-range sharding of text trace files.

A shard is a half-open byte span ``[start, end)`` of the file, aligned
to line boundaries so no record straddles two shards.  Alignment is
cheap: seek to the approximate cut point, read to the next newline,
and cut there — no full scan of the file is needed to plan the shards.
"""

from __future__ import annotations

import os
from typing import Iterator

#: A half-open byte range of the trace file, aligned to line starts.
Span = tuple[int, int]

#: Below this size a shard is not worth a worker; :func:`shard_spans`
#: reduces the shard count rather than hand out micro-shards.
DEFAULT_MIN_SHARD_BYTES = 4096


def shard_spans(
    path: str, jobs: int, *, min_shard_bytes: int = DEFAULT_MIN_SHARD_BYTES
) -> list[Span]:
    """Split *path* into up to *jobs* line-aligned byte spans.

    Spans are contiguous (``spans[i][1] == spans[i + 1][0]``), cover
    the whole file, and every span starts at a line start.  Fewer than
    *jobs* spans are returned when the file is small or its lines are
    long enough that some cut points collapse.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    size = os.path.getsize(path)
    if size == 0 or jobs == 1:
        return [(0, size)]
    if min_shard_bytes > 0:
        jobs = min(jobs, max(1, size // min_shard_bytes))
    cuts = [0]
    with open(path, "rb") as handle:
        for index in range(1, jobs):
            target = size * index // jobs
            if target <= cuts[-1]:
                continue
            handle.seek(target)
            handle.readline()  # advance to the next line start
            cut = handle.tell()
            if cut >= size:
                break
            if cut > cuts[-1]:
                cuts.append(cut)
    cuts.append(size)
    return [(cuts[i], cuts[i + 1]) for i in range(len(cuts) - 1)]


#: Bytes per chunk for :func:`iter_span_chunks`.
DEFAULT_SPAN_CHUNK_BYTES = 1 << 20


def iter_span_chunks(
    path: str, start: int, end: int, chunk_bytes: int = DEFAULT_SPAN_CHUNK_BYTES
) -> Iterator[str]:
    """Stream one span as newline-aligned text chunks (batch parsing).

    Concatenating the chunks yields exactly the bytes of
    :func:`iter_span_lines` over the same span, but in a handful of
    big pieces instead of per-line strings.
    """
    with open(path, "rb") as handle:
        handle.seek(start)
        remaining = end - start
        while remaining > 0:
            raw = handle.read(min(chunk_bytes, remaining))
            if not raw:
                break
            remaining -= len(raw)
            if remaining > 0 and not raw.endswith(b"\n"):
                tail = handle.readline()
                remaining -= len(tail)
                raw += tail
            yield raw.decode("utf-8")


def iter_span_lines(path: str, start: int, end: int) -> Iterator[str]:
    """Stream the lines of one span, decoded like a sequential parse.

    The span must be line-aligned (produced by :func:`shard_spans`);
    byte accounting — not content — decides where the span ends, so a
    worker reads exactly its slice of the file.
    """
    with open(path, "rb") as handle:
        handle.seek(start)
        remaining = end - start
        while remaining > 0:
            raw = handle.readline()
            if not raw:
                break
            remaining -= len(raw)
            yield raw.decode("utf-8")
