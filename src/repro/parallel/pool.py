"""Persistent worker-pool runtime with shared-memory handoff.

:class:`WorkerPool` is the shared parallel substrate under both
``repro analyze --jobs`` and the obs daemon's ``--analysis-workers``
mode.  It fixes the two structural costs the benchmark history pinned
on the old per-call ``ProcessPoolExecutor``:

* **spawn-once, stay warm** — workers are OS processes started once
  (fork preferred: the ~18 ms/worker import cost is paid a single
  time) and reused across every subsequent call.  A warm dispatch is a
  queue put, not a process launch.
* **shared-memory handoff** — bulk payloads (trace shard spans, parsed
  event batches, deferred-event ``.rbt`` blobs) travel through
  :mod:`multiprocessing.shared_memory` segments read via
  :class:`memoryview`, not pickled through the pool's pipes.  Only
  small descriptors and tallies ride the task/result queues.

Scheduling is asynchronous: :meth:`WorkerPool.submit_shard` /
:meth:`WorkerPool.submit_parse` return :class:`PoolFuture`\\ s
immediately, so a producer (the executor's reader thread, an ingest
session's worker thread) can keep feeding while workers compute —
the parse→analyze overlap the executor's pipelined scheduler builds
on.  Tasks can be pinned to a worker index, which gives the obs
daemon namespace→worker **affinity**: one worker owns a namespace's
persistent batch parser, so entry/exit pairing state spans chunks and
per-session ordering is preserved.

Failure containment: a dead worker fails only the futures routed to
it (:class:`WorkerCrashError`) and is respawned with a bumped
*incarnation* number; callers that depend on worker-resident state
(the obs parse offload) detect the incarnation change and fall back
inline, while stateless callers (the shard executor) fall back to the
sequential path — parity is never at risk.  Every shared-memory
segment the pool touches is tracked and unlinked on result receipt,
worker crash, or :meth:`~WorkerPool.shutdown` (also wired to
``atexit`` for the process-global pool), so a clean exit leaks
nothing into ``/dev/shm``.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import queue
import threading
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable

from repro.parallel.worker import ShardTask, analyze_shard_data

#: Payloads at or below this many bytes ride the queues directly;
#: larger ones go through a shared-memory segment.  Queue transfers
#: copy through a pipe (two syscalls + pickle framing), which beats
#: segment setup/teardown only for small blobs.
SHM_INLINE_MAX = 32 * 1024

#: Result-queue poll interval; also how often dead workers are reaped.
_POLL_SECONDS = 0.1

#: Grace given to workers to drain their queues at shutdown.
_JOIN_SECONDS = 5.0


class PoolError(RuntimeError):
    """Base class for worker-pool failures."""


class PoolUnavailableError(PoolError):
    """The platform cannot run pool workers (no subprocesses allowed)."""


class WorkerCrashError(PoolError):
    """The worker a task was routed to died before answering."""


class PoolClosedError(PoolError):
    """The pool was shut down while the task was in flight."""


def _unregister_shm(name: str) -> None:
    """Drop *name* from this process's resource tracker, best effort.

    Python < 3.13 registers a segment with the tracker on *attach* as
    well as on create (bpo-38119); an attaching process that kept the
    registration would unlink a segment it does not own when it exits.
    Ownership here is explicit — the pool unlinks — so both sides
    deregister and the tracker is kept out of the game.
    """
    try:
        resource_tracker.unregister(name if name.startswith("/") else "/" + name,
                                    "shared_memory")
    except Exception:
        pass


def _blob_pack(prefix: str, data) -> tuple[str, Any]:
    """Encode *data* for the queue: inline bytes or a shm segment ref.

    Returns ``("inline", bytes)`` or ``("shm", (name, size))``.  The
    segment is created here and ownership passes to the receiver (the
    creator deregisters it from its own tracker); the pool's bookkeeping
    unlinks it on receipt, crash, or shutdown.
    """
    view = memoryview(data)
    if view.nbytes <= SHM_INLINE_MAX:
        return "inline", bytes(view)
    segment = shared_memory.SharedMemory(
        name=f"{prefix}_{os.getpid()}_{next(_SEGMENT_IDS)}", create=True,
        size=view.nbytes,
    )
    try:
        segment.buf[: view.nbytes] = view
    finally:
        _unregister_shm(segment._name)  # ownership is tracked pool-side
        segment.close()
    return "shm", (segment.name, view.nbytes)


def _blob_unpack(ref: tuple[str, Any]) -> bytes:
    """Materialize a :func:`_blob_pack` reference; frees shm segments.

    The attach registers the segment with the (shared) resource
    tracker; ``unlink`` deregisters it — the pair stays balanced, so
    the tracker never sees an unregister for a name it does not hold.
    """
    kind, payload = ref
    if kind == "inline":
        return payload
    name, size = payload
    segment = shared_memory.SharedMemory(name=name)
    try:
        with memoryview(segment.buf) as view:
            return bytes(view[:size])
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            _unregister_shm(name)  # someone else unlinked: drop our claim


def _blob_discard(ref: tuple[str, Any] | None) -> None:
    """Unlink the segment behind a never-consumed blob reference."""
    if not ref or ref[0] != "shm":
        return
    name, _size = ref[1]
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:
        _unregister_shm(name)


_SEGMENT_IDS = itertools.count()


class PoolFuture:
    """Minimal completion handle for one pool task."""

    __slots__ = ("_done", "_result", "_error", "_callbacks", "_lock", "worker")

    def __init__(self, worker: int) -> None:
        self._done = threading.Event()
        self._result: Any = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["PoolFuture"], None]] = []
        self._lock = threading.Lock()
        self.worker = worker

    def _resolve(self, result: Any = None, error: BaseException | None = None) -> None:
        with self._lock:
            if self._done.is_set():
                return
            self._result = result
            self._error = error
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, callback: Callable[["PoolFuture"], None]) -> None:
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError("pool task did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result


# -- the worker side -----------------------------------------------------------


def _parse_task(state: dict, key: str, fmt: str, text: str):
    """Parse one text chunk with the namespace's persistent parser.

    Returns the obs offload contract: encoded rows, malformed line
    positions within the chunk, this chunk's counter deltas, and the
    parser's absolute unpaired-entry count (state, not a delta).
    """
    from repro.trace.batch import make_batch_parser
    from repro.trace.binary import encode_batch
    from repro.trace.push import make_push_parser

    parser = state.get(key)
    if parser is None or parser.format != fmt:
        parser = make_batch_parser(fmt)
        state[key] = parser
    before_malformed = parser.malformed_lines
    before_skipped = parser.skipped_lines
    rows = parser.parse_chunk(text)
    bad: list[int] = []
    if parser.malformed_lines > before_malformed:
        probe = make_push_parser(fmt)
        for index, line in enumerate(text.split("\n")):
            _events, malformed = probe.push_line(line)
            if malformed:
                bad.append(index)
    return (
        encode_batch(rows),
        len(rows),
        bad,
        parser.malformed_lines - before_malformed,
        parser.skipped_lines - before_skipped,
        parser.unpaired_entries,
    )


def _worker_main(worker_id: int, incarnation: int, prefix: str,
                 task_queue, result_queue) -> None:
    """One pool worker: loop over tasks until the ``None`` sentinel.

    Runs with ``repro`` fully imported (inherited via fork, or imported
    once at spawn) — the whole point of the persistent pool.  Parser
    state for the obs parse offload lives in ``parse_state``, keyed by
    namespace, for the lifetime of this incarnation.
    """
    parse_state: dict[str, Any] = {}
    out_prefix = f"{prefix}w{worker_id}"
    while True:
        task = task_queue.get()
        if task is None:
            return
        kind, task_id, payload = task
        try:
            if kind == "shard":
                meta, blob_ref = payload
                text = _blob_unpack(blob_ref).decode("utf-8")
                result = analyze_shard_data(meta, text)
                blob = result.deferred_blob
                deferred_ref = None
                if blob is not None:
                    result.deferred_blob = None
                    deferred_ref = _blob_pack(out_prefix, blob)
                answer = (incarnation, result, deferred_ref)
            elif kind == "parse":
                key, fmt, blob_ref = payload
                text = _blob_unpack(blob_ref).decode("utf-8")
                encoded, nrows, bad, mal, skip, pending = _parse_task(
                    parse_state, key, fmt, text
                )
                answer = (
                    incarnation,
                    _blob_pack(out_prefix, encoded),
                    nrows, bad, mal, skip, pending,
                )
            elif kind == "ping":
                answer = (incarnation, payload)
            else:
                raise ValueError(f"unknown pool task kind {kind!r}")
        except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
            try:
                result_queue.put((task_id, False, f"{type(exc).__name__}: {exc}"))
            except Exception:
                return
        else:
            result_queue.put((task_id, True, answer))


# -- the parent side -----------------------------------------------------------


class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = ("index", "incarnation", "process", "task_queue", "inflight")

    def __init__(self, index: int, incarnation: int, process, task_queue) -> None:
        self.index = index
        self.incarnation = incarnation
        self.process = process
        self.task_queue = task_queue
        #: task ids routed to this worker and not yet answered
        self.inflight: set[int] = set()


class WorkerPool:
    """A persistent pool of analysis worker processes.

    Args:
        workers: number of worker processes.
        name: segment-name tag (shows up in ``/dev/shm``, useful for
            leak tests and post-mortems).

    Raises:
        PoolUnavailableError: the platform refuses subprocesses.
    """

    def __init__(self, workers: int, *, name: str = "iocov") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self.prefix = f"{name}{os.getpid()}x{next(_SEGMENT_IDS)}"
        self.closed = False
        self.dispatches = 0
        self.respawns = 0
        started = time.perf_counter()
        self._lock = threading.Lock()  # guards futures/segments/workers
        self._task_ids = itertools.count()
        self._futures: dict[int, PoolFuture] = {}
        #: task id -> shm names owned by the pool for that task
        self._segments: dict[int, list[str]] = {}
        self._result_queue = self._ctx.Queue()
        self._workers: list[_Worker] = []
        try:
            for index in range(workers):
                self._workers.append(self._spawn(index, incarnation=0))
        except (OSError, PermissionError) as exc:
            self._abandon()
            raise PoolUnavailableError(f"cannot start pool workers: {exc}") from exc
        self.cold_start_seconds = time.perf_counter() - started
        self._collector = threading.Thread(
            target=self._collect, name=f"iocov-pool-{self.prefix}", daemon=True
        )
        self._collector.start()

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, index: int, incarnation: int) -> _Worker:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, incarnation, self.prefix, task_queue, self._result_queue),
            name=f"iocov-worker-{index}",
            daemon=True,
        )
        process.start()
        return _Worker(index, incarnation, process, task_queue)

    def _abandon(self) -> None:
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()

    @property
    def workers(self) -> int:
        with self._lock:
            return len(self._workers)

    def incarnation(self, worker: int) -> int:
        with self._lock:
            return self._workers[worker].incarnation

    def grow(self, workers: int) -> None:
        """Add workers until the pool has at least *workers* of them."""
        with self._lock:
            if self.closed:
                raise PoolClosedError("pool is shut down")
            while len(self._workers) < workers:
                self._workers.append(self._spawn(len(self._workers), incarnation=0))

    def shutdown(self, timeout: float = _JOIN_SECONDS) -> None:
        """Stop every worker and unlink every tracked shm segment.

        Idempotent; also runs via ``atexit`` for the global pool.  After
        the workers exit, any segment still tracked (undelivered task
        payloads, results nobody consumed) is swept away, so a clean
        shutdown leaves nothing behind in ``/dev/shm``.
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
            workers = list(self._workers)
            futures = list(self._futures.values())
            self._futures.clear()
        for worker in workers:
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.process.join(timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
        for future in futures:
            future._resolve(error=PoolClosedError("pool is shut down"))
        with self._lock:
            leftover = [n for names in self._segments.values() for n in names]
            self._segments.clear()
        for name in leftover:
            _blob_discard(("shm", (name, 0)))
        # Results nobody consumed reference *worker-created* segments
        # (parse output, deferred blobs) the parent never tracked —
        # sweep the queue so they unlink too.
        try:
            while True:
                _task_id, ok, answer = self._result_queue.get_nowait()
                if ok:
                    self._discard_answer(answer)
        except (queue.Empty, OSError, EOFError, ValueError):
            pass
        for worker in workers:
            worker.task_queue.close()
        self._result_queue.close()

    # -- submission -----------------------------------------------------------

    def _submit(self, kind: str, payload_builder, worker: int) -> PoolFuture:
        """Route one task to *worker*; returns its future.

        *payload_builder* is called with the task id so blob segments
        can be registered against it before the task is enqueued.
        """
        with self._lock:
            if self.closed:
                raise PoolClosedError("pool is shut down")
            record = self._workers[worker % len(self._workers)]
            task_id = next(self._task_ids)
            future = PoolFuture(record.index)
            self._futures[task_id] = future
            record.inflight.add(task_id)
            self.dispatches += 1
        try:
            payload = payload_builder(task_id)
            record.task_queue.put((kind, task_id, payload))
        except BaseException as exc:
            with self._lock:
                self._futures.pop(task_id, None)
                record.inflight.discard(task_id)
                names = self._segments.pop(task_id, [])
            for name in names:
                _blob_discard(("shm", (name, 0)))
            future._resolve(error=exc if isinstance(exc, PoolError) else
                            PoolError(f"task submission failed: {exc}"))
        return future

    def _track_blob(self, task_id: int, ref: tuple[str, Any]) -> tuple[str, Any]:
        if ref[0] == "shm":
            with self._lock:
                self._segments.setdefault(task_id, []).append(ref[1][0])
        return ref

    def submit_shard(self, task: ShardTask, data, *, worker: int) -> PoolFuture:
        """Analyze one shard span; *data* is the span's raw bytes."""

        def build(task_id: int):
            ref = self._track_blob(task_id, _blob_pack(self.prefix, data))
            return (task, ref)

        return self._submit("shard", build, worker)

    def submit_parse(self, key: str, fmt: str, text: str, *,
                     worker: int | None = None) -> PoolFuture:
        """Batch-parse one text chunk under namespace *key*'s parser.

        Without an explicit *worker* the task is pinned by hashing the
        key — the namespace→worker affinity that keeps one namespace's
        pairing state on one worker, in arrival order.
        """
        if worker is None:
            worker = self.worker_for(key)

        def build(task_id: int):
            ref = self._track_blob(
                task_id, _blob_pack(self.prefix, text.encode("utf-8"))
            )
            return (key, fmt, ref)

        return self._submit("parse", build, worker)

    def ping(self, worker: int = 0) -> float:
        """Round-trip one no-op task; returns the wall seconds it took."""
        started = time.perf_counter()
        self._submit("ping", lambda task_id: started, worker).result(timeout=30)
        return time.perf_counter() - started

    def worker_for(self, key: str) -> int:
        """Stable worker index for an affinity key."""
        import zlib

        with self._lock:
            size = len(self._workers)
        return zlib.crc32(key.encode("utf-8")) % max(1, size)

    # -- completion -----------------------------------------------------------

    def _collect(self) -> None:
        """Drain results, resolve futures, reap and respawn dead workers."""
        while True:
            with self._lock:
                if self.closed:
                    return
            try:
                task_id, ok, answer = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                self._reap_dead()
                continue
            except (OSError, EOFError, ValueError):
                return
            with self._lock:
                future = self._futures.pop(task_id, None)
                names = self._segments.pop(task_id, [])
                for worker in self._workers:
                    worker.inflight.discard(task_id)
            for name in names:
                _blob_discard(("shm", (name, 0)))
            if future is None:
                # A task whose future was already failed (worker-crash
                # raced a queued result) — free its result blobs too.
                if ok:
                    self._discard_answer(answer)
                continue
            if ok:
                try:
                    future._resolve(result=self._open_answer(answer))
                except BaseException as exc:  # noqa: BLE001
                    future._resolve(error=PoolError(f"result decode failed: {exc}"))
            else:
                future._resolve(error=PoolError(f"worker task failed: {answer}"))

    @staticmethod
    def _open_answer(answer):
        """Materialize any blob references in a worker's answer."""
        if len(answer) == 3 and answer[1].__class__.__name__ == "ShardResult":
            incarnation, result, deferred_ref = answer
            if deferred_ref is not None:
                result.deferred_blob = _blob_unpack(deferred_ref)
            return incarnation, result
        if len(answer) == 7:  # parse answer
            incarnation, blob_ref, nrows, bad, mal, skip, pending = answer
            return incarnation, _blob_unpack(blob_ref), nrows, bad, mal, skip, pending
        return answer  # ping

    @staticmethod
    def _discard_answer(answer) -> None:
        for part in answer if isinstance(answer, tuple) else ():
            if isinstance(part, tuple) and len(part) == 2 and part[0] in ("shm", "inline"):
                _blob_discard(part)

    def _reap_dead(self) -> None:
        """Fail futures routed to dead workers; respawn the workers."""
        crashed: list[tuple[_Worker, list[PoolFuture], list[str]]] = []
        with self._lock:
            for slot, worker in enumerate(self._workers):
                if worker.process.is_alive() or self.closed:
                    continue
                failed = []
                names: list[str] = []
                for task_id in sorted(worker.inflight):
                    future = self._futures.pop(task_id, None)
                    if future is not None:
                        failed.append(future)
                    names.extend(self._segments.pop(task_id, []))
                worker.inflight.clear()
                replacement = self._spawn(worker.index, worker.incarnation + 1)
                self._workers[slot] = replacement
                self.respawns += 1
                crashed.append((worker, failed, names))
        for worker, failed, names in crashed:
            worker.task_queue.close()
            for name in names:
                _blob_discard(("shm", (name, 0)))
            for future in failed:
                future._resolve(error=WorkerCrashError(
                    f"worker {worker.index} (incarnation {worker.incarnation}) "
                    "died with the task in flight"
                ))

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "workers": len(self._workers),
                "dispatches": self.dispatches,
                "respawns": self.respawns,
                "inflight": sum(len(w.inflight) for w in self._workers),
                "cold_start_seconds": round(self.cold_start_seconds, 4),
            }


# -- the process-global pool ----------------------------------------------------

_global_pool: WorkerPool | None = None
_global_lock = threading.Lock()


def get_pool(workers: int) -> WorkerPool:
    """The process-wide pool, created on first use and grown on demand.

    ``repro analyze --jobs`` calls land here so repeated invocations in
    one process (benchmarks, library users, the campaign loop) pay pool
    startup exactly once.

    Raises:
        PoolUnavailableError: worker processes cannot be started.
    """
    global _global_pool
    with _global_lock:
        if _global_pool is not None and _global_pool.closed:
            _global_pool = None
        if _global_pool is None:
            _global_pool = WorkerPool(workers)
            atexit.register(shutdown_pool)
        elif _global_pool.workers < workers:
            _global_pool.grow(workers)
        return _global_pool


def pool_is_warm() -> bool:
    """True when the process-global pool is already running."""
    with _global_lock:
        return _global_pool is not None and not _global_pool.closed


def shutdown_pool() -> None:
    """Shut the process-global pool down (idempotent; atexit-wired)."""
    global _global_pool
    with _global_lock:
        pool, _global_pool = _global_pool, None
    if pool is not None:
        pool.shutdown()
