"""Shard-local trace filtering with explicit fd-knowledge tracking.

The mount-point :class:`~repro.core.filter.TraceFilter` is *stateful*:
whether an fd-carrying event is in scope depends on opens and closes
that happened earlier in the trace.  A worker that starts mid-file
cannot know the fd table the sequential filter would have at its first
event — but it *can* know what it knows.

:class:`ShardFilter` tracks a tri-state per (pid, fd):

* **LIVE** — an in-scope open (or dup of a LIVE fd) inside this shard
  produced the fd; the sequential filter provably tracks it.
* **DEAD** — a close inside this shard retired the fd; whatever the
  prior state was, the sequential filter provably does *not* track it
  afterwards (close removes the fd whether or not it was tracked).
* **UNKNOWN** — no shard-local evidence either way.

Events whose verdict is decidable from LIVE/DEAD knowledge are decided
locally — exactly as the sequential filter would.  Events that hinge on
UNKNOWN fds are **deferred**: the worker records them (with their
stream position) and the parent replays them against the true
sequential fd state during the stitch phase.  Alongside, the worker
emits an **op log** of the definite fd-table mutations it performed
(register on in-scope open, retire on tracked close) so the parent can
reproduce the sequential fd table between deferred decisions.

Path-only decisions (open/chdir/truncate…) are stateless and always
decided locally.
"""

from __future__ import annotations

from repro.core.filter import (
    TraceFilter,
    _FD_ARGS,
    _GLOBAL_EVENTS,
    _OPEN_LIKE,
    _PATH_KEYS,
)
from repro.trace.events import SyscallEvent, make_event

#: Per-(pid, fd) knowledge states.
UNKNOWN, LIVE, DEAD = 0, 1, 2

#: Op-log opcodes: definite fd-table mutations, in stream order.
OP_ADD, OP_RETIRE = 0, 1

#: One op-log entry: (seq, pid, opcode, fd).
FdOp = tuple[int, int, int, int]


class ShardFilter:
    """Decides shard-local events; defers the undecidable ones.

    Args:
        base: the real filter whose *stateless* parts (path regexes,
            keep_global / keep_failed_opens policy) this shard applies.
            Its fd table is never consulted — fd knowledge lives in the
            tri-state map here.

    Attributes:
        ops: definite fd-table mutations ``(seq, pid, op, fd)``, in
            stream order, for the parent's sequential replay.
        deferred: undecidable events ``(seq, event)``, in stream order.
    """

    def __init__(self, base: TraceFilter) -> None:
        self.base = base
        self._fd_state: dict[int, dict[int, int]] = {}
        self.ops: list[FdOp] = []
        self.deferred: list[tuple[int, SyscallEvent]] = []

    def admit_local_row(self, seq: int, row: tuple) -> bool | None:
        """Row-tuple twin of :meth:`admit_local` (batch workers).

        *row* is ``(name, args, retval, errno, pid, comm, timestamp)``
        as the batch parsers produce it; a :class:`SyscallEvent` is
        constructed only if the row is actually deferred, so decidable
        rows (the vast majority) never materialize an object.
        """
        name, args, retval, errno, pid, comm, timestamp = row
        return self._admit(
            seq,
            name,
            args,
            retval,
            pid,
            lambda: make_event(
                name, args, retval, errno, pid=pid, comm=comm, timestamp=timestamp
            ),
        )

    def admit_local(self, seq: int, event: SyscallEvent) -> bool | None:
        """Decide one event: True / False, or None when deferred.

        Mirrors :meth:`TraceFilter.admit` branch for branch; every
        local True/False is provably the sequential verdict.
        """
        return self._admit(
            seq, event.name, event.args, event.retval, event.pid, lambda: event
        )

    def _admit(
        self, seq: int, name: str, args, retval: int, pid: int, event_of
    ) -> bool | None:
        base = self.base
        states = self._fd_state.setdefault(pid, {})

        path_arg = _OPEN_LIKE.get(name)
        if path_arg is not None:
            path = args.get(path_arg)
            if path is None and retval < 0:
                return base.keep_failed_opens
            relevant = isinstance(path, str) and base.path_in_scope(path)
            if relevant and retval >= 0:
                states[retval] = LIVE
                self.ops.append((seq, pid, OP_ADD, retval))
            if relevant and retval < 0:
                return base.keep_failed_opens
            return relevant

        if name == "close":
            fd = args.get("fd")
            if not isinstance(fd, int):
                return False
            state = states.get(fd, UNKNOWN)
            if state == LIVE:
                states[fd] = DEAD
                self.ops.append((seq, pid, OP_RETIRE, fd))
                return True
            if state == DEAD:
                return False
            # Unknown fd: the verdict depends on pre-shard history, but
            # the *effect* does not — after a close the fd is untracked
            # either way.  No op is logged; the parent's replay of this
            # deferred event performs the (conditional) retire itself.
            states[fd] = DEAD
            self.deferred.append((seq, event_of()))
            return None

        if name in ("dup", "dup2"):
            source = args.get("fildes" if name == "dup" else "oldfd")
            if not isinstance(source, int):
                return False
            state = states.get(source, UNKNOWN)
            if state == LIVE:
                if retval >= 0:
                    states[retval] = LIVE
                    self.ops.append((seq, pid, OP_ADD, retval))
                return True
            if state == DEAD:
                return False
            self.deferred.append((seq, event_of()))
            # The duplicate fd becomes tracked iff the source was; a
            # previously LIVE target stays live regardless (the
            # sequential filter never removes on dup).
            if retval >= 0 and states.get(retval, UNKNOWN) != LIVE:
                states[retval] = UNKNOWN
            return None

        for key in _PATH_KEYS:
            value = args.get(key)
            if isinstance(value, str):
                return base.path_in_scope(value)

        for key in _FD_ARGS:
            fd = args.get(key)
            if isinstance(fd, int):
                state = states.get(fd, UNKNOWN)
                if state == LIVE:
                    return True
                if state == DEAD:
                    return False
                self.deferred.append((seq, event_of()))
                return None

        if name in _GLOBAL_EVENTS:
            return base.keep_global
        return False
