"""Parallel sharded trace analysis with exact sequential parity.

The scale story for the analyzer: a trace file is split into
line-aligned byte spans, each span is analyzed independently (own
process, own parser, own shard-local filter), and the per-shard
coverage states are stitched and merged into a report bit-identical
to a single sequential pass — the merge is exact because every
coverage tally is a sum, and the stateful parts (mount-point fd
tracking, LTTng entry/exit pairing) are reconciled by a replay of the
small cross-shard residue each worker reports.

Entry points:

* :func:`run_sharded` — file in, report out, ``jobs`` workers.
* ``repro analyze --jobs N`` — the same, from the command line.
"""

from repro.parallel.executor import (
    ShardAmbiguityError,
    run_sharded,
    tree_merge,
)
from repro.parallel.shardfilter import ShardFilter
from repro.parallel.sharding import iter_span_lines, shard_spans
from repro.parallel.worker import ShardResult, ShardTask, analyze_shard

__all__ = [
    "ShardAmbiguityError",
    "ShardFilter",
    "ShardResult",
    "ShardTask",
    "analyze_shard",
    "iter_span_lines",
    "run_sharded",
    "shard_spans",
    "tree_merge",
]
