"""Parallel sharded trace analysis with exact sequential parity.

The scale story for the analyzer: a trace file is split into
line-aligned byte spans, each span is analyzed independently (own
process, own parser, own shard-local filter), and the per-shard
coverage states are stitched and merged into a report bit-identical
to a single sequential pass — the merge is exact because every
coverage tally is a sum, and the stateful parts (mount-point fd
tracking, LTTng entry/exit pairing) are reconciled by a replay of the
small cross-shard residue each worker reports.

Since the persistent-pool rework, fan-out runs on a **spawn-once
worker pool** (:mod:`repro.parallel.pool`) shared by every
``run_sharded`` call in the process *and* by the obs daemon's
``--analysis-workers`` parse offload: workers stay warm, shard spans
and result blobs travel through shared memory instead of the pool's
pickle pipes, and a pipelined reader thread overlaps span I/O with
worker parsing and with stream-merging of completed shards.

Entry points:

* :func:`run_sharded` — file in, report out, ``jobs`` workers.
* ``repro analyze --jobs N`` — the same, from the command line.
* :func:`get_pool` / :class:`WorkerPool` — the persistent runtime.
"""

from repro.parallel.executor import (
    ShardAmbiguityError,
    run_sharded,
    tree_merge,
)
from repro.parallel.pool import (
    PoolError,
    PoolUnavailableError,
    WorkerCrashError,
    WorkerPool,
    get_pool,
    pool_is_warm,
    shutdown_pool,
)
from repro.parallel.shardfilter import ShardFilter
from repro.parallel.sharding import iter_span_lines, shard_spans
from repro.parallel.worker import (
    ShardResult,
    ShardTask,
    analyze_shard,
    analyze_shard_data,
)

__all__ = [
    "PoolError",
    "PoolUnavailableError",
    "ShardAmbiguityError",
    "ShardFilter",
    "ShardResult",
    "ShardTask",
    "WorkerCrashError",
    "WorkerPool",
    "analyze_shard",
    "analyze_shard_data",
    "get_pool",
    "iter_span_lines",
    "pool_is_warm",
    "run_sharded",
    "shard_spans",
    "shutdown_pool",
    "tree_merge",
]
