"""Sharded run store: one SQLite file per tenant/project namespace.

The single-file :class:`~repro.obs.store.RunStore` serializes every
tenant behind one database lock.  This backend maps each
``tenant/project`` namespace to its own shard directory::

    <root>/
        .iocov-shards            marker + format version
        <tenant>/<project>/
            runs.sqlite          runs, counts, TCD scores (RunStore)
            journal.rjl          batched crash-recovery journal

so concurrent tenants never contend on storage, and a hot namespace
can be backed up or dropped by moving one directory.

The journal is no longer a SQLite table: each shard appends to a
CRC-framed, append-only ``journal.rjl`` with **group commit** — one
``fsync`` per *batch_size* records instead of per record.  A crash can
tear at most the final unsynced group; replay stops at the first bad
frame and the torn tail is truncated on reopen (those records were
never acknowledged as durable).

Frame layout (big-endian)::

    u32 payload_length | u32 crc32(payload) | payload
    payload = session UTF-8 bytes, 0x00, line UTF-8 bytes
"""

from __future__ import annotations

import dataclasses
import os
import struct
import threading
import zlib
from typing import Any, Iterable, Iterator

from repro.core.report import CoverageReport
from repro.obs.store import (
    DEFAULT_PROJECT,
    DEFAULT_TCD_TARGET,
    DEFAULT_TENANT,
    BaseRunStore,
    RunRecord,
    RunStore,
    validate_namespace,
)

#: Marker file naming a directory as a sharded store root.
SHARD_MARKER = ".iocov-shards"
SHARD_DB = "runs.sqlite"
SHARD_JOURNAL = "journal.rjl"

#: Journal records buffered per fsync (the group-commit knob).
DEFAULT_JOURNAL_BATCH = 64

_FRAME_HEADER = struct.Struct(">II")
_MAX_FRAME = 16 * 1024 * 1024  # sanity bound: no journal line is 16 MiB


class JournalFormatError(RuntimeError):
    """A journal frame failed its length or CRC check mid-file."""


def _frame(session: str, line: str) -> bytes:
    payload = session.encode("utf-8") + b"\x00" + line.encode("utf-8")
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _iter_frames(blob: bytes) -> Iterator[tuple[str, str, int]]:
    """Yield ``(session, line, end_offset)`` for every intact frame.

    Stops silently at the first torn or corrupt frame — by the group
    commit contract anything past that point was never acknowledged.
    """
    offset = 0
    total = len(blob)
    while offset + _FRAME_HEADER.size <= total:
        length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        start = offset + _FRAME_HEADER.size
        end = start + length
        if length > _MAX_FRAME or end > total:
            return
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            return
        session_bytes, sep, line_bytes = payload.partition(b"\x00")
        if not sep:
            return
        yield session_bytes.decode("utf-8"), line_bytes.decode("utf-8"), end
        offset = end


class BatchedJournal:
    """Append-only, CRC-framed journal with group-commit durability.

    Records buffer in user space and hit disk with one ``fsync`` per
    *batch_size* appends; :meth:`sync` forces the pending group down
    (the ingest path calls it before acknowledging a flush).  On open,
    any torn tail from a crash mid-group is truncated away.
    """

    def __init__(self, path: str, batch_size: int = DEFAULT_JOURNAL_BATCH) -> None:
        if batch_size < 1:
            raise ValueError("journal batch_size must be >= 1")
        self.path = path
        self.batch_size = batch_size
        self._lock = threading.RLock()
        self._counts: dict[str, int] = {}
        self._unsynced = 0
        valid_end = self._scan()
        self._fh = open(path, "ab")
        if self._fh.tell() > valid_end:
            self._fh.truncate(valid_end)
            self._fh.seek(valid_end)

    def _scan(self) -> int:
        """Count intact records per session; returns the valid byte length."""
        try:
            with open(self.path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return 0
        valid_end = 0
        for session, _line, end in _iter_frames(blob):
            self._counts[session] = self._counts.get(session, 0) + 1
            valid_end = end
        return valid_end

    def append(self, session: str, lines: Iterable[str]) -> None:
        """Record lines; durable once the current group commits."""
        with self._lock:
            for line in lines:
                self._fh.write(_frame(session, line))
                self._counts[session] = self._counts.get(session, 0) + 1
                self._unsynced += 1
                if self._unsynced >= self.batch_size:
                    self._commit()

    def _commit(self) -> None:
        self._fh.flush()
        # Group commit *is* fsync-under-lock: batched appends ride one
        # sync, and writers must not interleave while it lands.
        os.fsync(self._fh.fileno())  # lint: allow(blocking-under-lock)
        self._unsynced = 0

    def sync(self) -> None:
        """Force the pending group to disk."""
        with self._lock:
            if self._unsynced:
                self._commit()

    def lines(self, session: str) -> Iterator[str]:
        """Replay one session's records in append order."""
        with self._lock:
            self._fh.flush()  # make our own buffered writes readable
            try:
                with open(self.path, "rb") as fh:
                    blob = fh.read()
            except FileNotFoundError:
                blob = b""
        for rec_session, line, _end in _iter_frames(blob):
            if rec_session == session:
                yield line

    def size(self, session: str) -> int:
        with self._lock:
            return self._counts.get(session, 0)

    def sessions(self) -> list[str]:
        with self._lock:
            return sorted(name for name, count in self._counts.items() if count)

    def clear(self, session: str) -> None:
        """Drop one session's records, compacting the file in place."""
        with self._lock:
            if not self._counts.get(session):
                return
            self._fh.flush()
            with open(self.path, "rb") as fh:
                blob = fh.read()
            keep = b"".join(
                _frame(rec_session, line)
                for rec_session, line, _end in _iter_frames(blob)
                if rec_session != session
            )
            self._fh.close()
            tmp = self.path + ".compact"
            with open(tmp, "wb") as fh:
                fh.write(keep)
                fh.flush()
                # Compaction must be atomic against appends: the lock
                # stays held while the replacement file is made durable.
                os.fsync(fh.fileno())  # lint: allow(blocking-under-lock)
            os.replace(tmp, self.path)
            self._fh = open(self.path, "ab")
            self._counts.pop(session, None)
            self._unsynced = 0

    def close(self) -> None:
        with self._lock:
            if self._unsynced:
                self._commit()
            self._fh.close()


class _Shard:
    """One namespace's storage: a RunStore plus its batched journal."""

    def __init__(self, root: str, tenant: str, project: str,
                 tcd_target: float, journal_batch: int) -> None:
        self.tenant = tenant
        self.project = project
        self.dir = os.path.join(root, tenant, project)
        os.makedirs(self.dir, exist_ok=True)
        self.lock = threading.RLock()
        self.store = RunStore(os.path.join(self.dir, SHARD_DB), tcd_target)
        self.journal = BatchedJournal(
            os.path.join(self.dir, SHARD_JOURNAL), batch_size=journal_batch
        )

    def close(self) -> None:
        with self.lock:
            self.journal.close()
            self.store.close()


class ShardedRunStore(BaseRunStore):
    """Directory-backed store, one shard per ``tenant/project``.

    Run ids are **per-namespace** (each shard has its own sequence);
    cross-namespace queries (`list_runs(tenant=None)`) merge shards by
    creation time.  Shards materialize lazily on first write and are
    rediscovered from disk on open.

    Args:
        path: store root directory (created, with a marker file).
        tcd_target: uniform TCD target recorded with each run.
        journal_batch: journal records per fsync (group-commit size).
    """

    backend_name = "sharded"

    def __init__(
        self,
        path: str,
        tcd_target: float = DEFAULT_TCD_TARGET,
        journal_batch: int = DEFAULT_JOURNAL_BATCH,
    ) -> None:
        self.path = os.path.abspath(path)
        self.tcd_target = tcd_target
        self.journal_batch = journal_batch
        os.makedirs(self.path, exist_ok=True)
        marker = os.path.join(self.path, SHARD_MARKER)
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as fh:
                fh.write("iocov sharded store v1\n")
        self._lock = threading.RLock()
        self._shards: dict[tuple[str, str], _Shard] = {}
        for tenant, project in self._disk_namespaces():
            self._shard(tenant, project)

    def _disk_namespaces(self) -> list[tuple[str, str]]:
        found: list[tuple[str, str]] = []
        for tenant in sorted(os.listdir(self.path)):
            tenant_dir = os.path.join(self.path, tenant)
            if tenant.startswith(".") or not os.path.isdir(tenant_dir):
                continue
            for project in sorted(os.listdir(tenant_dir)):
                shard_dir = os.path.join(tenant_dir, project)
                if os.path.isdir(shard_dir) and (
                    os.path.exists(os.path.join(shard_dir, SHARD_DB))
                    or os.path.exists(os.path.join(shard_dir, SHARD_JOURNAL))
                ):
                    found.append((tenant, project))
        return found

    def _shard(self, tenant: str, project: str) -> _Shard:
        validate_namespace(tenant, project)
        key = (tenant, project)
        with self._lock:
            shard = self._shards.get(key)
            if shard is None:
                shard = _Shard(self.path, tenant, project,
                               self.tcd_target, self.journal_batch)
                self._shards[key] = shard
            return shard

    def _existing(self, tenant: str, project: str) -> _Shard | None:
        with self._lock:
            return self._shards.get((tenant, project))

    # -- runs -----------------------------------------------------------------

    def save_report(
        self,
        report: CoverageReport,
        *,
        trace_path: str | None = None,
        trace_format: str | None = None,
        seed: int | None = None,
        jobs: int | None = None,
        wall_seconds: float | None = None,
        meta: Any = None,
        created_at: float | None = None,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> int:
        shard = self._shard(tenant, project)
        with shard.lock:
            return shard.store.save_report(
                report,
                trace_path=trace_path,
                trace_format=trace_format,
                seed=seed,
                jobs=jobs,
                wall_seconds=wall_seconds,
                meta=meta,
                created_at=created_at,
                tenant=tenant,
                project=project,
            )

    def get_run(
        self,
        run_id: int,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> RunRecord:
        shard = self._existing(tenant, project)
        if shard is None:
            raise KeyError(f"no namespace {tenant}/{project} in {self.path}")
        with shard.lock:
            return shard.store.get_run(run_id)

    def load_report(
        self,
        run_id: int,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> CoverageReport:
        shard = self._existing(tenant, project)
        if shard is None:
            raise KeyError(f"no namespace {tenant}/{project} in {self.path}")
        with shard.lock:
            return shard.store.load_report(run_id)

    def list_runs(
        self,
        limit: int | None = None,
        suite: str | None = None,
        *,
        tenant: str | None = None,
        project: str | None = None,
        campaign: str | None = None,
    ) -> list[RunRecord]:
        with self._lock:
            shards = [
                shard for (t, p), shard in self._shards.items()
                if (tenant is None or t == tenant)
                and (project is None or p == project)
            ]
        records: list[RunRecord] = []
        for shard in shards:
            with shard.lock:
                records.extend(
                    shard.store.list_runs(suite=suite, campaign=campaign)
                )
        records.sort(key=lambda r: (r.created_at, r.run_id), reverse=True)
        if limit is not None:
            records = records[:limit]
        return records

    def tcd_score(
        self,
        run_id: int,
        kind: str,
        syscall: str,
        arg: str = "",
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> float:
        shard = self._existing(tenant, project)
        if shard is None:
            raise KeyError(f"no namespace {tenant}/{project} in {self.path}")
        with shard.lock:
            return shard.store.tcd_score(run_id, kind, syscall, arg)

    def resolve(
        self,
        ref: str,
        *,
        tenant: str | None = None,
        project: str | None = None,
    ) -> int:
        """Resolve a reference *within one namespace*.

        Run ids are per-shard, so a namespace is required to make a
        reference unambiguous; ``None`` means the default namespace.
        """
        shard = self._existing(tenant or DEFAULT_TENANT,
                               project or DEFAULT_PROJECT)
        if shard is None:
            raise KeyError(
                f"no namespace {tenant or DEFAULT_TENANT}/"
                f"{project or DEFAULT_PROJECT} in {self.path}"
            )
        with shard.lock:
            return shard.store.resolve(ref)

    def delete_run(
        self,
        run_id: int,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> None:
        shard = self._existing(tenant, project)
        if shard is None:
            raise KeyError(f"no namespace {tenant}/{project} in {self.path}")
        with shard.lock:
            shard.store.delete_run(run_id)

    def namespaces(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(self._shards)

    # -- the ingest journal ---------------------------------------------------

    def journal_append(
        self,
        session: str,
        lines: Iterable[str],
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> None:
        shard = self._shard(tenant, project)
        shard.journal.append(session, lines)

    def journal_lines(
        self,
        session: str,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> Iterator[str]:
        shard = self._existing(tenant, project)
        if shard is None:
            return iter(())
        return shard.journal.lines(session)

    def journal_size(
        self,
        session: str,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> int:
        shard = self._existing(tenant, project)
        return 0 if shard is None else shard.journal.size(session)

    def journal_clear(
        self,
        session: str,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> None:
        shard = self._existing(tenant, project)
        if shard is not None:
            shard.journal.clear(session)

    def journal_namespaces(self) -> list[tuple[str, str]]:
        with self._lock:
            shards = list(self._shards.items())
        return sorted(key for key, shard in shards if shard.journal.sessions())

    def journal_sessions(
        self,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> list[str]:
        """Session names with journal records in one namespace."""
        shard = self._existing(tenant, project)
        return [] if shard is None else shard.journal.sessions()

    def journal_sync(self) -> None:
        """Commit every shard's pending journal group to disk."""
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            shard.journal.sync()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            shards = list(self._shards.values())
            self._shards.clear()
        for shard in shards:
            shard.close()


def migrate_single_to_sharded(
    src_path: str,
    dest_path: str,
    *,
    journal_batch: int = DEFAULT_JOURNAL_BATCH,
) -> dict[str, Any]:
    """Copy a single-file store into a fresh sharded root.

    Every run and journal record lands in the shard matching its
    namespace (pre-tenant rows migrated to ``default/default`` by the
    v1→v2 schema migration).  Run ids restart per shard — history refs
    like ``latest~1`` keep working because relative order is preserved
    (runs copy oldest-first).

    Returns a summary: per-namespace run counts and journal records.

    Raises:
        FileExistsError: *dest_path* already holds a sharded store.
    """
    if os.path.exists(os.path.join(dest_path, SHARD_MARKER)):
        raise FileExistsError(f"{dest_path!r} is already a sharded store")
    src = RunStore(src_path)
    dest = ShardedRunStore(dest_path, tcd_target=src.tcd_target,
                           journal_batch=journal_batch)
    summary: dict[str, Any] = {"runs": {}, "journal_records": {}}
    try:
        for record in sorted(src.list_runs(), key=lambda r: r.run_id):
            report = src.load_report(record.run_id)
            dest.save_report(
                report,
                trace_path=record.trace_path,
                trace_format=record.trace_format,
                seed=record.seed,
                jobs=record.jobs,
                wall_seconds=record.wall_seconds,
                meta=record.meta,
                created_at=record.created_at,
                tenant=record.tenant,
                project=record.project,
            )
            key = f"{record.tenant}/{record.project}"
            summary["runs"][key] = summary["runs"].get(key, 0) + 1
        for tenant, project in src.journal_namespaces():
            moved = 0
            for session in src.journal_sessions(tenant=tenant, project=project):
                lines = list(src.journal_lines(
                    session, tenant=tenant, project=project))
                if lines:
                    dest.journal_append(session, lines,
                                        tenant=tenant, project=project)
                    moved += len(lines)
            if moved:
                summary["journal_records"][f"{tenant}/{project}"] = moved
        dest.journal_sync()
    finally:
        src.close()
        dest.close()
    return summary
