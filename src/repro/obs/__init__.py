"""Coverage observability: persistent runs, live ingest, metrics, gating.

One-shot ``repro analyze`` answers "what does this trace cover?"; this
package answers the questions that need *memory and liveness*:

* :mod:`repro.obs.store` — a schema-versioned SQLite run store that
  persists full coverage runs (every partition count, TCD scores,
  suite/seed/trace metadata, throughput stats) plus the ingest journal
  the daemon replays after a crash;
* :mod:`repro.obs.ingest` — the live ingestion pipeline: a bounded
  queue with backpressure, push-mode parsing with malformed-line
  quarantine and a configurable error budget, feeding a live
  :class:`~repro.core.IOCov`;
* :mod:`repro.obs.server` — the ``repro serve`` HTTP daemon: chunked
  POST trace ingest, JSON snapshot endpoints, Prometheus ``/metrics``,
  graceful SIGTERM drain, crash recovery;
* :mod:`repro.obs.metrics` — a dependency-free Prometheus text-format
  counter/gauge/histogram registry, usable from the CLI paths too;
* :mod:`repro.obs.regress` — cross-run diffing and the 0/1/2 exit-coded
  regression gate (``repro diff-runs`` / ``repro history``);
* :mod:`repro.obs.client` — the ``repro push`` client (stdlib HTTP,
  chunked upload).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.regress import RegressionFinding, RegressionReport, diff_reports
from repro.obs.store import RunRecord, RunStore, StoreVersionError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegressionFinding",
    "RegressionReport",
    "RunRecord",
    "RunStore",
    "StoreVersionError",
    "diff_reports",
]
