"""Coverage observability: persistent runs, live ingest, metrics, gating.

One-shot ``repro analyze`` answers "what does this trace cover?"; this
package answers the questions that need *memory and liveness*:

* :mod:`repro.obs.store` — the abstract :class:`BaseRunStore` interface
  with a schema-versioned single-file SQLite backend
  (:class:`RunStore`) persisting full coverage runs (every partition
  count, TCD scores, suite/seed/trace metadata, throughput stats) plus
  the ingest journal the daemon replays after a crash; every run lives
  in a ``tenant/project`` namespace;
* :mod:`repro.obs.sharded` — the sharded backend: one SQLite shard and
  one group-committed, CRC-framed crash-recovery journal per
  namespace, plus the single-file→sharded migration;
* :mod:`repro.obs.ingest` — the live ingestion pipeline: a bounded
  queue with backpressure, chunk-mode parsing with malformed-line
  quarantine and a configurable error budget, feeding a live
  :class:`~repro.core.IOCov` per namespace;
* :mod:`repro.obs.server` — the ``repro serve`` HTTP daemon: a bounded
  worker pool over per-tenant sessions, chunked POST trace ingest,
  JSON snapshot endpoints, Prometheus ``/metrics`` with per-tenant
  labels, graceful SIGTERM drain, per-namespace crash recovery, and a
  store lockfile against double daemons;
* :mod:`repro.obs.metrics` — a dependency-free Prometheus text-format
  counter/gauge/histogram registry, usable from the CLI paths too;
* :mod:`repro.obs.regress` — cross-run diffing and the 0/1/2 exit-coded
  regression gate (``repro diff-runs`` / ``repro history``);
* :mod:`repro.obs.client` — the ``repro push`` client (stdlib HTTP,
  chunked upload, backoff-with-jitter retries).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.regress import RegressionFinding, RegressionReport, diff_reports
from repro.obs.sharded import BatchedJournal, ShardedRunStore, migrate_single_to_sharded
from repro.obs.store import (
    DEFAULT_PROJECT,
    DEFAULT_TENANT,
    BaseRunStore,
    NamespaceError,
    RunRecord,
    RunStore,
    StoreVersionError,
    open_store,
)

__all__ = [
    "BaseRunStore",
    "BatchedJournal",
    "Counter",
    "DEFAULT_PROJECT",
    "DEFAULT_TENANT",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NamespaceError",
    "RegressionFinding",
    "RegressionReport",
    "RunRecord",
    "RunStore",
    "ShardedRunStore",
    "StoreVersionError",
    "diff_reports",
    "migrate_single_to_sharded",
    "open_store",
]
