"""The ``repro push`` client: stream a trace file to the daemon.

Stdlib-only (``http.client``).  The body is sent with chunked
transfer encoding — the trace never materializes in client memory and
the daemon's chunked decoder gets exercised by every push — and the
daemon counts everything before answering, so a successful push means
the lines are visible in ``/live``.

Transient failures retry with exponential backoff plus jitter, but
only when a retry cannot double-count: **connect-phase** errors (no
byte of the body left this process) and **503** responses (the daemon
answers those before reading the body — backpressure rejects and the
drain window).  A connection that dies mid-body is *not* retried; the
daemon may have counted a prefix, and replaying it would corrupt the
live numbers.  ``Retry-After`` hints from the daemon are honored.
"""

from __future__ import annotations

import json
import random
import socket
import time
import zlib
from http.client import HTTPConnection
from typing import Any, Callable, Iterator
from urllib.parse import urlsplit

from repro.obs.store import DEFAULT_PROJECT, DEFAULT_TENANT
from repro.trace.binary import MAGIC

#: Chunk size for the streamed upload.
PUSH_CHUNK_BYTES = 65536

#: Content-Type announcing a binary ``.rbt`` body to the daemon.
RBT_CONTENT_TYPE = "application/x-rbt"

#: Default retry budget for transient failures.
DEFAULT_RETRIES = 3

#: Base backoff (seconds); attempt N sleeps ~``base * 2**N`` + jitter.
DEFAULT_BACKOFF = 0.25

#: Never honor a ``Retry-After`` longer than this (seconds).
MAX_RETRY_AFTER = 30.0


class PushError(RuntimeError):
    """The daemon rejected a push (non-2xx response)."""

    def __init__(self, status: int, body: dict[str, Any]) -> None:
        super().__init__(f"daemon answered {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class _ConnectFailed(OSError):
    """Connection could not be established — safely retryable."""


def tenant_path(
    path: str,
    tenant: str | None = None,
    project: str | None = None,
) -> str:
    """Prefix *path* with the namespace route when one is requested.

    Default-namespace requests use the bare legacy routes, so a
    tenant-unaware daemon keeps working with a tenant-unaware client.
    """
    tenant = tenant or DEFAULT_TENANT
    project = project or DEFAULT_PROJECT
    if (tenant, project) == (DEFAULT_TENANT, DEFAULT_PROJECT):
        return path
    prefix = f"/t/{tenant}"
    if project != DEFAULT_PROJECT:
        prefix += f"/p/{project}"
    return prefix + path


def _file_chunks(path: str, chunk_bytes: int = PUSH_CHUNK_BYTES) -> Iterator[bytes]:
    with open(path, "rb") as handle:
        while True:
            piece = handle.read(chunk_bytes)
            if not piece:
                return
            yield piece


def _gzip_chunks(chunks: Iterator[bytes]) -> Iterator[bytes]:
    """Compress an upload stream into one gzip member, piece by piece."""
    comp = zlib.compressobj(6, zlib.DEFLATED, 16 + zlib.MAX_WBITS)
    for chunk in chunks:
        out = comp.compress(chunk)
        if out:
            yield out
    yield comp.flush()


def _request(
    url: str,
    method: str,
    path: str,
    body: Any = None,
    timeout: float = 60.0,
    extra_headers: dict[str, str] | None = None,
) -> tuple[int, dict[str, Any], dict[str, str]]:
    """One HTTP exchange; returns ``(status, document, headers)``.

    Raises:
        _ConnectFailed: the TCP connection never came up (retryable —
            no request byte was sent).
    """
    parts = urlsplit(url if "//" in url else f"http://{url}")
    conn = HTTPConnection(parts.hostname, parts.port or 80, timeout=timeout)
    try:
        try:
            conn.connect()
        except OSError as exc:
            raise _ConnectFailed(str(exc)) from exc
        headers = dict(extra_headers or {})
        encode_chunked = False
        if body is not None and not isinstance(body, (bytes, str)):
            headers["Transfer-Encoding"] = "chunked"
            encode_chunked = True
        conn.request(method, path, body=body, headers=headers,
                     encode_chunked=encode_chunked)
        response = conn.getresponse()
        raw = response.read()
        try:
            document = json.loads(raw) if raw else {}
        except ValueError:
            document = {"raw": raw.decode("utf-8", errors="replace")}
        return response.status, document, dict(response.getheaders())
    finally:
        conn.close()


def _retry_delay(
    attempt: int, backoff: float, headers: dict[str, str] | None
) -> float:
    """Exponential backoff with full jitter, capped Retry-After aware."""
    delay = backoff * (2 ** attempt) + random.uniform(0, backoff)
    if headers:
        hint = headers.get("Retry-After") or headers.get("retry-after")
        if hint:
            try:
                delay = max(delay, min(float(hint), MAX_RETRY_AFTER))
            except ValueError:
                pass
    return delay


def _request_with_retries(
    url: str,
    method: str,
    path: str,
    *,
    body_factory: Callable[[], Any] | None = None,
    timeout: float = 60.0,
    extra_headers: dict[str, str] | None = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
) -> tuple[int, dict[str, Any]]:
    """Issue a request, retrying connect failures and 503 responses.

    *body_factory* builds a fresh body per attempt — a generator body
    consumed by a failed attempt must never be resent half-empty.
    """
    attempt = 0
    while True:
        body = body_factory() if body_factory is not None else None
        try:
            status, document, headers = _request(
                url, method, path, body=body,
                timeout=timeout, extra_headers=extra_headers,
            )
        except _ConnectFailed:
            if attempt >= retries:
                raise
            time.sleep(_retry_delay(attempt, backoff, None))
            attempt += 1
            continue
        if status == 503 and attempt < retries:
            time.sleep(_retry_delay(attempt, backoff, headers))
            attempt += 1
            continue
        return status, document


def _is_rbt_file(path: str) -> bool:
    with open(path, "rb") as handle:
        return handle.read(len(MAGIC)) == MAGIC


def push_file(
    url: str,
    path: str,
    *,
    finalize: bool = False,
    timeout: float = 300.0,
    transport: str = "auto",
    gzip_body: bool = False,
    tenant: str | None = None,
    project: str | None = None,
    retries: int = DEFAULT_RETRIES,
    retry_backoff: float = DEFAULT_BACKOFF,
) -> dict[str, Any]:
    """Stream *path* to the daemon at *url*; optionally snapshot a run.

    *transport* selects the wire format: ``"text"`` ships the bytes as
    trace lines, ``"binary"`` announces a ``.rbt`` body (the file must
    already be one — use ``repro convert`` first), and ``"auto"`` (the
    default) sniffs the file's magic.  *gzip_body* compresses the body
    on the fly and sets ``Content-Encoding: gzip``; it composes with
    either transport.  *tenant*/*project* scope the push to a
    namespace (default namespace uses the legacy routes).  *retries*
    bounds transparent retries of connect failures and 503 answers,
    backed off exponentially from *retry_backoff* seconds with jitter.

    Returns the daemon's ingest response (with the snapshotted run's
    metadata under ``"run"`` when *finalize* is set).

    Raises:
        PushError: the daemon answered with an error status.
        ValueError: *transport* is unknown, or ``"binary"`` was forced
            on a file that is not ``.rbt``.
        OSError: the file or the connection failed (after retries).
    """
    if transport not in ("auto", "text", "binary"):
        raise ValueError(f"unknown transport: {transport!r}")
    is_rbt = _is_rbt_file(path)
    if transport == "binary" and not is_rbt:
        raise ValueError(
            f"{path} is not a .rbt trace; run `repro convert` first"
        )
    binary = is_rbt if transport == "auto" else transport == "binary"
    headers: dict[str, str] = {}
    if binary:
        headers["Content-Type"] = RBT_CONTENT_TYPE
    if gzip_body:
        headers["Content-Encoding"] = "gzip"

    def body_factory() -> Iterator[bytes]:
        body: Iterator[bytes] = _file_chunks(path)
        if gzip_body:
            body = _gzip_chunks(body)
        return body

    status, document = _request_with_retries(
        url, "POST", tenant_path("/ingest", tenant, project),
        body_factory=body_factory, timeout=timeout, extra_headers=headers,
        retries=retries, backoff=retry_backoff,
    )
    if status != 200:
        raise PushError(status, document)
    if finalize:
        run_status, run_document = _request_with_retries(
            url, "POST", tenant_path("/runs", tenant, project),
            timeout=timeout, retries=retries, backoff=retry_backoff,
        )
        if run_status != 201:
            raise PushError(run_status, run_document)
        document["run"] = run_document.get("run")
    return document


def fetch_json(
    url: str,
    path: str,
    timeout: float = 60.0,
    *,
    tenant: str | None = None,
    project: str | None = None,
    retries: int = 0,
) -> dict[str, Any]:
    """GET a JSON endpoint (``/live``, ``/runs``, ``/session``)."""
    status, document = _request_with_retries(
        url, "GET", tenant_path(path, tenant, project),
        timeout=timeout, retries=retries,
    )
    if status != 200:
        raise PushError(status, document)
    return document
