"""The ``repro push`` client: stream a trace file to the daemon.

Stdlib-only (``http.client``).  The body is sent with chunked
transfer encoding — the trace never materializes in client memory and
the daemon's chunked decoder gets exercised by every push — and the
daemon counts everything before answering, so a successful push means
the lines are visible in ``/live``.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any, Iterator
from urllib.parse import urlsplit

#: Chunk size for the streamed upload.
PUSH_CHUNK_BYTES = 65536


class PushError(RuntimeError):
    """The daemon rejected a push (non-2xx response)."""

    def __init__(self, status: int, body: dict[str, Any]) -> None:
        super().__init__(f"daemon answered {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


def _file_chunks(path: str, chunk_bytes: int = PUSH_CHUNK_BYTES) -> Iterator[bytes]:
    with open(path, "rb") as handle:
        while True:
            piece = handle.read(chunk_bytes)
            if not piece:
                return
            yield piece


def _request(
    url: str, method: str, path: str, body: Any = None, timeout: float = 60.0
) -> tuple[int, dict[str, Any]]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    conn = HTTPConnection(parts.hostname, parts.port or 80, timeout=timeout)
    try:
        headers = {}
        encode_chunked = False
        if body is not None and not isinstance(body, (bytes, str)):
            headers["Transfer-Encoding"] = "chunked"
            encode_chunked = True
        conn.request(method, path, body=body, headers=headers,
                     encode_chunked=encode_chunked)
        response = conn.getresponse()
        raw = response.read()
        try:
            document = json.loads(raw) if raw else {}
        except ValueError:
            document = {"raw": raw.decode("utf-8", errors="replace")}
        return response.status, document
    finally:
        conn.close()


def push_file(
    url: str, path: str, *, finalize: bool = False, timeout: float = 300.0
) -> dict[str, Any]:
    """Stream *path* to the daemon at *url*; optionally snapshot a run.

    Returns the daemon's ingest response (with the snapshotted run's
    metadata under ``"run"`` when *finalize* is set).

    Raises:
        PushError: the daemon answered with an error status.
        OSError: the file or the connection failed.
    """
    status, document = _request(
        url, "POST", "/ingest", body=_file_chunks(path), timeout=timeout
    )
    if status != 200:
        raise PushError(status, document)
    if finalize:
        run_status, run_document = _request(url, "POST", "/runs", timeout=timeout)
        if run_status != 201:
            raise PushError(run_status, run_document)
        document["run"] = run_document.get("run")
    return document


def fetch_json(url: str, path: str, timeout: float = 60.0) -> dict[str, Any]:
    """GET a JSON endpoint (``/live``, ``/runs``, ``/session``)."""
    status, document = _request(url, "GET", path, timeout=timeout)
    if status != 200:
        raise PushError(status, document)
    return document
