"""The ``repro push`` client: stream a trace file to the daemon.

Stdlib-only (``http.client``).  The body is sent with chunked
transfer encoding — the trace never materializes in client memory and
the daemon's chunked decoder gets exercised by every push — and the
daemon counts everything before answering, so a successful push means
the lines are visible in ``/live``.
"""

from __future__ import annotations

import json
import zlib
from http.client import HTTPConnection
from typing import Any, Iterator
from urllib.parse import urlsplit

from repro.trace.binary import MAGIC

#: Chunk size for the streamed upload.
PUSH_CHUNK_BYTES = 65536

#: Content-Type announcing a binary ``.rbt`` body to the daemon.
RBT_CONTENT_TYPE = "application/x-rbt"


class PushError(RuntimeError):
    """The daemon rejected a push (non-2xx response)."""

    def __init__(self, status: int, body: dict[str, Any]) -> None:
        super().__init__(f"daemon answered {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


def _file_chunks(path: str, chunk_bytes: int = PUSH_CHUNK_BYTES) -> Iterator[bytes]:
    with open(path, "rb") as handle:
        while True:
            piece = handle.read(chunk_bytes)
            if not piece:
                return
            yield piece


def _gzip_chunks(chunks: Iterator[bytes]) -> Iterator[bytes]:
    """Compress an upload stream into one gzip member, piece by piece."""
    comp = zlib.compressobj(6, zlib.DEFLATED, 16 + zlib.MAX_WBITS)
    for chunk in chunks:
        out = comp.compress(chunk)
        if out:
            yield out
    yield comp.flush()


def _request(
    url: str,
    method: str,
    path: str,
    body: Any = None,
    timeout: float = 60.0,
    extra_headers: dict[str, str] | None = None,
) -> tuple[int, dict[str, Any]]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    conn = HTTPConnection(parts.hostname, parts.port or 80, timeout=timeout)
    try:
        headers = dict(extra_headers or {})
        encode_chunked = False
        if body is not None and not isinstance(body, (bytes, str)):
            headers["Transfer-Encoding"] = "chunked"
            encode_chunked = True
        conn.request(method, path, body=body, headers=headers,
                     encode_chunked=encode_chunked)
        response = conn.getresponse()
        raw = response.read()
        try:
            document = json.loads(raw) if raw else {}
        except ValueError:
            document = {"raw": raw.decode("utf-8", errors="replace")}
        return response.status, document
    finally:
        conn.close()


def _is_rbt_file(path: str) -> bool:
    with open(path, "rb") as handle:
        return handle.read(len(MAGIC)) == MAGIC


def push_file(
    url: str,
    path: str,
    *,
    finalize: bool = False,
    timeout: float = 300.0,
    transport: str = "auto",
    gzip_body: bool = False,
) -> dict[str, Any]:
    """Stream *path* to the daemon at *url*; optionally snapshot a run.

    *transport* selects the wire format: ``"text"`` ships the bytes as
    trace lines, ``"binary"`` announces a ``.rbt`` body (the file must
    already be one — use ``repro convert`` first), and ``"auto"`` (the
    default) sniffs the file's magic.  *gzip_body* compresses the body
    on the fly and sets ``Content-Encoding: gzip``; it composes with
    either transport.

    Returns the daemon's ingest response (with the snapshotted run's
    metadata under ``"run"`` when *finalize* is set).

    Raises:
        PushError: the daemon answered with an error status.
        ValueError: *transport* is unknown, or ``"binary"`` was forced
            on a file that is not ``.rbt``.
        OSError: the file or the connection failed.
    """
    if transport not in ("auto", "text", "binary"):
        raise ValueError(f"unknown transport: {transport!r}")
    is_rbt = _is_rbt_file(path)
    if transport == "binary" and not is_rbt:
        raise ValueError(
            f"{path} is not a .rbt trace; run `repro convert` first"
        )
    binary = is_rbt if transport == "auto" else transport == "binary"
    headers: dict[str, str] = {}
    if binary:
        headers["Content-Type"] = RBT_CONTENT_TYPE
    body: Any = _file_chunks(path)
    if gzip_body:
        headers["Content-Encoding"] = "gzip"
        body = _gzip_chunks(body)
    status, document = _request(
        url, "POST", "/ingest", body=body, timeout=timeout, extra_headers=headers
    )
    if status != 200:
        raise PushError(status, document)
    if finalize:
        run_status, run_document = _request(url, "POST", "/runs", timeout=timeout)
        if run_status != 201:
            raise PushError(run_status, run_document)
        document["run"] = run_document.get("run")
    return document


def fetch_json(url: str, path: str, timeout: float = 60.0) -> dict[str, Any]:
    """GET a JSON endpoint (``/live``, ``/runs``, ``/session``)."""
    status, document = _request(url, "GET", path, timeout=timeout)
    if status != 200:
        raise PushError(status, document)
    return document
