"""Cross-run coverage diffing: the regression gate for CI.

A coverage number is only actionable if losing it is *loud*.  This
module compares two stored runs (or any two reports) and reports, with
the repo's uniform 0/1/2 exit codes, the three regression shapes that
matter for a test suite's input/output coverage:

* **lost partitions** — an input partition or errno that run A
  exercised and run B does not.  This is the paper's headline failure
  ("many possible error codes remain untested") appearing *over time*:
  a refactored suite silently dropping an input class.
* **TCD drift** — the scalar adequacy metric moving away from the
  target by more than a threshold, per tracked argument and syscall
  output space.  Catches shape regressions that lose no partition
  outright.
* **count collapse** — a partition's *relative* frequency falling by
  orders of magnitude (normalized by events admitted, so running a
  shorter suite does not false-positive).  A collapse usually means a
  generator or workload was accidentally disabled.

``repro history`` renders the stored timeline; ``repro diff-runs A B``
applies the gate between any two refs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.tcd import tcd_uniform

if TYPE_CHECKING:
    from repro.core.report import CoverageReport
    from repro.obs.store import RunStore

#: Exit codes, matching the CLI convention.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1

#: TCD movement (absolute, against the uniform target) that counts as
#: drift.  One unit of TCD is one order of magnitude of RMS deviation.
DEFAULT_TCD_THRESHOLD = 0.5

#: Uniform target for drift scoring (matches the store's default).
DEFAULT_TCD_TARGET = 1000.0

#: Normalized-frequency drop factor that counts as a collapse.
DEFAULT_COLLAPSE_FACTOR = 100.0

#: Partitions observed fewer times than this in run A are too noisy to
#: flag as collapsed.
MIN_COLLAPSE_BASE = 50


@dataclass(frozen=True)
class RegressionFinding:
    """One detected coverage regression between two runs."""

    kind: str  # "lost-input-partition" | "lost-output-partition" |
    #           "tcd-drift" | "count-collapse"
    syscall: str
    arg: str  # "" for output-space findings
    partition: str  # "" for TCD findings
    detail: str
    severity: str = "error"  # "error" gates; "warning" informs

    def render(self) -> str:
        where = f"{self.syscall}.{self.arg}" if self.arg else self.syscall
        head = f"[{self.kind}] {where}"
        if self.partition:
            head += f" :{self.partition}"
        return f"{head}: {self.detail}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "syscall": self.syscall,
            "arg": self.arg,
            "partition": self.partition,
            "detail": self.detail,
            "severity": self.severity,
        }


@dataclass
class RegressionReport:
    """All findings from one A-vs-B comparison."""

    suite_a: str
    suite_b: str
    findings: list[RegressionFinding] = field(default_factory=list)
    #: coverage that run B gained over run A (context, never gating)
    gained_partitions: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[RegressionFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[RegressionFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self) -> int:
        return EXIT_FINDINGS if self.errors else EXIT_CLEAN

    def lost_partitions(self) -> list[str]:
        """Human-form names of every lost partition (the gate's core)."""
        return [
            (f"{f.syscall}.{f.arg}:{f.partition}" if f.arg
             else f"{f.syscall}:{f.partition}")
            for f in self.findings
            if f.kind in ("lost-input-partition", "lost-output-partition")
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "suite_a": self.suite_a,
            "suite_b": self.suite_b,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "lost_partitions": self.lost_partitions(),
            "gained_partitions": self.gained_partitions,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render_text(self) -> str:
        lines = [f"coverage regression gate: {self.suite_a} -> {self.suite_b}"]
        if not self.findings:
            lines.append("  no regressions: run B covers everything run A did")
        for finding in self.findings:
            marker = "ERROR" if finding.severity == "error" else "warn "
            lines.append(f"  {marker}  {finding.render()}")
        if self.gained_partitions:
            shown = ", ".join(self.gained_partitions[:8])
            if len(self.gained_partitions) > 8:
                shown += f", … ({len(self.gained_partitions)} total)"
            lines.append(f"  gained: {shown}")
        return "\n".join(lines)


def _frequency_pairs(
    report_a: "CoverageReport", report_b: "CoverageReport"
) -> Iterator[tuple[str, str, dict[str, int], dict[str, int]]]:
    """Yield (syscall, arg, freqs_a, freqs_b); arg='' for outputs."""
    for syscall, arg in report_a.input_coverage.tracked_pairs():
        yield (
            syscall,
            arg,
            report_a.input_frequencies(syscall, arg),
            report_b.input_frequencies(syscall, arg),
        )
    for syscall in report_a.output_coverage.tracked_syscalls():
        yield (
            syscall,
            "",
            report_a.output_frequencies(syscall),
            report_b.output_frequencies(syscall),
        )


def diff_reports(
    report_a: "CoverageReport",
    report_b: "CoverageReport",
    *,
    tcd_target: float = DEFAULT_TCD_TARGET,
    tcd_threshold: float = DEFAULT_TCD_THRESHOLD,
    collapse_factor: float = DEFAULT_COLLAPSE_FACTOR,
) -> RegressionReport:
    """Gate run B against baseline run A.

    The two reports must track the same registry (they do when both
    came from the same store/schema).

    Raises:
        ValueError: the reports track different (syscall, arg) pairs.
    """
    if (
        report_a.input_coverage.tracked_pairs()
        != report_b.input_coverage.tracked_pairs()
    ):
        raise ValueError("cannot diff runs built from different registries")
    result = RegressionReport(
        suite_a=report_a.suite_name, suite_b=report_b.suite_name
    )
    admitted_a = max(report_a.events_admitted, 1)
    admitted_b = max(report_b.events_admitted, 1)

    for syscall, arg, freqs_a, freqs_b in _frequency_pairs(report_a, report_b):
        lost_kind = "lost-input-partition" if arg else "lost-output-partition"
        for partition, count_a in freqs_a.items():
            count_b = freqs_b.get(partition, 0)
            if count_a and not count_b:
                result.findings.append(
                    RegressionFinding(
                        kind=lost_kind,
                        syscall=syscall,
                        arg=arg,
                        partition=partition,
                        detail=(
                            f"tested {count_a:,}x in {report_a.suite_name}, "
                            f"untested in {report_b.suite_name}"
                        ),
                    )
                )
            elif count_a >= MIN_COLLAPSE_BASE and count_b:
                rate_a = count_a / admitted_a
                rate_b = count_b / admitted_b
                if rate_b * collapse_factor < rate_a:
                    result.findings.append(
                        RegressionFinding(
                            kind="count-collapse",
                            syscall=syscall,
                            arg=arg,
                            partition=partition,
                            detail=(
                                f"normalized frequency fell "
                                f"{rate_a / max(rate_b, 1e-12):,.0f}x "
                                f"({count_a:,} -> {count_b:,} raw)"
                            ),
                            severity="warning",
                        )
                    )
            elif count_b and not count_a:
                where = f"{syscall}.{arg}" if arg else syscall
                result.gained_partitions.append(f"{where}:{partition}")

        tcd_a = tcd_uniform(list(freqs_a.values()), tcd_target)
        tcd_b = tcd_uniform(list(freqs_b.values()), tcd_target)
        if tcd_b - tcd_a > tcd_threshold:
            result.findings.append(
                RegressionFinding(
                    kind="tcd-drift",
                    syscall=syscall,
                    arg=arg,
                    partition="",
                    detail=(
                        f"TCD against uniform target {tcd_target:g} rose "
                        f"{tcd_a:.3f} -> {tcd_b:.3f} "
                        f"(threshold +{tcd_threshold:g})"
                    ),
                )
            )
    return result


def diff_stored_runs(
    store: "RunStore",
    ref_a: str,
    ref_b: str,
    *,
    tcd_target: float = DEFAULT_TCD_TARGET,
    tcd_threshold: float = DEFAULT_TCD_THRESHOLD,
    collapse_factor: float = DEFAULT_COLLAPSE_FACTOR,
    tenant: str | None = None,
    project: str | None = None,
) -> tuple[RegressionReport, int, int]:
    """Resolve two run refs in *store* and gate B against A.

    With a *tenant*/*project*, refs resolve inside that namespace so
    gates never compare across tenants.  Returns ``(report, run_id_a,
    run_id_b)``.

    Raises:
        KeyError / ValueError: unresolvable refs.
    """
    from repro.obs.store import DEFAULT_PROJECT, DEFAULT_TENANT

    run_a = store.resolve(ref_a, tenant=tenant, project=project)
    run_b = store.resolve(ref_b, tenant=tenant, project=project)
    namespace = {
        "tenant": tenant or DEFAULT_TENANT,
        "project": project or DEFAULT_PROJECT,
    }
    report = diff_reports(
        store.load_report(run_a, **namespace),
        store.load_report(run_b, **namespace),
        tcd_target=tcd_target,
        tcd_threshold=tcd_threshold,
        collapse_factor=collapse_factor,
    )
    return report, run_a, run_b


def render_history(
    store: "RunStore",
    limit: int = 20,
    *,
    tenant: str | None = None,
    project: str | None = None,
    campaign: str | None = None,
) -> str:
    """The stored-run timeline with per-run coverage summaries.

    ``campaign`` narrows the timeline to one campaign's rounds; any
    run carrying campaign meta tags renders a ``campaign@round``
    column so interleaved campaigns stay tellable apart.
    """
    records = store.list_runs(
        limit=limit, tenant=tenant, project=project, campaign=campaign
    )
    if not records:
        if campaign is not None:
            return f"no runs for campaign {campaign} in {store.path}"
        return f"no runs stored in {store.path}"
    show_campaign = any(r.meta.get("campaign") is not None for r in records)
    lines = [
        f"run history ({store.path}, newest first):",
        f"{'id':>4}  {'suite':<18} {'events':>12} {'tested':>7} "
        f"{'untested':>8} {'eps':>10}  seed"
        + ("  campaign" if show_campaign else ""),
    ]
    previous_tested: int | None = None
    for record in records:
        report = store.load_report(
            record.run_id, tenant=record.tenant, project=record.project
        )
        tested = sum(
            len(report.input_coverage.arg(s, a).partition_status()[0])
            for s, a in report.input_coverage.tracked_pairs()
        )
        untested = sum(
            len(v) for v in report.untested_inputs().values()
        ) + sum(len(v) for v in report.untested_outputs().values())
        eps = f"{record.events_per_sec:,.0f}" if record.events_per_sec else "-"
        seed = record.seed if record.seed is not None else "-"
        trend = ""
        if previous_tested is not None and tested != previous_tested:
            # Listed newest-first, so this row is the *older* run.
            arrow = "+" if previous_tested > tested else "-"
            trend = f"  ({arrow}{abs(previous_tested - tested)} vs next)"
        previous_tested = tested
        campaign_note = ""
        if show_campaign:
            name = record.meta.get("campaign")
            if name is not None:
                campaign_note = f"  {name}@{record.meta.get('round', '?')}"
            else:
                campaign_note = "  -"
        lines.append(
            f"{record.run_id:>4}  {record.suite:<18.18} "
            f"{record.events_processed:>12,} {tested:>7} {untested:>8} "
            f"{eps:>10}  {seed}{campaign_note}{trend}"
        )
    return "\n".join(lines)
