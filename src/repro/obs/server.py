"""The ``repro serve`` daemon: HTTP ingest + snapshots + metrics.

A long-running stdlib-only (``http.server``) service around a
:class:`TenantManager` of :class:`~repro.obs.ingest.IngestSession`\\ s
and one :class:`~repro.obs.store.BaseRunStore`:

==============================  =============================================
``POST /ingest``                stream trace lines (chunked or Content-Length
                                body); lines are journaled, parsed, and
                                counted before the response, so a 200 means
                                "visible in /live"
``POST /runs``                  snapshot the live state into the store
``GET  /live``                  live coverage snapshot — byte-identical
                                payload to ``repro analyze --json``
``GET  /runs``                  stored-run index (all namespaces)
``GET  /runs/<id>``             one stored run: metadata + report document
``GET  /session``               ingest counters, quarantine, degradation
``GET  /metrics``               Prometheus exposition (per-tenant labels)
``GET  /healthz``               liveness probe
``…/t/<tenant>/<route>``        any of the above scoped to a tenant
``…/t/<tenant>/p/<proj>/…``     …and to a project within it
==============================  =============================================

Unprefixed routes keep their pre-tenant behavior by mapping to the
server's default namespace, so old clients and dashboards never notice
the refactor.

Concurrency: requests are accepted by a **bounded worker pool** — the
listener thread only enqueues connections; ``workers`` threads run the
HTTP handlers, each connection carries a socket timeout, and when the
accept queue is full the client gets an immediate ``503`` with a
``Retry-After`` hint instead of an unbounded backlog.  Per-tenant
sessions make ingest embarrassingly parallel across namespaces while
each session's own lock keeps a single tenant's stream ordered.

Robustness: the ingest queue is bounded (backpressure to the client),
malformed lines are quarantined against an error budget (HTTP 422 once
exhausted), a half-sent chunked body is abandoned without corrupting
session state beyond its own complete lines, SIGTERM drains every
tenant's queue and snapshots final states, on startup existing
journals are replayed per namespace, and a **store lockfile** refuses
to start a second daemon over the same store (which would corrupt the
journal) rather than failing silently.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import socket
import sys
import threading
import zlib
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Any

from repro.obs.ingest import IngestSession, SessionDegradedError
from repro.obs.metrics import MetricsRegistry
from repro.parallel.pool import PoolUnavailableError, WorkerPool
from repro.obs.store import (
    DEFAULT_PROJECT,
    DEFAULT_TENANT,
    BaseRunStore,
    NamespaceError,
    open_store,
    validate_namespace,
)
from repro.trace.binary import RbtDecoder, RbtError

try:
    import fcntl
except ImportError:  # non-POSIX: locking degrades to best-effort
    fcntl = None  # type: ignore[assignment]

#: ``POST /ingest`` Content-Type for binary ``.rbt`` bodies.
RBT_CONTENT_TYPE = "application/x-rbt"

#: Default daemon port (unregistered; "IOCV" on a phone pad, roughly).
DEFAULT_PORT = 9177

#: Hard cap on one request's body (chunked or not): 256 MiB.
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Default HTTP worker-pool size.
DEFAULT_WORKERS = 8

#: Default bound on connections queued for a free worker.
DEFAULT_CONN_QUEUE = 64

#: Default per-connection socket timeout (seconds).
DEFAULT_CONN_TIMEOUT = 30.0

#: ``Retry-After`` hint (seconds) on backpressure 503 responses.
RETRY_AFTER_SECONDS = 1

#: GIL switch interval (seconds) while a daemon is live.  Concurrent
#: tenants run one CPU-bound parser thread each; the default 5 ms
#: slice makes them convoy on the GIL (~30% aggregate loss measured at
#: 4 clients).  Coarser slices trade a little request-latency fairness
#: for batch throughput — the right trade for an ingest daemon.  The
#: previous value is restored on ``server_close``.
INGEST_SWITCH_INTERVAL = 0.05


class ChunkedBodyError(ValueError):
    """The chunked request body violated the framing grammar."""


class StoreLockError(RuntimeError):
    """Another daemon already holds the store's lockfile."""


class _StoreLock:
    """An exclusive advisory lock over one store path.

    ``flock`` locks die with the process, so a crashed daemon never
    wedges the store — only a *live* second daemon is refused.
    """

    def __init__(self, store_path: str) -> None:
        # Match open_store's directory detection so the lock path is
        # stable whether or not the store exists yet.
        if store_path.endswith(("/", os.sep)) or os.path.isdir(store_path):
            self.path = os.path.join(store_path, ".serve.lock")
        else:
            self.path = store_path + ".lock"
        self._fh: Any = None

    def acquire(self) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        fh = open(self.path, "a+")
        if fcntl is not None:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                fh.close()
                raise StoreLockError(
                    f"another daemon is already serving this store "
                    f"(lockfile {self.path!r} is held); refusing to start — "
                    "two daemons on one store would corrupt the journal"
                ) from None
        self._fh = fh

    def release(self) -> None:
        if self._fh is not None:
            if fcntl is not None:
                try:
                    fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
                except OSError:
                    pass
            self._fh.close()
            self._fh = None


def _read_chunked(rfile, limit: int = MAX_BODY_BYTES):
    """Yield decoded chunks of an RFC 7230 chunked body."""
    total = 0
    while True:
        size_line = rfile.readline(1024)
        if not size_line:
            raise ChunkedBodyError("connection closed mid-body")
        size_text = size_line.split(b";", 1)[0].strip()
        try:
            size = int(size_text, 16)
        except ValueError:
            raise ChunkedBodyError(f"bad chunk size {size_text!r}") from None
        if size == 0:
            # Trailer section: consume until the blank line.
            while True:
                trailer = rfile.readline(1024)
                if trailer in (b"\r\n", b"\n", b""):
                    return
        total += size
        if total > limit:
            raise ChunkedBodyError("chunked body exceeds limit")
        remaining = size
        while remaining:
            piece = rfile.read(min(remaining, 65536))
            if not piece:
                raise ChunkedBodyError("connection closed mid-chunk")
            remaining -= len(piece)
            yield piece
        terminator = rfile.read(1)
        if terminator == b"\r":
            terminator += rfile.read(1)
        # Accept CRLF (the spec) and a bare LF from sloppy clients.
        if terminator not in (b"\r\n", b"\n"):
            raise ChunkedBodyError("missing chunk terminator")


def _gunzip_pieces(pieces):
    """Decompress a gzip-encoded body stream piece by piece."""
    decomp = zlib.decompressobj(16 + zlib.MAX_WBITS)
    for piece in pieces:
        out = decomp.decompress(piece)
        if out:
            yield out
    out = decomp.flush()
    if out:
        yield out
    if not decomp.eof:
        raise zlib.error("truncated gzip body")


class TenantManager:
    """Per-namespace ingest sessions sharing one registry and store.

    Sessions materialize lazily on first use; the *default* namespace's
    session is created eagerly so unprefixed routes (and direct
    ``server.session`` access) always have a target.  All sessions
    share the metrics registry — their samples are told apart by
    ``tenant``/``project`` labels.
    """

    def __init__(
        self,
        *,
        fmt: str = "lttng",
        mount_point: str | None = None,
        suite_name: str = "live",
        store: BaseRunStore | None = None,
        registry: MetricsRegistry | None = None,
        default_tenant: str = DEFAULT_TENANT,
        default_project: str = DEFAULT_PROJECT,
        session_kwargs: dict[str, Any] | None = None,
    ) -> None:
        validate_namespace(default_tenant, default_project)
        self.fmt = fmt
        self.mount_point = mount_point
        self.suite_name = suite_name
        self.store = store
        self.registry = registry or MetricsRegistry()
        self.default = (default_tenant, default_project)
        self._session_kwargs = dict(session_kwargs or {})
        self._lock = threading.Lock()
        self._sessions: dict[tuple[str, str], IngestSession] = {}
        self.session(*self.default)  # the default session always exists

    def session(self, tenant: str, project: str) -> IngestSession:
        """The namespace's session, created on first use.

        Raises:
            NamespaceError: bad tenant/project name.
        """
        validate_namespace(tenant, project)
        key = (tenant, project)
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                session = IngestSession(
                    self.fmt,
                    mount_point=self.mount_point,
                    suite_name=self.suite_name,
                    store=self.store,
                    registry=self.registry,
                    tenant=tenant,
                    project=project,
                    **self._session_kwargs,
                )
                self._sessions[key] = session
            return session

    def peek(self, tenant: str, project: str) -> IngestSession | None:
        """The namespace's session if it exists, else None."""
        with self._lock:
            return self._sessions.get((tenant, project))

    @property
    def default_session(self) -> IngestSession:
        return self.session(*self.default)

    def sessions(self) -> list[IngestSession]:
        with self._lock:
            return list(self._sessions.values())

    def close_all(self, *, drain: bool = True) -> None:
        for session in self.sessions():
            session.close(drain=drain)


class ObsServer(HTTPServer):
    """The daemon: pooled HTTP front end over tenant ingest sessions.

    The listener (``serve_forever``) thread never runs a handler — it
    hands accepted connections to a bounded queue serviced by
    ``workers`` threads.  A full queue answers ``503`` + ``Retry-After``
    immediately, bounding both memory and client latency.
    """

    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        *,
        tenants: TenantManager,
        store: BaseRunStore | None,
        store_lock: _StoreLock | None = None,
        workers: int = DEFAULT_WORKERS,
        conn_queue: int = DEFAULT_CONN_QUEUE,
        conn_timeout: float = DEFAULT_CONN_TIMEOUT,
        analysis_pool: WorkerPool | None = None,
    ) -> None:
        super().__init__(address, ObsRequestHandler)
        self._old_switch_interval = sys.getswitchinterval()
        sys.setswitchinterval(INGEST_SWITCH_INTERVAL)
        self.tenants = tenants
        self.store = store
        #: the daemon's own analysis pool (``--analysis-workers``); a
        #: dedicated instance, not the process-global one, so closing
        #: the daemon never tears down a concurrent ``run_sharded``.
        self.analysis_pool = analysis_pool
        self.conn_timeout = conn_timeout
        self.draining = False
        self.drained = threading.Event()
        self._store_lock = store_lock
        self._conn_queue: queue.Queue = queue.Queue(maxsize=conn_queue)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"iocov-http-{i}", daemon=True
            )
            for i in range(max(1, workers))
        ]
        for worker in self._workers:
            worker.start()

    @property
    def session(self) -> IngestSession:
        """The default namespace's session (pre-tenant compatibility)."""
        return self.tenants.default_session

    # -- the worker pool ------------------------------------------------------

    def process_request(self, request, client_address) -> None:
        """Enqueue the accepted connection; reject when saturated."""
        try:
            request.settimeout(self.conn_timeout)
        except OSError:
            pass
        try:
            self._conn_queue.put_nowait((request, client_address))
        except queue.Full:
            self._reject_busy(request)

    def _reject_busy(self, request) -> None:
        body = json.dumps(
            {"error": "server busy", "retry_after": RETRY_AFTER_SECONDS}
        ).encode("utf-8")
        head = (
            "HTTP/1.1 503 Service Unavailable\r\n"
            "Content-Type: application/json; charset=utf-8\r\n"
            f"Retry-After: {RETRY_AFTER_SECONDS}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            request.sendall(head + body)
        except OSError:
            pass
        finally:
            self.shutdown_request(request)

    def _worker_loop(self) -> None:
        while True:
            item = self._conn_queue.get()
            if item is None:
                return
            request, client_address = item
            try:
                self.finish_request(request, client_address)
            except Exception:
                self.handle_error(request, client_address)
            finally:
                self.shutdown_request(request)

    def _stop_workers(self) -> None:
        workers, self._workers = self._workers, []
        for _ in workers:
            self._conn_queue.put(None)
        for worker in workers:
            worker.join(timeout=5)

    def handle_error(self, request, client_address) -> None:  # noqa: D102
        pass  # per-connection failures are the client's problem, not ours

    def server_close(self) -> None:
        super().server_close()
        self._stop_workers()
        sys.setswitchinterval(self._old_switch_interval)
        if self.analysis_pool is not None:
            self.analysis_pool.shutdown()
            self.analysis_pool = None
        if self._store_lock is not None:
            self._store_lock.release()
            self._store_lock = None

    # -- drain ----------------------------------------------------------------

    def drain_and_stop(self, *, snapshot: bool = True) -> int | None:
        """The SIGTERM path: stop intake, count everything, snapshot.

        Every tenant session flushes; with *snapshot*, the default
        session always snapshots (pre-tenant behavior) and other
        tenants snapshot when they ingested anything.  Returns the
        default session's snapshot run id (None when *snapshot* is off
        or no store is attached).  Idempotent.
        """
        if self.draining:
            self.drained.wait()
            return None
        self.draining = True
        run_id: int | None = None
        try:
            sessions = self.tenants.sessions()
            for session in sessions:
                session.flush()
            if snapshot and self.store is not None:
                default = self.tenants.default
                for session in sessions:
                    is_default = (session.tenant, session.project) == default
                    saw_data = session.lines_received or session.batches_received
                    if is_default or saw_data:
                        rid = session.snapshot_to_store(meta={"reason": "drain"})
                        if is_default:
                            run_id = rid
            for session in sessions:
                session.close(drain=True)
        finally:
            self.drained.set()
            # shutdown() must come from another thread than the serve
            # loop; the signal handler spawns one.
            threading.Thread(target=self.shutdown, daemon=True).start()
        return run_id

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only)."""

        def _handle(signum: int, _frame: Any) -> None:
            threading.Thread(
                target=self.drain_and_stop, name="iocov-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)


class ObsRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ObsServer  # narrowed type

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the daemon stays quiet; metrics carry the signal

    def _send(
        self,
        code: int,
        body: str,
        content_type: str = "application/json",
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(
        self, code: int, document: dict, extra_headers: dict[str, str] | None = None
    ) -> None:
        self._send(
            code, json.dumps(document, indent=2, default=str),
            extra_headers=extra_headers,
        )

    def _route(self) -> tuple[str, str, str] | None:
        """Split the request path into ``(tenant, project, route)``.

        ``/t/<tenant>[/p/<project>]/<route>`` scopes to a namespace;
        anything else maps to the server's default namespace.  Answers
        400 and returns None on a bad namespace name.
        """
        path = self.path.split("?", 1)[0]
        tenant, project = self.server.tenants.default
        if path == "/t" or path.startswith("/t/"):
            parts = path.split("/", 3)  # '', 't', tenant, rest
            tenant = parts[2] if len(parts) > 2 else ""
            path = "/" + (parts[3] if len(parts) > 3 else "")
            if path == "/p" or path.startswith("/p/"):
                parts = path.split("/", 3)
                project = parts[2] if len(parts) > 2 else ""
                path = "/" + (parts[3] if len(parts) > 3 else "")
        try:
            validate_namespace(tenant, project)
        except NamespaceError as exc:
            self._send_json(400, {"error": str(exc)})
            return None
        route = path.rstrip("/") or "/"
        return tenant, project, route

    # -- GET ------------------------------------------------------------------

    def do_GET(self) -> None:
        routed = self._route()
        if routed is None:
            return
        tenant, project, path = routed
        scoped = (tenant, project) != self.server.tenants.default or \
            self.path.split("?", 1)[0].startswith("/t/")
        if path == "/live":
            # The exact `repro analyze --json` payload (no envelope):
            # CI diffs this byte-for-byte against the one-shot path.
            session = self.server.tenants.session(tenant, project)
            self._send(200, session.report().to_json())
        elif path == "/session":
            session = self.server.tenants.session(tenant, project)
            self._send_json(200, session.stats())
        elif path == "/metrics":
            self._send(
                200,
                self.server.tenants.registry.render(),
                content_type="text/plain; version=0.0.4",
            )
        elif path == "/healthz":
            sessions = self.server.tenants.sessions()
            self._send_json(
                200,
                {
                    "status": (
                        "degraded"
                        if any(s.degraded for s in sessions)
                        else "ok"
                    ),
                    "draining": self.server.draining,
                    "tenants": len({s.tenant for s in sessions}),
                    "sessions": len(sessions),
                    "analysis_workers": (
                        self.server.analysis_pool.workers
                        if self.server.analysis_pool is not None
                        else 0
                    ),
                },
            )
        elif path == "/runs":
            if self.server.store is None:
                self._send_json(503, {"error": "no run store attached"})
                return
            if scoped:
                records = self.server.store.list_runs(
                    tenant=tenant, project=project
                )
            else:
                records = self.server.store.list_runs()
            self._send_json(200, {"runs": [r.to_dict() for r in records]})
        elif path.startswith("/runs/"):
            self._get_run(path[len("/runs/"):], tenant, project, scoped)
        else:
            self._send_json(404, {"error": f"no route {path}"})

    def _get_run(self, ref: str, tenant: str, project: str, scoped: bool) -> None:
        store = self.server.store
        if store is None:
            self._send_json(503, {"error": "no run store attached"})
            return
        try:
            if scoped:
                run_id = store.resolve(ref, tenant=tenant, project=project)
                record = store.get_run(run_id, tenant=tenant, project=project)
                report = store.load_report(run_id, tenant=tenant, project=project)
            else:
                run_id = store.resolve(ref)
                record = store.get_run(run_id)
                report = store.load_report(run_id)
        except (KeyError, ValueError) as exc:
            self._send_json(404, {"error": str(exc)})
            return
        self._send_json(200, {"run": record.to_dict(), "coverage": report.to_dict()})

    # -- POST -----------------------------------------------------------------

    def do_POST(self) -> None:
        routed = self._route()
        if routed is None:
            return
        tenant, project, path = routed
        if path == "/ingest":
            self._post_ingest(tenant, project)
        elif path == "/runs":
            self._post_runs(tenant, project)
        else:
            self._send_json(404, {"error": f"no route {path}"})

    def _post_ingest(self, tenant: str, project: str) -> None:
        if self.server.draining:
            self._send_json(
                503,
                {"error": "daemon is draining",
                 "retry_after": RETRY_AFTER_SECONDS},
                extra_headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
            return
        session = self.server.tenants.session(tenant, project)
        content_type = (
            (self.headers.get("Content-Type") or "").split(";", 1)[0].strip().lower()
        )
        binary = content_type == RBT_CONTENT_TYPE
        before_errors = session.parser.malformed_lines
        fed = 0

        def _counted_pieces():
            nonlocal fed
            for piece in self._body_pieces():
                fed += len(piece)
                yield piece

        pieces = _counted_pieces()
        if "gzip" in (self.headers.get("Content-Encoding") or "").lower():
            pieces = _gunzip_pieces(pieces)
        try:
            with session.feed_lock:
                if binary:
                    decoder = RbtDecoder()
                    for piece in pieces:
                        for frame in decoder.feed(piece):
                            session.feed_batch(frame)
                    decoder.end()
                else:
                    for piece in pieces:
                        session.feed_text(piece.decode("utf-8", errors="replace"))
                    session.end_of_stream()
            # Flush outside feed_lock: it blocks on the worker (up to
            # 30 s) and only needs to *follow* this request's enqueues,
            # which the queue's FIFO order already guarantees — holding
            # the lock through it would starve every other feeder.
            flushed = session.flush()
        except SessionDegradedError as exc:
            self._send_json(422, {"error": str(exc), "session": session.stats()})
            return
        except (RbtError, zlib.error) as exc:
            # Frames already decoded and fed stay counted (they are
            # complete, valid trace data); the broken remainder is
            # rejected with the request.
            self._send_json(400, {"error": str(exc), "bytes_fed": fed})
            return
        except ChunkedBodyError as exc:
            # Complete lines already fed stay counted (they are valid
            # trace data); the partial tail is dropped with the request.
            try:
                self._send_json(400, {"error": str(exc), "bytes_fed": fed})
            except (ConnectionError, BrokenPipeError):
                pass  # the client that broke the body also went away
            self.close_connection = True
            return
        except (ConnectionError, socket.timeout):
            # Client went away mid-body; nothing to answer.
            self.close_connection = True
            return
        stats = session.stats()
        document = {
            "accepted_bytes": fed,
            "flushed": flushed,
            "tenant": tenant,
            "project": project,
            "new_parse_errors": stats["parse_errors"] - before_errors,
            "events_counted": stats["events_counted"],
            "degraded": stats["degraded"],
        }
        if stats["degraded"]:
            # This request's own lines exhausted the budget: tell the
            # client now, not on its next attempt.
            document["error"] = "error budget exhausted"
            self._send_json(422, document)
            return
        self._send_json(200, document)

    def _body_pieces(self):
        encoding = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in encoding:
            yield from _read_chunked(self.rfile)
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ChunkedBodyError("body exceeds limit")
        remaining = length
        while remaining:
            piece = self.rfile.read(min(remaining, 65536))
            if not piece:
                raise ChunkedBodyError("connection closed mid-body")
            remaining -= len(piece)
            yield piece

    def _post_runs(self, tenant: str, project: str) -> None:
        if self.server.store is None:
            self._send_json(503, {"error": "no run store attached"})
            return
        # Consume any (small) JSON body of extra metadata.
        length = int(self.headers.get("Content-Length") or 0)
        meta: dict[str, Any] = {}
        if 0 < length <= 1_000_000:
            try:
                meta = json.loads(self.rfile.read(length) or b"{}")
            except ValueError:
                self._send_json(400, {"error": "metadata body is not JSON"})
                return
        session = self.server.tenants.session(tenant, project)
        run_id = session.snapshot_to_store(meta=meta)
        record = self.server.store.get_run(
            run_id, tenant=tenant, project=project
        )
        self._send_json(201, {"run": record.to_dict()})


def make_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    fmt: str = "lttng",
    mount_point: str | None = None,
    suite_name: str = "live",
    store_path: str | None = None,
    queue_size: int | None = None,
    error_budget: float | None = None,
    recover: bool = True,
    backend: str = "auto",
    journal_batch: int | None = None,
    workers: int = DEFAULT_WORKERS,
    conn_queue: int = DEFAULT_CONN_QUEUE,
    conn_timeout: float = DEFAULT_CONN_TIMEOUT,
    tenant: str = DEFAULT_TENANT,
    project: str = DEFAULT_PROJECT,
    analysis_workers: int | None = None,
) -> tuple[ObsServer, int]:
    """Build the daemon; returns ``(server, journal_lines_recovered)``.

    With *recover* (the default) any journal left by a crashed daemon
    is replayed — per namespace — into fresh live analyzers before the
    server starts accepting traffic, so every tenant's ``/live``
    resumes from its durable state.  *tenant*/*project* set the default
    namespace that unprefixed routes map to.

    *analysis_workers* starts a dedicated persistent worker pool and
    offloads every session's chunk parsing to it (namespace→worker
    affinity preserves per-session ordering); on platforms that cannot
    start subprocesses the daemon warns and runs in-process.

    Raises:
        StoreLockError: another live daemon holds this store.
    """
    analysis_pool: WorkerPool | None = None
    if analysis_workers is not None and analysis_workers >= 1:
        try:
            analysis_pool = WorkerPool(analysis_workers, name="iocovobs")
        except PoolUnavailableError as exc:
            print(
                f"repro serve: analysis workers unavailable ({exc}); "
                "parsing stays in-process",
                file=sys.stderr,
            )
    store_lock: _StoreLock | None = None
    store: BaseRunStore | None = None
    if store_path:
        store_lock = _StoreLock(store_path)
        store_lock.acquire()
        try:
            store = open_store(
                store_path, backend=backend, journal_batch=journal_batch
            )
        except BaseException:
            store_lock.release()
            if analysis_pool is not None:
                analysis_pool.shutdown()
            raise
    session_kwargs: dict[str, Any] = {}
    if queue_size is not None:
        session_kwargs["queue_size"] = queue_size
    if error_budget is not None:
        session_kwargs["error_budget"] = error_budget
    if analysis_pool is not None:
        session_kwargs["pool"] = analysis_pool
    tenants = TenantManager(
        fmt=fmt,
        mount_point=mount_point,
        suite_name=suite_name,
        store=store,
        default_tenant=tenant,
        default_project=project,
        session_kwargs=session_kwargs,
    )
    recovered = 0
    if store is not None:
        namespaces = store.journal_namespaces()
        default_ns = tenants.default
        if default_ns not in namespaces:
            namespaces.append(default_ns)
        for ns_tenant, ns_project in namespaces:
            session = tenants.session(ns_tenant, ns_project)
            if recover:
                recovered += session.recover()
            else:
                store.journal_clear(
                    session.journal_session,
                    tenant=ns_tenant, project=ns_project,
                )
    server = ObsServer(
        (host, port),
        tenants=tenants,
        store=store,
        store_lock=store_lock,
        workers=workers,
        conn_queue=conn_queue,
        conn_timeout=conn_timeout,
        analysis_pool=analysis_pool,
    )
    return server, recovered
