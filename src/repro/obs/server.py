"""The ``repro serve`` daemon: HTTP ingest + snapshots + metrics.

A long-running stdlib-only (``http.server``) service around one
:class:`~repro.obs.ingest.IngestSession` and one
:class:`~repro.obs.store.RunStore`:

======================  =====================================================
``POST /ingest``        stream trace lines (chunked or Content-Length body);
                        lines are journaled, parsed, and counted before the
                        response, so a 200 means "visible in /live"
``POST /runs``          snapshot the live state into the store as a run
``GET  /live``          live coverage snapshot — byte-identical payload to
                        ``repro analyze --json`` on the same trace bytes
``GET  /runs``          stored-run index (metadata only)
``GET  /runs/<id>``     one stored run: metadata + full report document
``GET  /session``       ingest counters, quarantine sample, degradation
``GET  /metrics``       Prometheus text-format exposition
``GET  /healthz``       liveness probe
======================  =====================================================

Robustness: the ingest queue is bounded (backpressure to the client),
malformed lines are quarantined against an error budget (HTTP 422 once
exhausted), a half-sent chunked body is abandoned without corrupting
session state beyond its own complete lines, SIGTERM drains the queue
and snapshots the final state, and on startup an existing journal is
replayed so a crashed daemon resumes exactly where it stopped counting.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.ingest import IngestSession, SessionDegradedError
from repro.obs.store import RunStore
from repro.trace.binary import RbtDecoder, RbtError

#: ``POST /ingest`` Content-Type for binary ``.rbt`` bodies.
RBT_CONTENT_TYPE = "application/x-rbt"

#: Default daemon port (unregistered; "IOCV" on a phone pad, roughly).
DEFAULT_PORT = 9177

#: Hard cap on one request's body (chunked or not): 256 MiB.
MAX_BODY_BYTES = 256 * 1024 * 1024


class ChunkedBodyError(ValueError):
    """The chunked request body violated the framing grammar."""


def _read_chunked(rfile, limit: int = MAX_BODY_BYTES):
    """Yield decoded chunks of an RFC 7230 chunked body."""
    total = 0
    while True:
        size_line = rfile.readline(1024)
        if not size_line:
            raise ChunkedBodyError("connection closed mid-body")
        size_text = size_line.split(b";", 1)[0].strip()
        try:
            size = int(size_text, 16)
        except ValueError:
            raise ChunkedBodyError(f"bad chunk size {size_text!r}") from None
        if size == 0:
            # Trailer section: consume until the blank line.
            while True:
                trailer = rfile.readline(1024)
                if trailer in (b"\r\n", b"\n", b""):
                    return
        total += size
        if total > limit:
            raise ChunkedBodyError("chunked body exceeds limit")
        remaining = size
        while remaining:
            piece = rfile.read(min(remaining, 65536))
            if not piece:
                raise ChunkedBodyError("connection closed mid-chunk")
            remaining -= len(piece)
            yield piece
        terminator = rfile.read(1)
        if terminator == b"\r":
            terminator += rfile.read(1)
        # Accept CRLF (the spec) and a bare LF from sloppy clients.
        if terminator not in (b"\r\n", b"\n"):
            raise ChunkedBodyError("missing chunk terminator")


def _gunzip_pieces(pieces):
    """Decompress a gzip-encoded body stream piece by piece."""
    decomp = zlib.decompressobj(16 + zlib.MAX_WBITS)
    for piece in pieces:
        out = decomp.decompress(piece)
        if out:
            yield out
    out = decomp.flush()
    if out:
        yield out
    if not decomp.eof:
        raise zlib.error("truncated gzip body")


class ObsServer(ThreadingHTTPServer):
    """The daemon: HTTP front end over one ingest session and store."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        *,
        session: IngestSession,
        store: RunStore | None,
    ) -> None:
        super().__init__(address, ObsRequestHandler)
        self.session = session
        self.store = store
        self.draining = False
        self.drained = threading.Event()

    def drain_and_stop(self, *, snapshot: bool = True) -> int | None:
        """The SIGTERM path: stop intake, count everything, snapshot.

        Returns the snapshot's run id (None when *snapshot* is off or
        no store is attached).  Idempotent.
        """
        if self.draining:
            self.drained.wait()
            return None
        self.draining = True
        run_id: int | None = None
        try:
            self.session.flush()
            if snapshot and self.store is not None:
                run_id = self.session.snapshot_to_store(meta={"reason": "drain"})
            self.session.close(drain=True)
        finally:
            self.drained.set()
            # shutdown() must come from another thread than the serve
            # loop; the signal handler spawns one.
            threading.Thread(target=self.shutdown, daemon=True).start()
        return run_id

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only)."""

        def _handle(signum: int, _frame: Any) -> None:
            threading.Thread(
                target=self.drain_and_stop, name="iocov-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)


class ObsRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ObsServer  # narrowed type

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the daemon stays quiet; metrics carry the signal

    def _send(self, code: int, body: str, content_type: str = "application/json") -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, code: int, document: dict) -> None:
        self._send(code, json.dumps(document, indent=2, default=str))

    @property
    def session(self) -> IngestSession:
        return self.server.session

    # -- GET ------------------------------------------------------------------

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/live":
            # The exact `repro analyze --json` payload (no envelope):
            # CI diffs this byte-for-byte against the one-shot path.
            self._send(200, self.session.report().to_json())
        elif path == "/session":
            self._send_json(200, self.session.stats())
        elif path == "/metrics":
            self._send(
                200,
                self.session.registry.render(),
                content_type="text/plain; version=0.0.4",
            )
        elif path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "degraded" if self.session.degraded else "ok",
                    "draining": self.server.draining,
                },
            )
        elif path == "/runs":
            if self.server.store is None:
                self._send_json(503, {"error": "no run store attached"})
                return
            self._send_json(
                200,
                {"runs": [r.to_dict() for r in self.server.store.list_runs()]},
            )
        elif path.startswith("/runs/"):
            self._get_run(path[len("/runs/"):])
        else:
            self._send_json(404, {"error": f"no route {path}"})

    def _get_run(self, ref: str) -> None:
        store = self.server.store
        if store is None:
            self._send_json(503, {"error": "no run store attached"})
            return
        try:
            run_id = store.resolve(ref)
            record = store.get_run(run_id)
            report = store.load_report(run_id)
        except (KeyError, ValueError) as exc:
            self._send_json(404, {"error": str(exc)})
            return
        self._send_json(200, {"run": record.to_dict(), "coverage": report.to_dict()})

    # -- POST -----------------------------------------------------------------

    def do_POST(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/ingest":
            self._post_ingest()
        elif path == "/runs":
            self._post_runs()
        else:
            self._send_json(404, {"error": f"no route {path}"})

    def _post_ingest(self) -> None:
        if self.server.draining:
            self._send_json(503, {"error": "daemon is draining"})
            return
        session = self.session
        content_type = (
            (self.headers.get("Content-Type") or "").split(";", 1)[0].strip().lower()
        )
        binary = content_type == RBT_CONTENT_TYPE
        before_errors = session.parser.malformed_lines
        fed = 0

        def _counted_pieces():
            nonlocal fed
            for piece in self._body_pieces():
                fed += len(piece)
                yield piece

        pieces = _counted_pieces()
        if "gzip" in (self.headers.get("Content-Encoding") or "").lower():
            pieces = _gunzip_pieces(pieces)
        try:
            with session.feed_lock:
                if binary:
                    decoder = RbtDecoder()
                    for piece in pieces:
                        for frame in decoder.feed(piece):
                            session.feed_batch(frame)
                    decoder.end()
                else:
                    for piece in pieces:
                        session.feed_text(piece.decode("utf-8", errors="replace"))
                    session.end_of_stream()
                flushed = session.flush()
        except SessionDegradedError as exc:
            self._send_json(422, {"error": str(exc), "session": session.stats()})
            return
        except (RbtError, zlib.error) as exc:
            # Frames already decoded and fed stay counted (they are
            # complete, valid trace data); the broken remainder is
            # rejected with the request.
            self._send_json(400, {"error": str(exc), "bytes_fed": fed})
            return
        except ChunkedBodyError as exc:
            # Complete lines already fed stay counted (they are valid
            # trace data); the partial tail is dropped with the request.
            try:
                self._send_json(400, {"error": str(exc), "bytes_fed": fed})
            except (ConnectionError, BrokenPipeError):
                pass  # the client that broke the body also went away
            self.close_connection = True
            return
        except (ConnectionError, socket.timeout):
            # Client went away mid-body; nothing to answer.
            self.close_connection = True
            return
        stats = session.stats()
        document = {
            "accepted_bytes": fed,
            "flushed": flushed,
            "new_parse_errors": stats["parse_errors"] - before_errors,
            "events_counted": stats["events_counted"],
            "degraded": stats["degraded"],
        }
        if stats["degraded"]:
            # This request's own lines exhausted the budget: tell the
            # client now, not on its next attempt.
            document["error"] = "error budget exhausted"
            self._send_json(422, document)
            return
        self._send_json(200, document)

    def _body_pieces(self):
        encoding = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in encoding:
            yield from _read_chunked(self.rfile)
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ChunkedBodyError("body exceeds limit")
        remaining = length
        while remaining:
            piece = self.rfile.read(min(remaining, 65536))
            if not piece:
                raise ChunkedBodyError("connection closed mid-body")
            remaining -= len(piece)
            yield piece

    def _post_runs(self) -> None:
        if self.server.store is None:
            self._send_json(503, {"error": "no run store attached"})
            return
        # Consume any (small) JSON body of extra metadata.
        length = int(self.headers.get("Content-Length") or 0)
        meta: dict[str, Any] = {}
        if 0 < length <= 1_000_000:
            try:
                meta = json.loads(self.rfile.read(length) or b"{}")
            except ValueError:
                self._send_json(400, {"error": "metadata body is not JSON"})
                return
        run_id = self.session.snapshot_to_store(meta=meta)
        record = self.server.store.get_run(run_id)
        self._send_json(201, {"run": record.to_dict()})


def make_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    fmt: str = "lttng",
    mount_point: str | None = None,
    suite_name: str = "live",
    store_path: str | None = None,
    queue_size: int | None = None,
    error_budget: float | None = None,
    recover: bool = True,
) -> tuple[ObsServer, int]:
    """Build the daemon; returns ``(server, journal_lines_recovered)``.

    With *recover* (the default) any journal left by a crashed daemon
    is replayed into the live analyzer before the server starts
    accepting traffic, so ``/live`` resumes from the durable state.
    """
    store = RunStore(store_path) if store_path else None
    kwargs: dict[str, Any] = {}
    if queue_size is not None:
        kwargs["queue_size"] = queue_size
    if error_budget is not None:
        kwargs["error_budget"] = error_budget
    session = IngestSession(
        fmt,
        mount_point=mount_point,
        suite_name=suite_name,
        store=store,
        **kwargs,
    )
    recovered = 0
    if store is not None:
        if recover:
            recovered = session.recover()
        else:
            store.journal_clear(session.journal_session)
    server = ObsServer((host, port), session=session, store=store)
    return server, recovered
