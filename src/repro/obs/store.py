"""The run store: durable, schema-versioned coverage history.

One SQLite file holds every analyzed run — the full report document
(for lossless reload via :meth:`CoverageReport.from_dict`), normalized
per-partition count tables (for SQL over history), per-run TCD scores,
and the metadata that makes a run reproducible: suite name, RNG seed,
trace path and format, shard count, wall clock, and throughput.

The store also carries the ingest **journal**: the daemon appends every
accepted raw trace line before counting it, so a crash between two
snapshots loses nothing — on restart the journal is replayed through
the same parser into a fresh analyzer (see :mod:`repro.obs.server`).

Concurrency: SQLite in WAL mode behind a per-store lock.  One process
may serve reads and writes from many threads (the daemon does); for
multi-process use every writer opens its own :class:`RunStore`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.core.report import CoverageReport

#: Current on-disk schema version; bumped on incompatible changes.
SCHEMA_VERSION = 1

#: Uniform TCD target recorded with every run (same default the
#: regression gate uses, so stored scores and gate thresholds align).
DEFAULT_TCD_TARGET = 1000.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    suite            TEXT NOT NULL,
    created_at       REAL NOT NULL,
    trace_path       TEXT,
    trace_format     TEXT,
    seed             INTEGER,
    jobs             INTEGER,
    events_processed INTEGER NOT NULL DEFAULT 0,
    events_admitted  INTEGER NOT NULL DEFAULT 0,
    wall_seconds     REAL,
    events_per_sec   REAL,
    meta_json        TEXT NOT NULL DEFAULT '{}',
    report_json      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS input_counts (
    run_id    INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    syscall   TEXT NOT NULL,
    arg       TEXT NOT NULL,
    partition TEXT NOT NULL,
    count     INTEGER NOT NULL,
    PRIMARY KEY (run_id, syscall, arg, partition)
);
CREATE TABLE IF NOT EXISTS output_counts (
    run_id    INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    syscall   TEXT NOT NULL,
    partition TEXT NOT NULL,
    count     INTEGER NOT NULL,
    PRIMARY KEY (run_id, syscall, partition)
);
CREATE TABLE IF NOT EXISTS tcd_scores (
    run_id  INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    kind    TEXT NOT NULL,
    syscall TEXT NOT NULL,
    arg     TEXT NOT NULL DEFAULT '',
    target  REAL NOT NULL,
    tcd     REAL NOT NULL,
    PRIMARY KEY (run_id, kind, syscall, arg)
);
CREATE TABLE IF NOT EXISTS journal (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    session TEXT NOT NULL,
    line    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS journal_session ON journal (session, seq);
"""


class StoreVersionError(RuntimeError):
    """The store file was written by an incompatible schema version."""


@dataclass(frozen=True)
class RunRecord:
    """One stored run's metadata row (the report loads separately)."""

    run_id: int
    suite: str
    created_at: float
    trace_path: str | None
    trace_format: str | None
    seed: int | None
    jobs: int | None
    events_processed: int
    events_admitted: int
    wall_seconds: float | None
    events_per_sec: float | None
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "suite": self.suite,
            "created_at": self.created_at,
            "trace_path": self.trace_path,
            "trace_format": self.trace_format,
            "seed": self.seed,
            "jobs": self.jobs,
            "events_processed": self.events_processed,
            "events_admitted": self.events_admitted,
            "wall_seconds": self.wall_seconds,
            "events_per_sec": self.events_per_sec,
            "meta": self.meta,
        }


class RunStore:
    """Durable coverage-run history in one SQLite file.

    Args:
        path: database file (parent directories are created); use
            ``":memory:"`` for an ephemeral store in tests.
        tcd_target: uniform target recorded with each run's TCD scores.
    """

    def __init__(self, path: str, tcd_target: float = DEFAULT_TCD_TARGET) -> None:
        self.path = path
        self.tcd_target = tcd_target
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._init_schema()

    def _init_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM schema_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO schema_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                return
            found = int(row["value"])
            if found > SCHEMA_VERSION:
                raise StoreVersionError(
                    f"store {self.path!r} has schema v{found}, this build "
                    f"understands up to v{SCHEMA_VERSION}; refusing to touch it"
                )
            # Older versions would migrate here; v1 is the first schema.

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- saving runs ----------------------------------------------------------

    def save_report(
        self,
        report: CoverageReport,
        *,
        trace_path: str | None = None,
        trace_format: str | None = None,
        seed: int | None = None,
        jobs: int | None = None,
        wall_seconds: float | None = None,
        meta: Mapping[str, Any] | None = None,
        created_at: float | None = None,
    ) -> int:
        """Persist one full coverage run; returns the new run id."""
        document = report.to_dict()
        events_per_sec = None
        if wall_seconds and wall_seconds > 0:
            events_per_sec = report.events_processed / wall_seconds
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (suite, created_at, trace_path, trace_format,"
                " seed, jobs, events_processed, events_admitted, wall_seconds,"
                " events_per_sec, meta_json, report_json)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    report.suite_name,
                    created_at if created_at is not None else time.time(),
                    trace_path,
                    trace_format,
                    seed,
                    jobs,
                    report.events_processed,
                    report.events_admitted,
                    wall_seconds,
                    events_per_sec,
                    json.dumps(dict(meta or {}), sort_keys=True),
                    json.dumps(document),
                ),
            )
            run_id = int(cursor.lastrowid)
            self._conn.executemany(
                "INSERT INTO input_counts VALUES (?, ?, ?, ?, ?)",
                (
                    (run_id, syscall, arg, partition, count)
                    for syscall, args in document["input_coverage"].items()
                    for arg, frequencies in args.items()
                    for partition, count in frequencies.items()
                    if count
                ),
            )
            self._conn.executemany(
                "INSERT INTO output_counts VALUES (?, ?, ?, ?)",
                (
                    (run_id, syscall, partition, count)
                    for syscall, frequencies in document["output_coverage"].items()
                    for partition, count in frequencies.items()
                    if count
                ),
            )
            self._conn.executemany(
                "INSERT INTO tcd_scores VALUES (?, ?, ?, ?, ?, ?)",
                self._tcd_rows(run_id, report),
            )
        return run_id

    def _tcd_rows(
        self, run_id: int, report: CoverageReport
    ) -> Iterator[tuple[int, str, str, str, float, float]]:
        target = self.tcd_target
        for syscall, arg in report.input_coverage.tracked_pairs():
            yield (run_id, "input", syscall, arg, target,
                   report.input_tcd(syscall, arg, target))
        for syscall in report.output_coverage.tracked_syscalls():
            yield (run_id, "output", syscall, "", target,
                   report.output_tcd(syscall, target))

    # -- loading runs ---------------------------------------------------------

    def _record(self, row: sqlite3.Row) -> RunRecord:
        return RunRecord(
            run_id=row["id"],
            suite=row["suite"],
            created_at=row["created_at"],
            trace_path=row["trace_path"],
            trace_format=row["trace_format"],
            seed=row["seed"],
            jobs=row["jobs"],
            events_processed=row["events_processed"],
            events_admitted=row["events_admitted"],
            wall_seconds=row["wall_seconds"],
            events_per_sec=row["events_per_sec"],
            meta=json.loads(row["meta_json"]),
        )

    def get_run(self, run_id: int) -> RunRecord:
        """Metadata for one run.

        Raises:
            KeyError: no such run.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise KeyError(f"no run {run_id} in {self.path}")
        return self._record(row)

    def load_report(self, run_id: int) -> CoverageReport:
        """Reload one run's full report (lossless round trip).

        Raises:
            KeyError: no such run.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT report_json FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise KeyError(f"no run {run_id} in {self.path}")
        return CoverageReport.from_dict(json.loads(row["report_json"]))

    def list_runs(self, limit: int | None = None, suite: str | None = None) -> list[RunRecord]:
        """Runs newest-first, optionally filtered by suite name."""
        query = "SELECT * FROM runs"
        params: list[Any] = []
        if suite is not None:
            query += " WHERE suite = ?"
            params.append(suite)
        query += " ORDER BY id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(limit)
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [self._record(row) for row in rows]

    def tcd_score(self, run_id: int, kind: str, syscall: str, arg: str = "") -> float:
        """One stored TCD score.

        Raises:
            KeyError: run or score missing.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT tcd FROM tcd_scores WHERE run_id = ? AND kind = ?"
                " AND syscall = ? AND arg = ?",
                (run_id, kind, syscall, arg),
            ).fetchone()
        if row is None:
            raise KeyError(f"no {kind} TCD for run {run_id} {syscall}.{arg}")
        return float(row["tcd"])

    def resolve(self, ref: str) -> int:
        """Resolve a run reference to an id.

        Accepts a numeric id, ``latest``, or ``latest~N`` (the Nth run
        before the newest, git-style).

        Raises:
            KeyError: the reference names no stored run.
            ValueError: the reference is not in a recognized form.
        """
        ref = ref.strip()
        if ref.isdigit():
            return self.get_run(int(ref)).run_id
        if ref == "latest":
            offset = 0
        elif ref.startswith("latest~"):
            tail = ref[len("latest~"):]
            if not tail.isdigit():
                raise ValueError(f"bad run reference: {ref!r}")
            offset = int(tail)
        else:
            raise ValueError(f"bad run reference: {ref!r}")
        with self._lock:
            row = self._conn.execute(
                "SELECT id FROM runs ORDER BY id DESC LIMIT 1 OFFSET ?",
                (offset,),
            ).fetchone()
        if row is None:
            raise KeyError(f"no run at reference {ref!r} in {self.path}")
        return int(row["id"])

    def delete_run(self, run_id: int) -> None:
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM runs WHERE id = ?", (run_id,))

    # -- the ingest journal ---------------------------------------------------

    def journal_append(self, session: str, lines: Iterable[str]) -> None:
        """Durably record raw trace lines before they are counted."""
        with self._lock, self._conn:
            self._conn.executemany(
                "INSERT INTO journal (session, line) VALUES (?, ?)",
                ((session, line) for line in lines),
            )

    def journal_lines(self, session: str) -> Iterator[str]:
        """Replay a session's journal in append order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT line FROM journal WHERE session = ? ORDER BY seq",
                (session,),
            ).fetchall()
        for row in rows:
            yield row["line"]

    def journal_size(self, session: str) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM journal WHERE session = ?", (session,)
            ).fetchone()
        return int(row["n"])

    def journal_clear(self, session: str) -> None:
        """Drop a session's journal (after its snapshot persisted)."""
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM journal WHERE session = ?", (session,))
