"""The run store: durable, schema-versioned, namespaced coverage history.

Two backends implement one abstract interface (:class:`BaseRunStore`):

* :class:`RunStore` — the original single-file SQLite store.  One
  database holds every analyzed run — the full report document (for
  lossless reload via :meth:`CoverageReport.from_dict`), normalized
  per-partition count tables (for SQL over history), per-run TCD
  scores, run metadata, and the ingest journal.  Kept for
  compatibility; v1 files are migrated in place to the namespaced v2
  schema on open.
* :class:`~repro.obs.sharded.ShardedRunStore` — a directory-backed
  store that maps each ``tenant/project`` namespace to its own SQLite
  shard with a per-shard lock and a write-batched crash-recovery
  journal file (group commit: N records per fsync).

Every run (and journal record) belongs to a ``tenant/project``
namespace; the default namespace is ``default/default`` so pre-tenant
callers keep working unchanged.  :func:`open_store` picks the backend
from the path shape (file → single-file, directory → sharded).

Concurrency: SQLite in WAL mode behind a per-store lock.  One process
may serve reads and writes from many threads (the daemon does); for
multi-process use every writer opens its own store.
"""

from __future__ import annotations

import abc
import json
import os
import re
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.core.report import CoverageReport

#: Current on-disk schema version; bumped on incompatible changes.
#: v2 added the ``tenant`` / ``project`` namespace columns.
SCHEMA_VERSION = 2

#: Uniform TCD target recorded with every run (same default the
#: regression gate uses, so stored scores and gate thresholds align).
DEFAULT_TCD_TARGET = 1000.0

#: The namespace pre-tenant callers (and unprefixed URLs) land in.
DEFAULT_TENANT = "default"
DEFAULT_PROJECT = "default"

#: Legal tenant/project names: filesystem- and URL-safe, no traversal.
NAMESPACE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    suite            TEXT NOT NULL,
    tenant           TEXT NOT NULL DEFAULT 'default',
    project          TEXT NOT NULL DEFAULT 'default',
    created_at       REAL NOT NULL,
    trace_path       TEXT,
    trace_format     TEXT,
    seed             INTEGER,
    jobs             INTEGER,
    events_processed INTEGER NOT NULL DEFAULT 0,
    events_admitted  INTEGER NOT NULL DEFAULT 0,
    wall_seconds     REAL,
    events_per_sec   REAL,
    meta_json        TEXT NOT NULL DEFAULT '{}',
    report_json      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_namespace ON runs (tenant, project, id);
CREATE TABLE IF NOT EXISTS input_counts (
    run_id    INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    syscall   TEXT NOT NULL,
    arg       TEXT NOT NULL,
    partition TEXT NOT NULL,
    count     INTEGER NOT NULL,
    PRIMARY KEY (run_id, syscall, arg, partition)
);
CREATE TABLE IF NOT EXISTS output_counts (
    run_id    INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    syscall   TEXT NOT NULL,
    partition TEXT NOT NULL,
    count     INTEGER NOT NULL,
    PRIMARY KEY (run_id, syscall, partition)
);
CREATE TABLE IF NOT EXISTS tcd_scores (
    run_id  INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    kind    TEXT NOT NULL,
    syscall TEXT NOT NULL,
    arg     TEXT NOT NULL DEFAULT '',
    target  REAL NOT NULL,
    tcd     REAL NOT NULL,
    PRIMARY KEY (run_id, kind, syscall, arg)
);
CREATE TABLE IF NOT EXISTS journal (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    session TEXT NOT NULL,
    tenant  TEXT NOT NULL DEFAULT 'default',
    project TEXT NOT NULL DEFAULT 'default',
    line    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS journal_session
    ON journal (tenant, project, session, seq);
"""


class StoreVersionError(RuntimeError):
    """The store file was written by an incompatible schema version."""


class NamespaceError(ValueError):
    """A tenant or project name is not in the legal form."""


def validate_namespace(tenant: str, project: str) -> tuple[str, str]:
    """Check a namespace pair; returns it unchanged.

    Raises:
        NamespaceError: either name is empty, too long, or contains
            characters outside ``[A-Za-z0-9._-]`` (names must also
            start alphanumeric, which rules out path traversal).
    """
    for label, value in (("tenant", tenant), ("project", project)):
        if not isinstance(value, str) or not NAMESPACE_RE.match(value):
            raise NamespaceError(
                f"bad {label} name {value!r}: need [A-Za-z0-9][A-Za-z0-9._-]*, "
                "max 64 chars"
            )
    return tenant, project


@dataclass(frozen=True)
class RunRecord:
    """One stored run's metadata row (the report loads separately)."""

    run_id: int
    suite: str
    created_at: float
    trace_path: str | None
    trace_format: str | None
    seed: int | None
    jobs: int | None
    events_processed: int
    events_admitted: int
    wall_seconds: float | None
    events_per_sec: float | None
    meta: dict[str, Any] = field(default_factory=dict)
    tenant: str = DEFAULT_TENANT
    project: str = DEFAULT_PROJECT

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "suite": self.suite,
            "tenant": self.tenant,
            "project": self.project,
            "created_at": self.created_at,
            "trace_path": self.trace_path,
            "trace_format": self.trace_format,
            "seed": self.seed,
            "jobs": self.jobs,
            "events_processed": self.events_processed,
            "events_admitted": self.events_admitted,
            "wall_seconds": self.wall_seconds,
            "events_per_sec": self.events_per_sec,
            "meta": self.meta,
        }


class BaseRunStore(abc.ABC):
    """The store interface every backend implements.

    All methods take the run's ``tenant``/``project`` namespace as
    keyword arguments defaulting to ``default/default``; list-shaped
    queries accept ``None`` to mean "across every namespace".
    """

    path: str
    backend_name: str = "abstract"

    # -- runs -----------------------------------------------------------------

    @abc.abstractmethod
    def save_report(
        self,
        report: CoverageReport,
        *,
        trace_path: str | None = None,
        trace_format: str | None = None,
        seed: int | None = None,
        jobs: int | None = None,
        wall_seconds: float | None = None,
        meta: Mapping[str, Any] | None = None,
        created_at: float | None = None,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> int:
        """Persist one full coverage run; returns the new run id."""

    @abc.abstractmethod
    def get_run(
        self,
        run_id: int,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> RunRecord:
        """Metadata for one run.  Raises KeyError when missing."""

    @abc.abstractmethod
    def load_report(
        self,
        run_id: int,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> CoverageReport:
        """Reload one run's full report.  Raises KeyError when missing."""

    @abc.abstractmethod
    def list_runs(
        self,
        limit: int | None = None,
        suite: str | None = None,
        *,
        tenant: str | None = None,
        project: str | None = None,
        campaign: str | None = None,
    ) -> list[RunRecord]:
        """Runs newest-first; ``tenant``/``project`` None = all.

        ``campaign`` filters on the ``campaign`` meta tag — campaign
        rounds ride in ``meta_json``, so the filter needs no schema
        change and runs Python-side (no SQLite JSON1 dependency).
        """

    @abc.abstractmethod
    def tcd_score(
        self,
        run_id: int,
        kind: str,
        syscall: str,
        arg: str = "",
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> float:
        """One stored TCD score.  Raises KeyError when missing."""

    @abc.abstractmethod
    def resolve(
        self,
        ref: str,
        *,
        tenant: str | None = None,
        project: str | None = None,
    ) -> int:
        """Resolve ``<id>`` / ``latest`` / ``latest~N`` to a run id."""

    @abc.abstractmethod
    def delete_run(
        self,
        run_id: int,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> None: ...

    @abc.abstractmethod
    def namespaces(self) -> list[tuple[str, str]]:
        """Every ``(tenant, project)`` with stored runs or journal data."""

    # -- the ingest journal ---------------------------------------------------

    @abc.abstractmethod
    def journal_append(
        self,
        session: str,
        lines: Iterable[str],
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> None:
        """Durably record raw trace lines before they are counted."""

    @abc.abstractmethod
    def journal_lines(
        self,
        session: str,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> Iterator[str]:
        """Replay a session's journal in append order."""

    @abc.abstractmethod
    def journal_size(
        self,
        session: str,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> int: ...

    @abc.abstractmethod
    def journal_clear(
        self,
        session: str,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> None:
        """Drop a session's journal (after its snapshot persisted)."""

    @abc.abstractmethod
    def journal_namespaces(self) -> list[tuple[str, str]]:
        """Every ``(tenant, project)`` with journal records to replay."""

    def journal_sync(self) -> None:
        """Force pending journal writes to disk (no-op by default)."""

    # -- lifecycle ------------------------------------------------------------

    @abc.abstractmethod
    def close(self) -> None: ...

    def __enter__(self) -> "BaseRunStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RunStore(BaseRunStore):
    """Durable coverage-run history in one SQLite file.

    Args:
        path: database file (parent directories are created); use
            ``":memory:"`` for an ephemeral store in tests.
        tcd_target: uniform target recorded with each run's TCD scores.
    """

    backend_name = "single"

    def __init__(self, path: str, tcd_target: float = DEFAULT_TCD_TARGET) -> None:
        self.path = path
        self.tcd_target = tcd_target
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._init_schema()

    def _init_schema(self) -> None:
        with self._lock, self._conn:
            # A pre-namespace (v1) file must be migrated *before* the
            # current schema text runs: its index DDL references the
            # tenant column.
            row = self._conn.execute(
                "SELECT value FROM schema_meta WHERE key = 'schema_version'"
            ).fetchone() if self._table_exists("schema_meta") else None
            found = int(row["value"]) if row is not None else None
            if found is not None and found > SCHEMA_VERSION:
                raise StoreVersionError(
                    f"store {self.path!r} has schema v{found}, this build "
                    f"understands up to v{SCHEMA_VERSION}; refusing to touch it"
                )
            if found == 1:
                self._migrate_v1_to_v2()
            self._conn.executescript(_SCHEMA)
            if found is None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO schema_meta (key, value)"
                    " VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )

    def _table_exists(self, name: str) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM sqlite_master WHERE type='table' AND name=?", (name,)
        ).fetchone() is not None

    def _migrate_v1_to_v2(self) -> None:
        """In-place v1 → v2: every existing row joins ``default/default``."""
        for table in ("runs", "journal"):
            columns = {
                row["name"]
                for row in self._conn.execute(f"PRAGMA table_info({table})")
            }
            for column in ("tenant", "project"):
                if column not in columns:
                    self._conn.execute(
                        f"ALTER TABLE {table} ADD COLUMN {column} TEXT "
                        "NOT NULL DEFAULT 'default'"
                    )
        self._conn.execute("DROP INDEX IF EXISTS journal_session")
        self._conn.execute(
            "UPDATE schema_meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION),),
        )

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- saving runs ----------------------------------------------------------

    def save_report(
        self,
        report: CoverageReport,
        *,
        trace_path: str | None = None,
        trace_format: str | None = None,
        seed: int | None = None,
        jobs: int | None = None,
        wall_seconds: float | None = None,
        meta: Mapping[str, Any] | None = None,
        created_at: float | None = None,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> int:
        """Persist one full coverage run; returns the new run id."""
        validate_namespace(tenant, project)
        document = report.to_dict()
        events_per_sec = None
        if wall_seconds and wall_seconds > 0:
            events_per_sec = report.events_processed / wall_seconds
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (suite, tenant, project, created_at,"
                " trace_path, trace_format, seed, jobs, events_processed,"
                " events_admitted, wall_seconds, events_per_sec, meta_json,"
                " report_json)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    report.suite_name,
                    tenant,
                    project,
                    created_at if created_at is not None else time.time(),
                    trace_path,
                    trace_format,
                    seed,
                    jobs,
                    report.events_processed,
                    report.events_admitted,
                    wall_seconds,
                    events_per_sec,
                    json.dumps(dict(meta or {}), sort_keys=True),
                    json.dumps(document),
                ),
            )
            run_id = int(cursor.lastrowid)
            self._conn.executemany(
                "INSERT INTO input_counts VALUES (?, ?, ?, ?, ?)",
                (
                    (run_id, syscall, arg, partition, count)
                    for syscall, args in document["input_coverage"].items()
                    for arg, frequencies in args.items()
                    for partition, count in frequencies.items()
                    if count
                ),
            )
            self._conn.executemany(
                "INSERT INTO output_counts VALUES (?, ?, ?, ?)",
                (
                    (run_id, syscall, partition, count)
                    for syscall, frequencies in document["output_coverage"].items()
                    for partition, count in frequencies.items()
                    if count
                ),
            )
            self._conn.executemany(
                "INSERT INTO tcd_scores VALUES (?, ?, ?, ?, ?, ?)",
                self._tcd_rows(run_id, report),
            )
        return run_id

    def _tcd_rows(
        self, run_id: int, report: CoverageReport
    ) -> Iterator[tuple[int, str, str, str, float, float]]:
        target = self.tcd_target
        for syscall, arg in report.input_coverage.tracked_pairs():
            yield (run_id, "input", syscall, arg, target,
                   report.input_tcd(syscall, arg, target))
        for syscall in report.output_coverage.tracked_syscalls():
            yield (run_id, "output", syscall, "", target,
                   report.output_tcd(syscall, target))

    # -- loading runs ---------------------------------------------------------

    def _record(self, row: sqlite3.Row) -> RunRecord:
        return RunRecord(
            run_id=row["id"],
            suite=row["suite"],
            created_at=row["created_at"],
            trace_path=row["trace_path"],
            trace_format=row["trace_format"],
            seed=row["seed"],
            jobs=row["jobs"],
            events_processed=row["events_processed"],
            events_admitted=row["events_admitted"],
            wall_seconds=row["wall_seconds"],
            events_per_sec=row["events_per_sec"],
            meta=json.loads(row["meta_json"]),
            tenant=row["tenant"],
            project=row["project"],
        )

    def get_run(
        self,
        run_id: int,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> RunRecord:
        """Metadata for one run (ids are store-global in this backend).

        Raises:
            KeyError: no such run.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise KeyError(f"no run {run_id} in {self.path}")
        return self._record(row)

    def load_report(
        self,
        run_id: int,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> CoverageReport:
        """Reload one run's full report (lossless round trip).

        Raises:
            KeyError: no such run.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT report_json FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise KeyError(f"no run {run_id} in {self.path}")
        return CoverageReport.from_dict(json.loads(row["report_json"]))

    def list_runs(
        self,
        limit: int | None = None,
        suite: str | None = None,
        *,
        tenant: str | None = None,
        project: str | None = None,
        campaign: str | None = None,
    ) -> list[RunRecord]:
        """Runs newest-first, optionally filtered by suite/namespace."""
        query = "SELECT * FROM runs"
        clauses: list[str] = []
        params: list[Any] = []
        if suite is not None:
            clauses.append("suite = ?")
            params.append(suite)
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if project is not None:
            clauses.append("project = ?")
            params.append(project)
        if campaign is not None:
            # Coarse SQL pre-filter on the JSON text (cheap, may over-
            # match); the exact meta check below decides.
            clauses.append("meta_json LIKE ?")
            params.append(f'%"campaign"%{campaign}%')
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id DESC"
        if limit is not None and campaign is None:
            query += " LIMIT ?"
            params.append(limit)
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        records = [self._record(row) for row in rows]
        if campaign is not None:
            records = [r for r in records if r.meta.get("campaign") == campaign]
            if limit is not None:
                records = records[:limit]
        return records

    def tcd_score(
        self,
        run_id: int,
        kind: str,
        syscall: str,
        arg: str = "",
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> float:
        """One stored TCD score.

        Raises:
            KeyError: run or score missing.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT tcd FROM tcd_scores WHERE run_id = ? AND kind = ?"
                " AND syscall = ? AND arg = ?",
                (run_id, kind, syscall, arg),
            ).fetchone()
        if row is None:
            raise KeyError(f"no {kind} TCD for run {run_id} {syscall}.{arg}")
        return float(row["tcd"])

    def resolve(
        self,
        ref: str,
        *,
        tenant: str | None = None,
        project: str | None = None,
    ) -> int:
        """Resolve a run reference to an id.

        Accepts a numeric id, ``latest``, or ``latest~N`` (the Nth run
        before the newest, git-style).  With a namespace, ``latest``
        refs resolve within that namespace only.

        Raises:
            KeyError: the reference names no stored run.
            ValueError: the reference is not in a recognized form.
        """
        ref = ref.strip()
        if ref.isdigit():
            return self.get_run(int(ref)).run_id
        if ref == "latest":
            offset = 0
        elif ref.startswith("latest~"):
            tail = ref[len("latest~"):]
            if not tail.isdigit():
                raise ValueError(f"bad run reference: {ref!r}")
            offset = int(tail)
        else:
            raise ValueError(f"bad run reference: {ref!r}")
        query = "SELECT id FROM runs"
        params: list[Any] = []
        clauses: list[str] = []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if project is not None:
            clauses.append("project = ?")
            params.append(project)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id DESC LIMIT 1 OFFSET ?"
        params.append(offset)
        with self._lock:
            row = self._conn.execute(query, params).fetchone()
        if row is None:
            raise KeyError(f"no run at reference {ref!r} in {self.path}")
        return int(row["id"])

    def delete_run(
        self,
        run_id: int,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> None:
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM runs WHERE id = ?", (run_id,))

    def namespaces(self) -> list[tuple[str, str]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT tenant, project FROM runs"
                " UNION SELECT DISTINCT tenant, project FROM journal"
                " ORDER BY tenant, project"
            ).fetchall()
        return [(row["tenant"], row["project"]) for row in rows]

    # -- the ingest journal ---------------------------------------------------

    def journal_append(
        self,
        session: str,
        lines: Iterable[str],
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> None:
        """Durably record raw trace lines before they are counted."""
        with self._lock, self._conn:
            self._conn.executemany(
                "INSERT INTO journal (session, tenant, project, line)"
                " VALUES (?, ?, ?, ?)",
                ((session, tenant, project, line) for line in lines),
            )

    def journal_lines(
        self,
        session: str,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> Iterator[str]:
        """Replay a session's journal in append order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT line FROM journal WHERE session = ? AND tenant = ?"
                " AND project = ? ORDER BY seq",
                (session, tenant, project),
            ).fetchall()
        for row in rows:
            yield row["line"]

    def journal_size(
        self,
        session: str,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM journal WHERE session = ?"
                " AND tenant = ? AND project = ?",
                (session, tenant, project),
            ).fetchone()
        return int(row["n"])

    def journal_clear(
        self,
        session: str,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> None:
        """Drop a session's journal (after its snapshot persisted)."""
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM journal WHERE session = ? AND tenant = ?"
                " AND project = ?",
                (session, tenant, project),
            )

    def journal_namespaces(self) -> list[tuple[str, str]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT tenant, project FROM journal"
                " ORDER BY tenant, project"
            ).fetchall()
        return [(row["tenant"], row["project"]) for row in rows]

    def journal_sessions(
        self,
        *,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
    ) -> list[str]:
        """Session names with journal records in one namespace."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT session FROM journal WHERE tenant = ?"
                " AND project = ? ORDER BY session",
                (tenant, project),
            ).fetchall()
        return [row["session"] for row in rows]


def open_store(
    path: str,
    *,
    backend: str = "auto",
    tcd_target: float = DEFAULT_TCD_TARGET,
    journal_batch: int | None = None,
) -> BaseRunStore:
    """Open a run store, picking the backend from the path shape.

    ``backend="auto"`` (the default) chooses sharded when *path* is an
    existing directory, carries the sharded marker file, or ends with a
    path separator; otherwise the single-file SQLite backend.  Pass
    ``"single"`` or ``"sharded"`` to force one.  *journal_batch* (the
    group-commit size) applies to the sharded backend and is ignored by
    the single-file one, whose SQLite journal commits per append.

    Raises:
        ValueError: unknown *backend* name.
    """
    from repro.obs.sharded import SHARD_MARKER, ShardedRunStore

    if backend not in ("auto", "single", "sharded"):
        raise ValueError(f"unknown store backend: {backend!r}")
    if backend == "auto":
        if path != ":memory:" and (
            os.path.isdir(path)
            or path.endswith(os.sep)
            or path.endswith("/")
            or os.path.exists(os.path.join(path, SHARD_MARKER))
        ):
            backend = "sharded"
        else:
            backend = "single"
    if backend == "sharded":
        kwargs: dict[str, Any] = {}
        if journal_batch is not None:
            kwargs["journal_batch"] = journal_batch
        return ShardedRunStore(path, tcd_target=tcd_target, **kwargs)
    return RunStore(path, tcd_target=tcd_target)
