"""A dependency-free Prometheus text-format metrics registry.

Implements the three instrument kinds the observability service needs —
counters, gauges, and histograms — with label support and exposition in
the Prometheus text format (version 0.0.4: ``# HELP`` / ``# TYPE``
headers, ``name{label="value"} sample`` lines, cumulative histogram
buckets with a ``+Inf`` bound and ``_sum`` / ``_count`` series).

The registry is thread-safe (one lock around all mutation and
rendering) so the ingest worker, HTTP handler threads, and the scrape
endpoint can share it.  It is also usable outside the daemon: the CLI
paths can fill a fresh registry from a finished
:class:`~repro.core.report.CoverageReport` via
:func:`fill_report_metrics` and print it.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:
    from repro.core.report import CoverageReport

#: Default latency buckets (seconds) for ingest histograms.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Uniform TCD target used for the exported ``iocov_tcd`` gauges.
DEFAULT_TCD_TARGET = 1000.0


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Metric:
    """Shared bookkeeping: name, help text, labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.help_text = help_text
        self._registry = registry
        self._lock = registry._lock

    def _render_header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> list[str]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing sample per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help_text, registry)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = self._render_header()
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            lines.append(f"{self.name} 0")
            return lines
        for key, value in items:
            lines.append(f"{self.name}{_format_labels(dict(key))} {_format_value(value)}")
        return lines


class Gauge(_Metric):
    """A settable sample per label set."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry") -> None:
        super().__init__(name, help_text, registry)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = self._render_header()
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            lines.append(f"{self.name} 0")
            return lines
        for key, value in items:
            lines.append(f"{self.name}{_format_labels(dict(key))} {_format_value(value)}")
        return lines


class _HistogramSeries:
    """One label set's bucket counts, sum, and total."""

    __slots__ = ("counts", "sum", "total")

    def __init__(self, slots: int) -> None:
        self.counts = [0] * slots
        self.sum = 0.0
        self.total = 0


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics), per label set.

    Observations land in every bucket whose upper bound is >= the
    value; ``+Inf`` is implicit and always equals ``_count``.  The
    label-free call style (``observe(0.2)``) still works and renders a
    single unlabeled series.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, registry)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._series: dict[tuple[tuple[str, str], ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        if "le" in labels:
            raise ValueError('"le" is reserved for the bucket bound')
        key = tuple(sorted(labels.items()))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds) + 1)
            series.counts[bisect_left(self.bounds, value)] += 1
            series.sum += value
            series.total += 1

    @property
    def count(self) -> int:
        """Total observations across every label set."""
        with self._lock:
            return sum(series.total for series in self._series.values())

    def count_for(self, **labels: str) -> int:
        key = tuple(sorted(labels.items()))
        with self._lock:
            series = self._series.get(key)
            return series.total if series is not None else 0

    def render(self) -> list[str]:
        lines = self._render_header()
        with self._lock:
            snapshot = [
                (key, list(series.counts), series.sum, series.total)
                for key, series in sorted(self._series.items())
            ]
        for key, counts, running_sum, total in snapshot:
            labels = dict(key)
            cumulative = 0
            for bound, bucket in zip(self.bounds, counts):
                cumulative += bucket
                bucket_labels = _format_labels({**labels, "le": _format_value(bound)})
                lines.append(f"{self.name}_bucket{bucket_labels} {cumulative}")
            inf_labels = _format_labels({**labels, "le": "+Inf"})
            lines.append(f"{self.name}_bucket{inf_labels} {total}")
            suffix = _format_labels(labels)
            lines.append(f"{self.name}_sum{suffix} {_format_value(running_sum)}")
            lines.append(f"{self.name}_count{suffix} {total}")
        return lines


class MetricsRegistry:
    """Owns a namespace of metrics and renders the scrape payload."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> None:
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric

    def counter(self, name: str, help_text: str) -> Counter:
        with self._lock:
            existing = self._metrics.get(name)
            if isinstance(existing, Counter):
                return existing
            metric = Counter(name, help_text, self)
            self._register(metric)
            return metric

    def gauge(self, name: str, help_text: str) -> Gauge:
        with self._lock:
            existing = self._metrics.get(name)
            if isinstance(existing, Gauge):
                return existing
            metric = Gauge(name, help_text, self)
            self._register(metric)
            return metric

    def histogram(
        self, name: str, help_text: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if isinstance(existing, Histogram):
                return existing
            metric = Histogram(name, help_text, self, buckets)
            self._register(metric)
            return metric

    def render(self) -> str:
        """The ``/metrics`` payload (Prometheus text format 0.0.4)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


def fill_report_metrics(
    registry: MetricsRegistry,
    report: "CoverageReport",
    tcd_target: float = DEFAULT_TCD_TARGET,
) -> None:
    """Export one report's coverage state as gauges.

    Metric names (all gauges; see USAGE.md §12):

    * ``iocov_events_processed`` / ``iocov_events_admitted``
    * ``iocov_input_partitions{syscall,arg,state}`` — tested/untested
    * ``iocov_input_coverage_ratio{syscall,arg}``
    * ``iocov_output_partitions{syscall,state}``
    * ``iocov_output_coverage_ratio{syscall}``
    * ``iocov_tcd{kind,syscall,arg}`` — against a uniform target
    """
    registry.gauge(
        "iocov_events_processed", "Trace events seen by the analyzer"
    ).set(report.events_processed)
    registry.gauge(
        "iocov_events_admitted", "Trace events in scope after filtering"
    ).set(report.events_admitted)
    registry.gauge(
        "iocov_tcd_target", "Uniform per-partition target the TCD gauges use"
    ).set(tcd_target)

    input_partitions = registry.gauge(
        "iocov_input_partitions",
        "Input partitions per tracked argument, by tested/untested state",
    )
    input_ratio = registry.gauge(
        "iocov_input_coverage_ratio",
        "Fraction of input partitions exercised at least once",
    )
    tcd_gauge = registry.gauge(
        "iocov_tcd", "Test Coverage Deviation against the uniform target"
    )
    for syscall, arg in report.input_coverage.tracked_pairs():
        coverage = report.input_coverage.arg(syscall, arg)
        tested, untested = coverage.partition_status()
        input_partitions.set(len(tested), syscall=syscall, arg=arg, state="tested")
        input_partitions.set(len(untested), syscall=syscall, arg=arg, state="untested")
        input_ratio.set(coverage.coverage_ratio(), syscall=syscall, arg=arg)
        tcd_gauge.set(
            report.input_tcd(syscall, arg, tcd_target),
            kind="input", syscall=syscall, arg=arg,
        )

    output_partitions = registry.gauge(
        "iocov_output_partitions",
        "Output partitions per syscall, by tested/untested state",
    )
    output_ratio = registry.gauge(
        "iocov_output_coverage_ratio",
        "Fraction of documented output partitions exercised",
    )
    for syscall in report.output_coverage.tracked_syscalls():
        coverage = report.output_coverage.syscall(syscall)
        domain = coverage.domain()
        tested = sum(1 for key in domain if coverage.counts.get(key, 0) > 0)
        output_partitions.set(tested, syscall=syscall, state="tested")
        output_partitions.set(len(domain) - tested, syscall=syscall, state="untested")
        output_ratio.set(coverage.coverage_ratio(), syscall=syscall)
        tcd_gauge.set(
            report.output_tcd(syscall, tcd_target),
            kind="output", syscall=syscall, arg="",
        )


def validate_exposition(text: str) -> list[str]:
    """Check *text* against the Prometheus text-format grammar.

    A lightweight validator used by tests and the CI gate; returns a
    list of problems (empty = valid).  Checks line syntax, HELP/TYPE
    pairing, known types, histogram bucket monotonicity, and that
    every sample belongs to a declared metric family.
    """
    import re

    problems: list[str] = []
    sample_re = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?P<labels>\{[^{}]*\})?"
        r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
        r"(?: [0-9]+)?$"
    )
    label_re = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
    types: dict[str, str] = {}
    helps: set[str] = set()
    # Bucket series are keyed by (family, non-le label pairs): each
    # label set has its own cumulative sequence, so monotonicity must
    # be checked per series, not across a whole family.
    buckets: dict[tuple[str, tuple[str, ...]], list[tuple[float, float]]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                problems.append(f"line {number}: malformed HELP")
            else:
                helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                problems.append(f"line {number}: malformed TYPE")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = sample_re.match(line)
        if match is None:
            problems.append(f"line {number}: unparseable sample: {line!r}")
            continue
        labels = match["labels"]
        if labels:
            for item in _split_label_pairs(labels[1:-1]):
                if not label_re.match(item):
                    problems.append(f"line {number}: bad label pair {item!r}")
        name = match["name"]
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
        if family not in types:
            problems.append(f"line {number}: sample {name!r} has no TYPE")
        if name.endswith("_bucket") and labels and 'le="' in labels:
            pairs = list(_split_label_pairs(labels[1:-1]))
            bound_text = ""
            others: list[str] = []
            for pair in pairs:
                if pair.startswith('le="'):
                    bound_text = pair[len('le="'):].rsplit('"', 1)[0]
                else:
                    others.append(pair)
            bound = math.inf if bound_text == "+Inf" else float(bound_text)
            key = (family, tuple(sorted(others)))
            buckets.setdefault(key, []).append((bound, float(match["value"])))
    for (family, label_key), series in buckets.items():
        where = f"histogram {family}" + (
            "{" + ",".join(label_key) + "}" if label_key else ""
        )
        ordered = sorted(series)
        values = [count for _, count in ordered]
        if values != sorted(values):
            problems.append(f"{where}: buckets not cumulative")
        if ordered and ordered[-1][0] != math.inf:
            problems.append(f"{where}: missing +Inf bucket")
    for name in types:
        if name not in helps:
            problems.append(f"metric {name}: TYPE without HELP")
    return problems


def _split_label_pairs(inner: str) -> Iterable[str]:
    """Split ``a="x",b="y"`` respecting escaped quotes."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in inner:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs
