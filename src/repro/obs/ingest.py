"""The live ingestion pipeline: queue, parse, quarantine, count.

:class:`IngestSession` is the daemon's engine, kept free of HTTP so the
failure modes are testable directly:

* **bounded queue with backpressure** — producers (HTTP handler
  threads) block in :meth:`feed_text` once ``queue_size`` lines are
  outstanding, which propagates back to the client as TCP backpressure
  instead of unbounded daemon memory;
* **push-mode parsing** — a persistent :class:`~repro.trace.push.PushParser`
  keeps entry/exit pairing and resource state across feeds, so a trace
  streamed in arbitrary network-sized pieces counts identically to a
  one-shot ``repro analyze`` of the same bytes;
* **malformed-line quarantine with an error budget** — grammar-rejected
  lines are kept (capped) with their positions; once the malformed
  ratio exceeds the budget the session degrades and refuses further
  input rather than publishing numbers built on garbage;
* **journaling** — accepted lines are appended to the run store's
  journal *before* they are counted, so a crash loses nothing:
  :meth:`IngestSession.recover` replays the journal through a fresh
  parser/analyzer on restart;
* **drain** — :meth:`close` waits for every queued line to be parsed
  and counted (the SIGTERM path), then optionally snapshots the final
  state into the store.
"""

from __future__ import annotations

import base64
import binascii
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.analyzer import IOCov
from repro.obs.metrics import MetricsRegistry
from repro.obs.store import RunStore
from repro.trace.batch import EventBatch
from repro.trace.binary import RbtError, decode_batch, encode_batch
from repro.trace.push import make_push_parser

#: Default bound on queued-but-uncounted lines.
DEFAULT_QUEUE_SIZE = 65536

#: Journal marker for binary batches: one journal "line" per frame,
#: ``#repro-rbt1:`` + base64 of the frame payload.  The ``#`` prefix
#: keeps the line inert if it ever reaches a text parser by mistake,
#: and :meth:`IngestSession.recover` dispatches on it.
RBT_JOURNAL_PREFIX = "#repro-rbt1:"

#: Default error budget: malformed fraction that degrades the session.
DEFAULT_ERROR_BUDGET = 0.05

#: Malformed lines below this count never degrade the session (a lone
#: bad line in a ten-line trace should not trip a 5% budget).
DEFAULT_BUDGET_GRACE = 20

#: How many quarantined lines are retained for inspection.
QUARANTINE_CAP = 100

_SENTINEL = object()


class SessionDegradedError(RuntimeError):
    """The session exceeded its malformed-line error budget."""


@dataclass
class Quarantined:
    """One grammar-rejected line, kept for inspection."""

    line_number: int
    line: str

    def to_dict(self) -> dict[str, Any]:
        return {"line_number": self.line_number, "line": self.line}


@dataclass
class _Flush:
    """Queue marker: set the event once everything before it counted."""

    done: threading.Event = field(default_factory=threading.Event)


class IngestSession:
    """A live trace-ingestion session feeding one :class:`IOCov`.

    Args:
        fmt: trace format (``lttng``/``strace``/``syzkaller``).
        mount_point: scoping filter mount point (None = accept all).
        suite_name: label for the live report.
        store: run store for journaling and snapshots (optional).
        journal_session: journal key in the store.
        queue_size: bound on queued lines (backpressure threshold).
        error_budget: malformed-line fraction that degrades the session.
        budget_grace: malformed-line count below which the budget never
            trips.
        registry: metrics registry to instrument (optional).
    """

    def __init__(
        self,
        fmt: str = "lttng",
        *,
        mount_point: str | None = None,
        suite_name: str = "live",
        store: RunStore | None = None,
        journal_session: str = "live",
        queue_size: int = DEFAULT_QUEUE_SIZE,
        error_budget: float = DEFAULT_ERROR_BUDGET,
        budget_grace: int = DEFAULT_BUDGET_GRACE,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.fmt = fmt
        self.mount_point = mount_point
        self.suite_name = suite_name
        self.store = store
        self.journal_session = journal_session
        self.error_budget = error_budget
        self.budget_grace = budget_grace
        self.iocov = IOCov(mount_point=mount_point, suite_name=suite_name)
        self.parser = make_push_parser(fmt)
        self.quarantine: list[Quarantined] = []
        self.degraded = False
        self.closed = False
        self.lines_received = 0
        self.events_counted = 0
        self.batches_received = 0
        self.runs_stored = 0
        self._lock = threading.Lock()  # guards iocov + counters
        #: producers serialize whole requests on this so interleaved
        #: chunked POSTs cannot shuffle each other's partial lines
        self.feed_lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._feed_tail = ""
        self._metrics(registry)
        self._worker = threading.Thread(
            target=self._run_worker, name="iocov-ingest", daemon=True
        )
        self._worker.start()

    def _metrics(self, registry: MetricsRegistry | None) -> None:
        registry = registry or MetricsRegistry()
        self.registry = registry
        self.m_lines = registry.counter(
            "iocov_ingest_lines_total", "Trace lines accepted for ingestion"
        )
        self.m_events = registry.counter(
            "iocov_ingest_events_total", "Syscall events parsed and counted"
        )
        self.m_parse_errors = registry.counter(
            "iocov_parse_errors_total", "Grammar-rejected (quarantined) trace lines"
        )
        self.m_queue_depth = registry.gauge(
            "iocov_ingest_queue_depth", "Lines queued but not yet counted"
        )
        self.m_batch_seconds = registry.histogram(
            "iocov_ingest_batch_seconds",
            "Wall time spent parsing and counting one ingest batch",
        )
        self.m_runs = registry.counter(
            "iocov_runs_stored_total", "Coverage runs snapshotted into the store"
        )

    # -- the worker ----------------------------------------------------------

    def _run_worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._queue.task_done()
                break
            if isinstance(item, _Flush):
                item.done.set()
                self._queue.task_done()
                continue
            # Drain opportunistically: one lock round per batch.
            batch = [item]
            flushes: list[_Flush] = []
            while len(batch) < 4096:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _SENTINEL:
                    self._queue.put(_SENTINEL)  # re-post for the outer loop
                    self._queue.task_done()
                    break
                if isinstance(extra, _Flush):
                    flushes.append(extra)
                    break  # honor ordering: flush after this batch counts
                batch.append(extra)
            self._ingest_batch(batch)
            for flush in flushes:
                flush.done.set()
                self._queue.task_done()
            for _ in batch:
                self._queue.task_done()
            self.m_queue_depth.set(self._queue.qsize())

    def _ingest_batch(self, items: list) -> None:
        """Count one drained queue batch: text lines and/or event batches.

        Items are consumed strictly in queue order — a binary frame
        between two text feeds counts exactly where it arrived, so fd
        state evolves as it would have in one sequential stream.
        """
        started = time.perf_counter()
        n_lines = 0
        n_events = 0
        malformed: list[Quarantined] = []
        with self._lock:
            events: list = []
            for item in items:
                if isinstance(item, EventBatch):
                    if events:
                        self.iocov.consume_incremental(events)
                        n_events += len(events)
                        events = []
                    self.iocov.consume_batch(item)
                    self.batches_received += 1
                    n_events += len(item)
                    continue
                n_lines += 1
                self.lines_received += 1
                line_events, bad = self.parser.push_line(item)
                if bad:
                    malformed.append(Quarantined(self.lines_received, item))
                events.extend(line_events)
            if events:
                self.iocov.consume_incremental(events)
                n_events += len(events)
            self.events_counted += n_events
            if malformed:
                space = QUARANTINE_CAP - len(self.quarantine)
                self.quarantine.extend(malformed[:space])
                if (
                    self.parser.malformed_lines > self.budget_grace
                    and self.parser.malformed_lines
                    > self.error_budget * self.parser.lines_fed
                ):
                    self.degraded = True
        self.m_lines.inc(n_lines)
        self.m_events.inc(n_events)
        if malformed:
            self.m_parse_errors.inc(len(malformed))
        self.m_batch_seconds.observe(time.perf_counter() - started)

    # -- feeding -------------------------------------------------------------

    def _check_accepting(self) -> None:
        if self.closed:
            raise RuntimeError("ingest session is closed")
        if self.degraded:
            raise SessionDegradedError(
                f"error budget exhausted: {self.parser.malformed_lines} of "
                f"{self.parser.lines_fed} lines malformed "
                f"(budget {self.error_budget:.1%})"
            )

    def feed_lines(self, lines: list[str], *, journal: bool = True) -> None:
        """Enqueue complete lines; blocks when the queue is full.

        Raises:
            SessionDegradedError: the error budget is exhausted.
            RuntimeError: the session was closed.
        """
        self._check_accepting()
        if journal and self.store is not None:
            self.store.journal_append(self.journal_session, lines)
        for line in lines:
            self._queue.put(line)
        self.m_queue_depth.set(self._queue.qsize())

    def feed_text(self, data: str, *, journal: bool = True) -> None:
        """Feed a raw payload that may split lines arbitrarily.

        Partial trailing lines are buffered (in the feeder, not the
        queue) until their newline arrives in a later call.
        """
        self._check_accepting()
        buffered = self._feed_tail + data
        lines = buffered.split("\n")
        self._feed_tail = lines.pop()
        if lines:
            self.feed_lines(lines, journal=journal)

    def feed_batch(self, batch: EventBatch, *, journal: bool = True) -> None:
        """Enqueue one decoded binary frame (``.rbt`` ingest path).

        The frame is journaled as a single :data:`RBT_JOURNAL_PREFIX`
        line (base64 of its re-encoded payload) so crash recovery
        replays binary and text input alike, in arrival order.

        Raises:
            SessionDegradedError: the error budget is exhausted.
            RuntimeError: the session was closed.
        """
        self._check_accepting()
        if not len(batch):
            return
        if journal and self.store is not None:
            blob = base64.b64encode(encode_batch(batch.rows())).decode("ascii")
            self.store.journal_append(
                self.journal_session, [RBT_JOURNAL_PREFIX + blob]
            )
        self._queue.put(batch)
        self.m_queue_depth.set(self._queue.qsize())

    def end_of_stream(self) -> None:
        """Complete any buffered partial line (client finished sending)."""
        tail, self._feed_tail = self._feed_tail, ""
        if tail:
            self.feed_lines([tail])

    def flush(self, timeout: float | None = 30.0) -> bool:
        """Block until everything fed so far is parsed and counted."""
        marker = _Flush()
        self._queue.put(marker)
        return marker.done.wait(timeout)

    # -- snapshots ------------------------------------------------------------

    def report(self):
        """A consistent snapshot of the live coverage state."""
        with self._lock:
            return self.iocov.report()

    def snapshot_to_store(self, *, meta: dict | None = None) -> int:
        """Persist the current state as a run; clears the journal.

        Raises:
            RuntimeError: no store is attached.
        """
        if self.store is None:
            raise RuntimeError("no run store attached to this session")
        self.flush()
        with self._lock:
            report = self.iocov.report()
            document = {
                "source": "serve",
                "format": self.fmt,
                "lines_received": self.lines_received,
                "parse_errors": self.parser.malformed_lines,
                "degraded": self.degraded,
            }
            document.update(meta or {})
        run_id = self.store.save_report(
            report, trace_format=self.fmt, meta=document
        )
        self.store.journal_clear(self.journal_session)
        self.runs_stored += 1
        self.m_runs.inc()
        return run_id

    def stats(self) -> dict[str, Any]:
        """Session counters for the ``/session`` endpoint."""
        with self._lock:
            return {
                "format": self.fmt,
                "suite": self.suite_name,
                "mount_point": self.mount_point,
                "lines_received": self.lines_received,
                "batches_received": self.batches_received,
                "events_counted": self.events_counted,
                "parse_errors": self.parser.malformed_lines,
                "pending_pairs": self.parser.pending_entries,
                "degraded": self.degraded,
                "error_budget": self.error_budget,
                "queue_depth": self._queue.qsize(),
                "runs_stored": self.runs_stored,
                "quarantine": [item.to_dict() for item in self.quarantine[:20]],
            }

    # -- recovery and shutdown -------------------------------------------------

    def recover(self) -> int:
        """Replay the store's journal into this (fresh) session.

        Returns the number of journal lines replayed.  Lines are *not*
        re-journaled — they are already durable.
        """
        if self.store is None:
            return 0
        replayed = 0
        batch: list[str] = []
        for line in self.store.journal_lines(self.journal_session):
            replayed += 1
            if line.startswith(RBT_JOURNAL_PREFIX):
                # Binary frame: flush buffered text first so replay
                # order matches arrival order, then decode and enqueue.
                if batch:
                    self.feed_lines(batch, journal=False)
                    batch = []
                try:
                    payload = base64.b64decode(
                        line[len(RBT_JOURNAL_PREFIX):], validate=True
                    )
                    frame = decode_batch(payload)
                except (binascii.Error, RbtError):
                    continue  # a corrupt journal record loses only itself
                self.feed_batch(frame, journal=False)
                continue
            batch.append(line)
            if len(batch) >= 4096:
                self.feed_lines(batch, journal=False)
                batch = []
        if batch:
            self.feed_lines(batch, journal=False)
        if replayed:
            self.flush()
        return replayed

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the worker; with *drain*, count everything queued first."""
        if self.closed:
            return
        self.closed = True
        if not drain:
            # Abandon queued lines (crash simulation in tests).
            try:
                while True:
                    self._queue.get_nowait()
                    self._queue.task_done()
            except queue.Empty:
                pass
        self._queue.put(_SENTINEL)
        self._worker.join(timeout)
