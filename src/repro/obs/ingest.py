"""The live ingestion pipeline: queue, parse, quarantine, count.

:class:`IngestSession` is the daemon's engine, kept free of HTTP so the
failure modes are testable directly:

* **bounded queue with backpressure** — producers (HTTP handler
  threads) block in :meth:`feed_text` once ``queue_size`` lines are
  outstanding, which propagates back to the client as TCP backpressure
  instead of unbounded daemon memory;
* **chunk-mode parsing** — lines travel through the queue as whole
  chunks and are parsed by a persistent
  :func:`~repro.trace.batch.make_batch_parser` (the regex fast path,
  with entry/exit pairing preserved across chunks), so a trace streamed
  in arbitrary network-sized pieces counts identically to a one-shot
  ``repro analyze`` of the same bytes — at batch-parse speed;
* **malformed-line quarantine with an error budget** — grammar-rejected
  lines are kept (capped) with their positions; once the malformed
  ratio exceeds the budget the session degrades and refuses further
  input rather than publishing numbers built on garbage;
* **journaling** — accepted lines are appended to the run store's
  journal *before* they are counted, so a crash loses nothing:
  :meth:`IngestSession.recover` replays the journal through a fresh
  parser/analyzer on restart;
* **drain** — :meth:`close` waits for every queued line to be parsed
  and counted (the SIGTERM path), then optionally snapshots the final
  state into the store;
* **namespacing** — every session belongs to a ``tenant/project``;
  journal records, stored runs, and metric samples carry the
  namespace, so one registry and one store serve many tenants.
"""

from __future__ import annotations

import base64
import binascii
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.analyzer import IOCov
from repro.obs.metrics import MetricsRegistry
from repro.obs.store import DEFAULT_PROJECT, DEFAULT_TENANT, BaseRunStore
from repro.parallel.pool import PoolError, WorkerPool
from repro.trace.batch import EventBatch, make_batch_parser
from repro.trace.binary import RbtError, decode_batch, encode_batch
from repro.trace.push import make_push_parser

#: Default bound on queued-but-uncounted lines.
DEFAULT_QUEUE_SIZE = 65536

#: Journal marker for binary batches: one journal "line" per frame,
#: ``#repro-rbt1:`` + base64 of the frame payload.  The ``#`` prefix
#: keeps the line inert if it ever reaches a text parser by mistake,
#: and :meth:`IngestSession.recover` dispatches on it.
RBT_JOURNAL_PREFIX = "#repro-rbt1:"

#: Default error budget: malformed fraction that degrades the session.
DEFAULT_ERROR_BUDGET = 0.05

#: Malformed lines below this count never degrade the session (a lone
#: bad line in a ten-line trace should not trip a 5% budget).
DEFAULT_BUDGET_GRACE = 20

#: How many quarantined lines are retained for inspection.
QUARANTINE_CAP = 100

#: The worker coalesces queued chunks until roughly this many lines
#: count under one lock round.
WORKER_ROUND_LINES = 4096

_SENTINEL = object()


class SessionDegradedError(RuntimeError):
    """The session exceeded its malformed-line error budget."""


@dataclass
class Quarantined:
    """One grammar-rejected line, kept for inspection."""

    line_number: int
    line: str

    def to_dict(self) -> dict[str, Any]:
        return {"line_number": self.line_number, "line": self.line}


@dataclass
class _Flush:
    """Queue marker: set the event once everything before it counted."""

    done: threading.Event = field(default_factory=threading.Event)


class _BatchLineParser:
    """Chunk-mode parsing behind the push-parser counter interface.

    Wraps a persistent :func:`make_batch_parser` (pairing state spans
    chunks) and tracks ``lines_fed`` the way the push parsers do, so
    the error-budget arithmetic and the ``/session`` stats are
    unchanged.  When a chunk contains grammar-rejected lines the
    parser re-probes it line-by-line with a throwaway push parser to
    recover the malformed *positions* for the quarantine — a cost paid
    only on the (rare) dirty chunks.
    """

    def __init__(self, fmt: str) -> None:
        self.fmt = fmt
        self._parser = make_batch_parser(fmt)
        self.lines_fed = 0

    @property
    def malformed_lines(self) -> int:
        return self._parser.malformed_lines

    @property
    def skipped_lines(self) -> int:
        return self._parser.skipped_lines

    @property
    def pending_entries(self) -> int:
        return self._parser.unpaired_entries

    def parse_lines(self, lines: list[str]) -> tuple[list, list[int]]:
        """Parse one chunk; returns ``(rows, malformed_indices)``."""
        before = self._parser.malformed_lines
        rows = self._parser.parse_chunk("\n".join(lines))
        self.lines_fed += len(lines)
        bad: list[int] = []
        if self._parser.malformed_lines > before:
            probe = make_push_parser(self.fmt)
            for index, line in enumerate(lines):
                _events, malformed = probe.push_line(line)
                if malformed:
                    bad.append(index)
        return rows, bad


class _PoolLineParser:
    """Chunk parsing offloaded to a persistent worker pool.

    The ``--analysis-workers`` engine: chunks are shipped (via the
    pool's shared-memory handoff) to a worker pinned by namespace key,
    where a persistent batch parser — pairing state and all — lives
    for the session's lifetime.  Affinity keeps one namespace's chunks
    on one worker in FIFO order, so cross-chunk entry/exit pairing is
    exactly what the in-process parser would have computed, while
    different namespaces parse on different cores — the GIL no longer
    serializes tenants.

    The offload is structured so the session's ``_lock`` is never held
    across a pool wait: :meth:`submit`/:meth:`wait` run lock-free in
    the ingest worker thread, and only :meth:`apply` (counter folding,
    cheap) runs under the lock.

    Failure containment: any pool error — or a worker *incarnation*
    change, which means the namespace's resident parser state died
    with a crashed worker — permanently reverts the session to inline
    parsing (a fresh :class:`_BatchLineParser`; counters carry over).
    Entry/exit pairs straddling the crash boundary may go unpaired,
    exactly as if the stream had been restarted there.
    """

    def __init__(self, fmt: str, pool: WorkerPool, key: str) -> None:
        self.fmt = fmt
        self.lines_fed = 0
        self.malformed_lines = 0
        self.skipped_lines = 0
        self.pending_entries = 0
        self._pool = pool
        self._key = key
        self._worker = pool.worker_for(key)
        self._incarnation = pool.incarnation(self._worker)
        self._inline: _BatchLineParser | None = None

    @property
    def offloaded(self) -> bool:
        """False once the session has reverted to inline parsing."""
        return self._inline is None

    def _fall_back(self) -> None:
        if self._inline is None:
            self._inline = _BatchLineParser(self.fmt)

    # -- phase 1: lock-free -----------------------------------------------------

    def submit(self, lines: list[str]) -> tuple:
        """Ship one chunk to the namespace's worker; returns a ticket."""
        if self._inline is None:
            try:
                future = self._pool.submit_parse(
                    self._key, self.fmt, "\n".join(lines), worker=self._worker
                )
            except PoolError:
                self._fall_back()
            else:
                return ("future", lines, future)
        return ("inline", lines, None)

    def wait(self, ticket: tuple) -> tuple:
        """Block (no session lock held) until the chunk's result lands."""
        kind, lines, future = ticket
        if kind != "future":
            return ticket
        try:
            answer = future.result(timeout=60.0)
        except (PoolError, TimeoutError):
            self._fall_back()
            return ("inline", lines, None)
        if answer[0] != self._incarnation:
            # The worker restarted between rounds: the resident parser
            # (and its pairing state) is gone.  The respawned worker
            # *did* parse this chunk, but with a fresh parser — treat
            # it like a stream restart and revert to inline.
            self._fall_back()
            return ("inline", lines, None)
        return ("answer", lines, answer)

    # -- phase 2: under the session lock ---------------------------------------

    def apply(self, ticket: tuple) -> tuple[EventBatch | None, int, list[int]]:
        """Fold one resolved ticket in; returns ``(batch, events, bad)``."""
        kind, lines, answer = ticket
        if kind == "inline":
            inline = self._inline
            before_malformed = inline.malformed_lines
            before_skipped = inline.skipped_lines
            rows, bad = inline.parse_lines(lines)
            self.lines_fed += len(lines)
            self.malformed_lines += inline.malformed_lines - before_malformed
            self.skipped_lines += inline.skipped_lines - before_skipped
            self.pending_entries = inline.pending_entries
            batch = EventBatch.from_rows(rows) if rows else None
            return batch, len(rows), bad
        _incarnation, encoded, nrows, bad, malformed, skipped, pending = answer
        self.lines_fed += len(lines)
        self.malformed_lines += malformed
        self.skipped_lines += skipped
        self.pending_entries = pending
        batch = decode_batch(encoded) if nrows else None
        return batch, nrows, bad

    def offload_stats(self) -> dict[str, Any]:
        return {
            "enabled": self._inline is None,
            "worker": self._worker,
            "incarnation": self._incarnation,
        }


class IngestSession:
    """A live trace-ingestion session feeding one :class:`IOCov`.

    Args:
        fmt: trace format (``lttng``/``strace``/``syzkaller``).
        mount_point: scoping filter mount point (None = accept all).
        suite_name: label for the live report.
        store: run store for journaling and snapshots (optional).
        journal_session: journal key in the store.
        queue_size: bound on queued lines (backpressure threshold).
        error_budget: malformed-line fraction that degrades the session.
        budget_grace: malformed-line count below which the budget never
            trips.
        registry: metrics registry to instrument (optional; shareable
            across sessions — samples carry tenant/project labels).
        tenant: namespace tenant for journal/store/metric scoping.
        project: namespace project.
        pool: persistent :class:`~repro.parallel.pool.WorkerPool` to
            offload chunk parsing to (the ``--analysis-workers`` mode);
            None keeps parsing in-process.
    """

    def __init__(
        self,
        fmt: str = "lttng",
        *,
        mount_point: str | None = None,
        suite_name: str = "live",
        store: BaseRunStore | None = None,
        journal_session: str = "live",
        queue_size: int = DEFAULT_QUEUE_SIZE,
        error_budget: float = DEFAULT_ERROR_BUDGET,
        budget_grace: int = DEFAULT_BUDGET_GRACE,
        registry: MetricsRegistry | None = None,
        tenant: str = DEFAULT_TENANT,
        project: str = DEFAULT_PROJECT,
        pool: WorkerPool | None = None,
    ) -> None:
        self.fmt = fmt
        self.mount_point = mount_point
        self.suite_name = suite_name
        self.store = store
        self.journal_session = journal_session
        self.queue_size = queue_size
        self.error_budget = error_budget
        self.budget_grace = budget_grace
        self.tenant = tenant
        self.project = project
        self._labels = {"tenant": tenant, "project": project}
        self._ns = {"tenant": tenant, "project": project}
        self.iocov = IOCov(mount_point=mount_point, suite_name=suite_name)
        self.parser: _BatchLineParser | _PoolLineParser = (
            _PoolLineParser(fmt, pool, key=f"{tenant}/{project}")
            if pool is not None
            else _BatchLineParser(fmt)
        )
        self.quarantine: list[Quarantined] = []
        self.degraded = False
        self.closed = False
        self.lines_received = 0
        self.events_counted = 0
        self.batches_received = 0
        self.runs_stored = 0
        self._lock = threading.Lock()  # guards iocov + counters
        #: producers serialize whole requests on this so interleaved
        #: chunked POSTs cannot shuffle each other's partial lines
        self.feed_lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        #: backpressure: lines enqueued but not yet counted, guarded by
        #: its own condition so producers block at line granularity even
        #: though queue items are whole chunks
        self._pending_lines = 0
        self._space = threading.Condition()
        self._feed_tail = ""
        self._metrics(registry)
        self._worker = threading.Thread(
            target=self._run_worker,
            name=f"iocov-ingest-{tenant}-{project}",
            daemon=True,
        )
        self._worker.start()

    def _metrics(self, registry: MetricsRegistry | None) -> None:
        registry = registry or MetricsRegistry()
        self.registry = registry
        self.m_lines = registry.counter(
            "iocov_ingest_lines_total", "Trace lines accepted for ingestion"
        )
        self.m_events = registry.counter(
            "iocov_ingest_events_total", "Syscall events parsed and counted"
        )
        self.m_parse_errors = registry.counter(
            "iocov_parse_errors_total", "Grammar-rejected (quarantined) trace lines"
        )
        self.m_queue_depth = registry.gauge(
            "iocov_ingest_queue_depth", "Lines queued but not yet counted"
        )
        self.m_batch_seconds = registry.histogram(
            "iocov_ingest_batch_seconds",
            "Wall time spent parsing and counting one ingest batch",
        )
        self.m_runs = registry.counter(
            "iocov_runs_stored_total", "Coverage runs snapshotted into the store"
        )

    # -- the worker ----------------------------------------------------------

    @staticmethod
    def _work_size(item: Any) -> int:
        return len(item) if isinstance(item, list) else 1

    def _run_worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                break
            if isinstance(item, _Flush):
                item.done.set()
                continue
            # Coalesce opportunistically: one lock round per work batch.
            work = [item]
            round_lines = self._work_size(item)
            flushes: list[_Flush] = []
            stop = False
            while round_lines < WORKER_ROUND_LINES:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _SENTINEL:
                    self._queue.put(_SENTINEL)  # re-post for the outer loop
                    stop = True
                    break
                if isinstance(extra, _Flush):
                    flushes.append(extra)
                    break  # honor ordering: flush after this batch counts
                work.append(extra)
                round_lines += self._work_size(extra)
            self._ingest_work(work)
            with self._space:
                self._pending_lines -= round_lines
                depth = self._pending_lines
                self._space.notify_all()
            for flush in flushes:
                flush.done.set()
            self.m_queue_depth.set(max(depth, 0), **self._labels)
            if stop:
                break

    def _ingest_work(self, items: list) -> None:
        """Count one drained queue round: line chunks and/or event batches.

        Items are consumed strictly in queue order — a binary frame
        between two text chunks counts exactly where it arrived, so fd
        state evolves as it would have in one sequential stream.

        With a pool-offloaded parser the round is two-phase: every text
        chunk is submitted to (and collected from) the namespace's
        pinned worker *before* the session lock is taken — readers of
        ``/live`` never wait on a parse — and only the cheap counter
        folding and batch counting run under the lock.
        """
        started = time.perf_counter()
        n_lines = 0
        n_events = 0
        malformed: list[Quarantined] = []
        parser = self.parser
        tickets: list[tuple | None] | None = None
        if isinstance(parser, _PoolLineParser):
            # Submit every chunk first (they queue FIFO on the affinity
            # worker, which parses chunk k while we ship chunk k+1),
            # then wait — all without the session lock.
            tickets = [
                parser.submit(item) if isinstance(item, list) else None
                for item in items
            ]
            tickets = [t if t is None else parser.wait(t) for t in tickets]
        with self._lock:
            for position, item in enumerate(items):
                if isinstance(item, EventBatch):
                    self.iocov.consume_batch(item)
                    self.batches_received += 1
                    n_events += len(item)
                    continue
                base = self.lines_received
                if tickets is not None:
                    batch, n_rows, bad_positions = parser.apply(tickets[position])
                else:
                    rows, bad_positions = parser.parse_lines(item)
                    batch = EventBatch.from_rows(rows) if rows else None
                    n_rows = len(rows)
                n_lines += len(item)
                self.lines_received += len(item)
                for index in bad_positions:
                    malformed.append(Quarantined(base + index + 1, item[index]))
                if batch is not None:
                    self.iocov.consume_batch(batch)
                    n_events += n_rows
            self.events_counted += n_events
            if malformed:
                space = QUARANTINE_CAP - len(self.quarantine)
                self.quarantine.extend(malformed[:space])
                if (
                    self.parser.malformed_lines > self.budget_grace
                    and self.parser.malformed_lines
                    > self.error_budget * self.parser.lines_fed
                ):
                    self.degraded = True
        self.m_lines.inc(n_lines, **self._labels)
        self.m_events.inc(n_events, **self._labels)
        if malformed:
            self.m_parse_errors.inc(len(malformed), **self._labels)
        self.m_batch_seconds.observe(time.perf_counter() - started, **self._labels)

    # -- feeding -------------------------------------------------------------

    def _check_accepting(self) -> None:
        if self.closed:
            raise RuntimeError("ingest session is closed")
        # degraded and the parser counters are written by the worker
        # under _lock; read them under the same lock.
        with self._lock:
            degraded = self.degraded
            malformed = self.parser.malformed_lines
            fed = self.parser.lines_fed
        if degraded:
            raise SessionDegradedError(
                f"error budget exhausted: {malformed} of "
                f"{fed} lines malformed "
                f"(budget {self.error_budget:.1%})"
            )

    def _enqueue(self, item: Any, weight: int) -> None:
        """Admit one queue item, blocking while the line bound is hit."""
        with self._space:
            while self._pending_lines >= self.queue_size and not self.closed:
                # Producers are *meant* to park here while serialized
                # by feed_lock: the worker drains the queue without
                # taking either lock, so this cannot deadlock.
                self._space.wait(0.5)  # lint: allow(blocking-under-lock)
            self._pending_lines += weight
            depth = self._pending_lines
        self._queue.put(item)
        self.m_queue_depth.set(depth, **self._labels)

    def feed_lines(self, lines: list[str], *, journal: bool = True) -> None:
        """Enqueue complete lines; blocks when the queue is full.

        Raises:
            SessionDegradedError: the error budget is exhausted.
            RuntimeError: the session was closed.
        """
        self._check_accepting()
        if not lines:
            return
        if journal and self.store is not None:
            self.store.journal_append(self.journal_session, lines, **self._ns)
        chunk = list(lines)
        self._enqueue(chunk, len(chunk))

    def feed_text(self, data: str, *, journal: bool = True) -> None:
        """Feed a raw payload that may split lines arbitrarily.

        Partial trailing lines are buffered (in the feeder, not the
        queue) until their newline arrives in a later call.
        """
        self._check_accepting()
        buffered = self._feed_tail + data
        lines = buffered.split("\n")
        self._feed_tail = lines.pop()
        if lines:
            self.feed_lines(lines, journal=journal)

    def feed_batch(self, batch: EventBatch, *, journal: bool = True) -> None:
        """Enqueue one decoded binary frame (``.rbt`` ingest path).

        The frame is journaled as a single :data:`RBT_JOURNAL_PREFIX`
        line (base64 of its re-encoded payload) so crash recovery
        replays binary and text input alike, in arrival order.

        Raises:
            SessionDegradedError: the error budget is exhausted.
            RuntimeError: the session was closed.
        """
        self._check_accepting()
        if not len(batch):
            return
        if journal and self.store is not None:
            blob = base64.b64encode(encode_batch(batch.rows())).decode("ascii")
            self.store.journal_append(
                self.journal_session, [RBT_JOURNAL_PREFIX + blob], **self._ns
            )
        self._enqueue(batch, 1)

    def end_of_stream(self) -> None:
        """Complete any buffered partial line (client finished sending)."""
        tail, self._feed_tail = self._feed_tail, ""
        if tail:
            self.feed_lines([tail])
        if self.store is not None:
            self.store.journal_sync()

    def flush(self, timeout: float | None = 30.0) -> bool:
        """Block until everything fed so far is parsed and counted."""
        if self.store is not None:
            self.store.journal_sync()
        marker = _Flush()
        self._queue.put(marker)
        return marker.done.wait(timeout)

    # -- snapshots ------------------------------------------------------------

    def report(self):
        """A consistent snapshot of the live coverage state."""
        with self._lock:
            return self.iocov.report()

    def snapshot_to_store(self, *, meta: dict | None = None) -> int:
        """Persist the current state as a run; clears the journal.

        Raises:
            RuntimeError: no store is attached.
        """
        if self.store is None:
            raise RuntimeError("no run store attached to this session")
        self.flush()
        with self._lock:
            report = self.iocov.report()
            document = {
                "source": "serve",
                "format": self.fmt,
                "tenant": self.tenant,
                "project": self.project,
                "lines_received": self.lines_received,
                "parse_errors": self.parser.malformed_lines,
                "degraded": self.degraded,
            }
            document.update(meta or {})
        run_id = self.store.save_report(
            report, trace_format=self.fmt, meta=document, **self._ns
        )
        self.store.journal_clear(self.journal_session, **self._ns)
        self.runs_stored += 1
        self.m_runs.inc(**self._labels)
        return run_id

    def stats(self) -> dict[str, Any]:
        """Session counters for the ``/session`` endpoint."""
        # _pending_lines is guarded by the _space condition, not _lock.
        with self._space:
            depth = self._pending_lines
        with self._lock:
            offload = (
                self.parser.offload_stats()
                if isinstance(self.parser, _PoolLineParser)
                else None
            )
            return {
                "format": self.fmt,
                "analysis_offload": offload,
                "suite": self.suite_name,
                "tenant": self.tenant,
                "project": self.project,
                "mount_point": self.mount_point,
                "lines_received": self.lines_received,
                "batches_received": self.batches_received,
                "events_counted": self.events_counted,
                "parse_errors": self.parser.malformed_lines,
                "pending_pairs": self.parser.pending_entries,
                "degraded": self.degraded,
                "error_budget": self.error_budget,
                "queue_depth": max(depth, 0),
                "runs_stored": self.runs_stored,
                "quarantine": [item.to_dict() for item in self.quarantine[:20]],
            }

    # -- recovery and shutdown -------------------------------------------------

    def recover(self) -> int:
        """Replay the store's journal into this (fresh) session.

        Returns the number of journal lines replayed.  Lines are *not*
        re-journaled — they are already durable.
        """
        if self.store is None:
            return 0
        replayed = 0
        batch: list[str] = []
        for line in self.store.journal_lines(self.journal_session, **self._ns):
            replayed += 1
            if line.startswith(RBT_JOURNAL_PREFIX):
                # Binary frame: flush buffered text first so replay
                # order matches arrival order, then decode and enqueue.
                if batch:
                    self.feed_lines(batch, journal=False)
                    batch = []
                try:
                    payload = base64.b64decode(
                        line[len(RBT_JOURNAL_PREFIX):], validate=True
                    )
                    frame = decode_batch(payload)
                except (binascii.Error, RbtError):
                    continue  # a corrupt journal record loses only itself
                self.feed_batch(frame, journal=False)
                continue
            batch.append(line)
            if len(batch) >= WORKER_ROUND_LINES:
                self.feed_lines(batch, journal=False)
                batch = []
        if batch:
            self.feed_lines(batch, journal=False)
        if replayed:
            self.flush()
        return replayed

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the worker; with *drain*, count everything queued first."""
        if self.closed:
            return
        self.closed = True
        if not drain:
            # Abandon queued lines (crash simulation in tests).
            try:
                while True:
                    self._queue.get_nowait()
            except queue.Empty:
                pass
            with self._space:
                self._pending_lines = 0
                self._space.notify_all()
        self._queue.put(_SENTINEL)
        self._worker.join(timeout)
