"""The reconstructed 70-bug dataset of the Section 2 study.

The paper promises to release its bug-study dataset; this module
reconstructs one consistent with *every* aggregate statistic the paper
reports, anchored by the real, named kernel fixes it cites:

* 200 commits studied (100 Ext4 + 100 BtrFS, 2022), of which
  51 Ext4 + 19 BtrFS = 70 are bug fixes;
* 37/70 (53%) sat in lines xfstests covered yet were not detected;
  43/70 (61%) in covered functions; 20/70 (29%) in covered branches;
* 50/70 (71%) are input bugs; 41/70 (59%) output bugs; 57/70 (81%)
  input or output (hence 34 both, 16 input-only, 7 output-only,
  13 neither);
* of the 37 covered-but-missed bugs, 24 (65%) are triggerable by
  specific syscall arguments.

The free parameter the paper does not state — how many of the 70 bugs
xfstests actually detected — is set to 9, with coverage-granularity
consistency (detected ⟹ line covered ⟹ function covered) preserved
throughout.

Layout: four coverage groups (detected; line-covered-missed;
function-only-covered-missed; uncovered-missed) crossed with the four
input/output kinds.  Named real bugs occupy the cells they actually
belong to; the remainder carry synthesized but plausible titles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.bugstudy.model import Bug, Commit, CommitKind, FileSystemName

EXT4 = FileSystemName.EXT4
BTRFS = FileSystemName.BTRFS

#: (group, kind) -> count.  Groups: "detected", "line_missed",
#: "func_missed", "uncovered".  Kinds: "both", "input", "output",
#: "neither".  Row sums: 9, 37, 6, 18; column sums: 34, 16, 7, 13.
GROUP_KIND_COUNTS: dict[tuple[str, str], int] = {
    ("detected", "both"): 4,
    ("detected", "input"): 2,
    ("detected", "output"): 1,
    ("detected", "neither"): 2,
    ("line_missed", "both"): 20,
    ("line_missed", "input"): 10,
    ("line_missed", "output"): 4,
    ("line_missed", "neither"): 3,
    ("func_missed", "both"): 3,
    ("func_missed", "input"): 1,
    ("func_missed", "output"): 1,
    ("func_missed", "neither"): 1,
    ("uncovered", "both"): 7,
    ("uncovered", "input"): 3,
    ("uncovered", "output"): 1,
    ("uncovered", "neither"): 7,
}

#: Of the 9 detected bugs, how many had their branches covered.
DETECTED_BRANCH_COVERED = 7
#: Of the 37 line-covered-missed bugs, how many had branches covered.
LINE_MISSED_BRANCH_COVERED = 20
#: Of the 37 line-covered-missed bugs, how many trigger on specific
#: argument values (the 65% statistic).  All are input-related.
LINE_MISSED_SPECIFIC_ARGS = 24

#: BtrFS share per group (totals 19 of 70).
BTRFS_PER_GROUP = {"detected": 2, "line_missed": 10, "func_missed": 2, "uncovered": 5}

#: Named real fixes cited by (or contemporaneous with) the paper,
#: placed in their true cells: (group, kind, fs, title, syscalls,
#: boundary note, reference).
NAMED_BUGS = [
    (
        "line_missed", "both", EXT4,
        "ext4: fix use-after-free in ext4_xattr_set_entry",
        ("setxattr", "lsetxattr"),
        "maximum allowed lsetxattr size overflows min_offs",
        "Ts'o 2022 (paper Figure 1)",
    ),
    (
        "line_missed", "both", EXT4,
        "ext4: fix error code return to user-space in ext4_get_branch()",
        ("read", "pread64"),
        "read beyond the last mapped block on the exit path",
        "Henriques & Ts'o 2022",
    ),
    (
        "line_missed", "input", EXT4,
        "ext4: fix potential out of bound read in ext4_fc_replay_scan()",
        ("fsync",),
        "fast-commit region length at a block-boundary tail",
        "Ye Bin & Ts'o 2022",
    ),
    (
        "line_missed", "input", EXT4,
        "ext4: continue to expand file system when the target size doesn't reach",
        ("write",),
        "resize target one group short of the requested size",
        "Lee & Ts'o 2022",
    ),
    (
        "line_missed", "both", BTRFS,
        "btrfs: fix NOWAIT buffered write returning -ENOSPC",
        ("write", "pwrite64"),
        "RWF_NOWAIT write under low free space",
        "Manana 2022",
    ),
    (
        "line_missed", "both", EXT4,
        "xfs/ext4: use generic_file_open() for O_LARGEFILE checks",
        ("open", "openat"),
        "open of a >2GiB file without O_LARGEFILE",
        "Wilcox & Chinner 2022 (paper's O_LARGEFILE example)",
    ),
]


def _titles(fs: FileSystemName, kind: str) -> tuple[str, ...]:
    """Plausible synthesized commit titles for filler bugs."""
    prefix = "ext4" if fs is EXT4 else "btrfs"
    pools = {
        "both": (
            f"{prefix}: fix wrong errno on boundary-size request",
            f"{prefix}: fix overflow in extent length validation",
            f"{prefix}: fix error path leaking transaction on corner case",
        ),
        "input": (
            f"{prefix}: fix off-by-one handling maximal name length",
            f"{prefix}: fix corner case in punch-hole alignment",
            f"{prefix}: fix zero-length request handling",
        ),
        "output": (
            f"{prefix}: return correct error code from writeback failure",
            f"{prefix}: fix missing error propagation on sync path",
        ),
        "neither": (
            f"{prefix}: fix race between evict and writeback",
            f"{prefix}: fix memory leak in mount error path",
            f"{prefix}: fix lockdep splat during remount",
        ),
    }
    return pools[kind]


_SYSCALL_POOLS = {
    "both": (("write",), ("setxattr",), ("open", "close"), ("truncate",)),
    "input": (("lseek",), ("mkdir",), ("chmod",), ("write", "read")),
    "output": (("read",), ("close",), ("getxattr",)),
    "neither": ((), ("open",), ()),
}


def build_bugs() -> list[Bug]:
    """Construct the 70-bug dataset with all aggregates exact."""
    bugs: list[Bug] = []
    named = {key: [] for key in GROUP_KIND_COUNTS}
    for group, kind, fs, title, syscalls, note, ref in NAMED_BUGS:
        named[(group, kind)].append((fs, title, syscalls, note, ref))

    btrfs_left = dict(BTRFS_PER_GROUP)
    for group, _kind, fs, *_rest in NAMED_BUGS:
        if fs is BTRFS:
            btrfs_left[group] -= 1
    # Per-group running counters for branch coverage / specific args.
    branch_budget = {
        "detected": DETECTED_BRANCH_COVERED,
        "line_missed": LINE_MISSED_BRANCH_COVERED,
        "func_missed": 0,
        "uncovered": 0,
    }
    specific_budget = {"line_missed": LINE_MISSED_SPECIFIC_ARGS}

    index = 0
    for (group, kind), count in GROUP_KIND_COUNTS.items():
        fillers = None
        for slot in range(count):
            index += 1
            bug_id = f"bug-{index:03d}"
            pre_named = named[(group, kind)]
            if pre_named:
                fs, title, syscalls, note, ref = pre_named.pop(0)
            else:
                fs = BTRFS if btrfs_left.get(group, 0) > 0 else EXT4
                if fs is BTRFS:
                    btrfs_left[group] -= 1
                titles = _titles(fs, kind)
                title = f"{titles[slot % len(titles)]} (case {slot})"
                pool = _SYSCALL_POOLS[kind]
                syscalls = pool[slot % len(pool)]
                note = ""
                ref = ""

            detected = group == "detected"
            line_covered = group in ("detected", "line_missed")
            function_covered = line_covered or group == "func_missed"
            branch_covered = False
            if line_covered and branch_budget.get(group, 0) > 0:
                branch_covered = True
                branch_budget[group] -= 1

            input_related = kind in ("both", "input")
            output_related = kind in ("both", "output")
            specific = False
            if (
                group == "line_missed"
                and input_related
                and specific_budget.get(group, 0) > 0
            ):
                specific = True
                specific_budget[group] -= 1

            bugs.append(
                Bug(
                    bug_id=bug_id,
                    fs=fs,
                    title=title,
                    trigger_syscalls=tuple(syscalls),
                    input_related=input_related,
                    output_related=output_related,
                    line_covered=line_covered,
                    function_covered=function_covered,
                    branch_covered=branch_covered,
                    detected=detected,
                    trigger_is_specific_args=specific,
                    boundary_note=note,
                    reference=ref,
                )
            )
    return bugs


def build_commits(bugs: list[Bug] | None = None) -> list[Commit]:
    """The 200 studied commits: the 70 bug fixes plus 130 others.

    BtrFS's low bug count reflects the December 2022 refactoring the
    paper mentions, so its non-fix commits skew heavily to REFACTOR.
    """
    bugs = bugs if bugs is not None else build_bugs()
    commits: list[Commit] = []
    for i, bug in enumerate(bugs):
        commits.append(
            Commit(
                commit_id=f"c{i:03d}{'e' if bug.fs is EXT4 else 'b'}",
                fs=bug.fs,
                title=bug.title,
                kind=CommitKind.BUG_FIX,
            )
        )
    other_kinds = {
        EXT4: [CommitKind.FEATURE, CommitKind.CLEANUP, CommitKind.DOCUMENTATION],
        BTRFS: [
            CommitKind.REFACTOR,
            CommitKind.REFACTOR,
            CommitKind.REFACTOR,
            CommitKind.FEATURE,
            CommitKind.CLEANUP,
        ],
    }
    for fs, total_fixes in ((EXT4, 51), (BTRFS, 19)):
        kinds = other_kinds[fs]
        for i in range(100 - total_fixes):
            commits.append(
                Commit(
                    commit_id=f"x{i:03d}{'e' if fs is EXT4 else 'b'}",
                    fs=fs,
                    title=f"{'ext4' if fs is EXT4 else 'btrfs'}: non-fix commit {i}",
                    kind=kinds[i % len(kinds)],
                )
            )
    return commits


#: Module-level singletons (the dataset is immutable).
BUGS: list[Bug] = build_bugs()
COMMITS: list[Commit] = build_commits(BUGS)
