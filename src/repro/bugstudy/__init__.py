"""Section 2 bug study: reconstructed dataset and analytics."""

from repro.bugstudy.analysis import BugStudy, Statistic, paper_comparison
from repro.bugstudy.dataset import BUGS, COMMITS, build_bugs, build_commits
from repro.bugstudy.model import Bug, Commit, CommitKind, FileSystemName

__all__ = [
    "BUGS",
    "Bug",
    "BugStudy",
    "COMMITS",
    "Commit",
    "CommitKind",
    "FileSystemName",
    "Statistic",
    "build_bugs",
    "build_commits",
    "paper_comparison",
]
