"""Bug-study analytics: every aggregate Section 2 reports.

:class:`BugStudy` computes the statistics over a bug list (by default
the reconstructed dataset), and :func:`paper_comparison` lines each one
up against the numbers printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bugstudy.dataset import BUGS, COMMITS
from repro.bugstudy.model import Bug, Commit, CommitKind, FileSystemName


@dataclass(frozen=True)
class Statistic:
    """One reported number: count, denominator, and the paper's value."""

    name: str
    count: int
    total: int
    paper_percent: float | None = None

    @property
    def percent(self) -> float:
        return 100.0 * self.count / self.total if self.total else 0.0

    @property
    def matches_paper(self) -> bool:
        if self.paper_percent is None:
            return True
        return abs(round(self.percent) - self.paper_percent) < 1.0


class BugStudy:
    """Aggregates over the 70-bug dataset."""

    def __init__(
        self,
        bugs: Sequence[Bug] | None = None,
        commits: Sequence[Commit] | None = None,
    ) -> None:
        self.bugs = list(bugs) if bugs is not None else list(BUGS)
        self.commits = list(commits) if commits is not None else list(COMMITS)

    # -- commit-level -----------------------------------------------------------

    def commits_studied(self, fs: FileSystemName | None = None) -> int:
        return sum(1 for c in self.commits if fs is None or c.fs is fs)

    def bug_fix_commits(self, fs: FileSystemName | None = None) -> int:
        return sum(
            1
            for c in self.commits
            if c.kind is CommitKind.BUG_FIX and (fs is None or c.fs is fs)
        )

    # -- bug-level counts -----------------------------------------------------

    def bug_count(self, fs: FileSystemName | None = None) -> int:
        return sum(1 for b in self.bugs if fs is None or b.fs is fs)

    def covered_but_missed(self, granularity: str) -> list[Bug]:
        """Bugs in covered code that xfstests nevertheless missed."""
        attr = {
            "line": "covered_but_missed_line",
            "function": "covered_but_missed_function",
            "branch": "covered_but_missed_branch",
        }[granularity]
        return [b for b in self.bugs if getattr(b, attr)]

    def input_bugs(self) -> list[Bug]:
        return [b for b in self.bugs if b.input_related]

    def output_bugs(self) -> list[Bug]:
        return [b for b in self.bugs if b.output_related]

    def input_or_output_bugs(self) -> list[Bug]:
        return [b for b in self.bugs if b.input_related or b.output_related]

    def specific_arg_triggerable(self) -> list[Bug]:
        """Covered-but-missed bugs triggerable by specific arguments."""
        return [
            b
            for b in self.covered_but_missed("line")
            if b.trigger_is_specific_args
        ]

    def detected(self) -> list[Bug]:
        return [b for b in self.bugs if b.detected]

    def kind_histogram(self) -> dict[str, int]:
        histogram = {"input": 0, "output": 0, "both": 0, "neither": 0}
        for bug in self.bugs:
            histogram[bug.kind] += 1
        return histogram

    # -- the paper's numbers ------------------------------------------------------

    def statistics(self) -> list[Statistic]:
        """Every Section 2 aggregate with its paper value."""
        total = self.bug_count()
        line_missed = len(self.covered_but_missed("line"))
        return [
            Statistic("commits studied", self.commits_studied(), 200, None),
            Statistic("ext4 bugs", self.bug_count(FileSystemName.EXT4), 51, None),
            Statistic("btrfs bugs", self.bug_count(FileSystemName.BTRFS), 19, None),
            Statistic("line-covered but missed", line_missed, total, 53.0),
            Statistic(
                "function-covered but missed",
                len(self.covered_but_missed("function")),
                total,
                61.0,
            ),
            Statistic(
                "branch-covered but missed",
                len(self.covered_but_missed("branch")),
                total,
                29.0,
            ),
            Statistic("input bugs", len(self.input_bugs()), total, 71.0),
            Statistic("output bugs", len(self.output_bugs()), total, 59.0),
            Statistic(
                "input or output bugs",
                len(self.input_or_output_bugs()),
                total,
                81.0,
            ),
            Statistic(
                "covered-missed triggerable by specific args",
                len(self.specific_arg_triggerable()),
                line_missed,
                65.0,
            ),
        ]

    def verify_paper_statistics(self) -> list[str]:
        """Return the names of any statistics that deviate (empty = all
        aggregates reproduce the paper exactly)."""
        return [stat.name for stat in self.statistics() if not stat.matches_paper]

    def render_text(self) -> str:
        lines = ["Section 2 bug study (reconstructed dataset)"]
        lines.append("-" * len(lines[0]))
        for stat in self.statistics():
            paper = (
                f"  (paper: {stat.paper_percent:.0f}%)"
                if stat.paper_percent is not None
                else ""
            )
            lines.append(
                f"{stat.name:<45} {stat.count:>3}/{stat.total:<3}"
                f" = {stat.percent:5.1f}%{paper}"
            )
        return "\n".join(lines)


def paper_comparison() -> dict[str, tuple[float, float | None]]:
    """name -> (measured %, paper %) over the default dataset."""
    return {
        stat.name: (round(stat.percent, 1), stat.paper_percent)
        for stat in BugStudy().statistics()
    }
