"""Data model for the Section 2 real-world bug study.

The study examined the latest 100 Git commits of 2022 for each of Ext4
and BtrFS (200 commits), identified the bug fixes among them with Lu et
al.'s technique (51 Ext4 + 19 BtrFS = 70 bugs), ran xfstests under
Gcov, and recorded per bug: whether xfstests covered the buggy
lines/functions/branches, whether it detected the bug, which syscalls
trigger it, and its input/output classification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FileSystemName(enum.Enum):
    EXT4 = "ext4"
    BTRFS = "btrfs"


class CommitKind(enum.Enum):
    """Classification of a studied commit."""

    BUG_FIX = "bug-fix"
    FEATURE = "feature"
    REFACTOR = "refactor"
    CLEANUP = "cleanup"
    DOCUMENTATION = "documentation"


@dataclass(frozen=True)
class Commit:
    """One studied kernel commit."""

    commit_id: str
    fs: FileSystemName
    title: str
    kind: CommitKind
    year: int = 2022


@dataclass(frozen=True)
class Bug:
    """One bug-fix commit with the study's full annotation.

    Attributes:
        bug_id: stable identifier within the dataset.
        fs: which file system the fix landed in.
        title: commit-style one-liner.
        trigger_syscalls: syscalls involved in reaching the bug.
        input_related: needs specific syscall inputs to trigger.
        output_related: occurs on the exit path / affects the syscall
            return.
        line_covered: xfstests executed the buggy lines (Gcov).
        function_covered: xfstests entered the buggy function.
        branch_covered: xfstests covered the buggy branch outcomes.
        detected: xfstests actually exposed the bug.
        trigger_is_specific_args: among covered-but-missed bugs,
            whether specific argument values (boundaries, corner
            cases) would trigger it — the 65% statistic.
        boundary_note: which boundary/corner case matters.
        reference: citation when modeled on a real, named fix.
    """

    bug_id: str
    fs: FileSystemName
    title: str
    trigger_syscalls: tuple[str, ...]
    input_related: bool
    output_related: bool
    line_covered: bool
    function_covered: bool
    branch_covered: bool
    detected: bool
    trigger_is_specific_args: bool = False
    boundary_note: str = ""
    reference: str = ""

    def __post_init__(self) -> None:
        # Coverage granularity is ordered: branch ⊆ line ⊆ function.
        if self.branch_covered and not self.line_covered:
            raise ValueError(f"{self.bug_id}: branch covered implies line covered")
        if self.line_covered and not self.function_covered:
            raise ValueError(f"{self.bug_id}: line covered implies function covered")
        if self.detected and not self.line_covered:
            raise ValueError(f"{self.bug_id}: detection implies the code ran")

    @property
    def kind(self) -> str:
        """input / output / both / neither (the paper's classes)."""
        if self.input_related and self.output_related:
            return "both"
        if self.input_related:
            return "input"
        if self.output_related:
            return "output"
        return "neither"

    @property
    def covered_but_missed_line(self) -> bool:
        return self.line_covered and not self.detected

    @property
    def covered_but_missed_function(self) -> bool:
        return self.function_covered and not self.detected

    @property
    def covered_but_missed_branch(self) -> bool:
        return self.branch_covered and not self.detected
