"""LTTng-style text trace serialization and parsing.

The IOCov prototype traces testers with LTTng and consumes the
babeltrace text rendering of the resulting CTF trace.  This module
round-trips our :class:`~repro.trace.events.SyscallEvent` records
through that same text shape so the analyzer can ingest either live
recorder output or an on-disk trace file:

.. code-block:: text

    [00:00:00.000000042] (+0.000000001) sim syscall_entry_openat: \
{ cpu_id = 0 }, { procname = "fsx", pid = 1 }, \
{ dfd = -100, pathname = "/mnt/test/f0", flags = 577, mode = 420 }
    [00:00:00.000000043] (+0.000000001) sim syscall_exit_openat: \
{ cpu_id = 0 }, { procname = "fsx", pid = 1 }, { ret = 3 }

Each syscall becomes an entry/exit line pair keyed by name; the parser
pairs them back up (per pid, in order) into flattened events.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Iterator, Mapping, TextIO

from repro.trace.events import SyscallEvent, make_event

_NS_PER_SEC = 1_000_000_000

#: One babeltrace-style line:
#: [HH:MM:SS.nnnnnnnnn] (+d.ddddddddd) host syscall_entry_NAME: { ctx }, ... { fields }
_LINE_RE = re.compile(
    r"^\[(?P<h>\d+):(?P<m>\d+):(?P<s>\d+)\.(?P<ns>\d{9})\]\s+"
    r"\(\+?[-\d.?]+\)\s+"
    r"(?P<host>\S+)\s+"
    r"syscall_(?P<kind>entry|exit)_(?P<name>\w+):\s+"
    r"(?P<rest>.*)$"
)

_FIELD_BLOCK_RE = re.compile(r"\{([^{}]*)\}")
_FIELD_RE = re.compile(r"(\w+)\s*=\s*(\"(?:[^\"\\]|\\.)*\"|[^,]+)")

_NAME_RE = re.compile(r"\w+\Z")

#: Context-field names the parser lifts out of the field blocks.
_CONTEXT_KEYS = ("pid", "procname", "cpu_id")

#: Strict single-line grammar for exactly the shape :class:`LttngWriter`
#: emits.  Everything structural — timestamp layout, context blocks,
#: the quoted procname, the exit ``ret`` value — is validated by the
#: regex engine in one C-level match, so the Python side only converts
#: captured strings.  Lines that deviate (escaped procnames, extra
#: context fields, leading-zero retvals, multi-digit hours, …) simply
#: fail to match and take the permissive `_LINE_RE` path, so the fast
#: path can never *disagree* with the slow one — it can only decline.
#:
#: Groups: 1 ts(HH:MM:SS) 2 ns | exit: 3 name 4 comm 5 pid 6 ret
#:                              | entry: 7 name 8 comm 9 pid 10 body
_WRITER_PATTERN = (
    r"\[(\d\d:\d\d:\d\d)\.(\d{9})\] \(\+[0-9.]+\) \S+ syscall_"
    r"(?:exit_(\w+): \{ cpu_id = \d+ \}, "
    r"\{ procname = \"([^\"\\{}]*)\", pid = (\d+) \}, "
    r"\{ ret = (-?(?:0|[1-9]\d*)) \}"
    r"|entry_(\w+): \{ cpu_id = \d+ \}, "
    r"\{ procname = \"([^\"\\{}]*)\", pid = (\d+) \}, "
    r"\{ (.*) \})$"
)
_WRITER_RE = re.compile(_WRITER_PATTERN)
#: Chunk-mode variant: anchored per line for `findall` over whole reads.
_WRITER_RE_M = re.compile("(?m)^" + _WRITER_PATTERN)

#: "HH:MM:SS" -> nanoseconds-at-second-boundary.  Traces advance through
#: at most 86 400 distinct wall-second labels per day, so this stays tiny.
_TS_CACHE: dict[str, int] = {}

#: "key = value" part -> (key, parsed value).  Field parts repeat
#: heavily across a trace (``flags = 577``, ``mode = 420``, ``ret = 0``)
#: while only path-carrying parts are unique, so a string-keyed memo
#: removes almost all per-field parse work.  Values are ints / strings /
#: None — immutable — so sharing them across events is safe.
_PART_CACHE: dict[str, tuple[str, Any]] = {}
_PART_CACHE_CAP = 16384


def _ts_ns(hms: str) -> int:
    """Convert a cached ``HH:MM:SS`` label to nanoseconds."""
    ns = _TS_CACHE.get(hms)
    if ns is None:
        ns = (int(hms[0:2]) * 3600 + int(hms[3:5]) * 60 + int(hms[6:8])) * _NS_PER_SEC
        if len(_TS_CACHE) < 65536:
            _TS_CACHE[hms] = ns
    return ns


def _format_value(value: Any) -> str:
    if value is None:
        return "0x0"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, (list, tuple)):
        return f'"{",".join(str(item) for item in value)}"'
    return f'"{value}"'


def _parse_value(text: str) -> Any:
    text = text.strip()
    if text.startswith('"') and text.endswith('"'):
        body = text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    if text == "0x0":
        return None
    try:
        return int(text, 0)
    except ValueError:
        return text


def _fast_fields(body: str) -> dict[str, Any] | None:
    """Parse a writer-shaped field block with split + a part memo.

    Only accepts the strict shape the regex grammar would parse to the
    identical dict: ``key = value`` parts joined by ``", "`` where keys
    are word characters and quoted values carry no interior quotes (a
    quoted value containing ``", "`` mis-splits, but its first fragment
    then holds an unterminated quote and is rejected here).  Anything
    else returns None and the caller falls back to the regex path, so
    the fast path can never *disagree* with the slow one — it can only
    decline.  The caller must already have excluded braces/backslashes.
    """
    if not body:
        return {}
    fields: dict[str, Any] = {}
    cache = _PART_CACHE
    for part in body.split(", "):
        hit = cache.get(part)
        if hit is not None:
            fields[hit[0]] = hit[1]
            continue
        key, sep, tok = part.partition(" = ")
        if not sep or _NAME_RE.fullmatch(key) is None or key in _CONTEXT_KEYS:
            return None
        tok = tok.strip()
        if not tok:
            return None
        c0 = tok[0]
        if c0 == '"':
            if len(tok) < 2 or tok.find('"', 1) != len(tok) - 1:
                return None
            value: Any = tok[1:-1]
        # The regex grammar ends an unquoted value at a *bare* comma,
        # not just at the ", " separator this split uses.
        elif "," in tok:
            return None
        # int(text, 0) rejects leading-zero decimals ('010'), so those
        # must take the same _parse_value route the regex path takes
        # (where they stay strings).
        elif tok.isdecimal():
            value = _parse_value(tok) if (c0 == "0" and len(tok) > 1) else int(tok)
        elif c0 == "-" and tok[1:].isdecimal():
            value = _parse_value(tok) if (len(tok) > 2 and tok[1] == "0") else int(tok)
        else:
            value = _parse_value(tok)
        fields[key] = value
        if len(cache) < _PART_CACHE_CAP:
            cache[part] = (key, value)
    return fields


def _timestamp_str(ns: int) -> str:
    seconds, nanos = divmod(ns, _NS_PER_SEC)
    minutes, sec = divmod(seconds, 60)
    hours, minute = divmod(minutes, 60)
    return f"{hours % 24:02d}:{minute:02d}:{sec:02d}.{nanos:09d}"


class LttngWriter:
    """Serializes events to the babeltrace-like text format."""

    def __init__(self, hostname: str = "sim") -> None:
        self.hostname = hostname

    def format_event(self, event: SyscallEvent) -> list[str]:
        """Render one event as its entry/exit line pair."""
        context = (
            f'{{ cpu_id = 0 }}, {{ procname = "{event.comm or "tester"}", '
            f"pid = {event.pid} }}"
        )
        fields = ", ".join(
            f"{key} = {_format_value(value)}" for key, value in event.args.items()
        )
        ts_entry = _timestamp_str(event.timestamp)
        ts_exit = _timestamp_str(event.timestamp + 1)
        entry = (
            f"[{ts_entry}] (+0.000000001) {self.hostname} "
            f"syscall_entry_{event.name}: {context}, {{ {fields} }}"
        )
        exit_line = (
            f"[{ts_exit}] (+0.000000001) {self.hostname} "
            f"syscall_exit_{event.name}: {context}, {{ ret = {event.retval} }}"
        )
        return [entry, exit_line]

    def write(self, events: Iterable[SyscallEvent], stream: TextIO) -> int:
        """Write all *events*; returns the number of lines written."""
        lines = 0
        for event in events:
            for line in self.format_event(event):
                stream.write(line + "\n")
                lines += 1
        return lines

    def dumps(self, events: Iterable[SyscallEvent]) -> str:
        parts: list[str] = []
        for event in events:
            parts.extend(self.format_event(event))
        return "\n".join(parts) + ("\n" if parts else "")


class LttngParseError(ValueError):
    """A trace line could not be understood."""


#: An exit line that found no pending entry (its entry precedes the
#: current stream — possible when parsing a mid-trace shard).
#: ``fields`` is the exit field dict (carrying ``ret``).
OrphanExit = tuple[int, str, int, str, dict]  # (ns, name, pid, comm, fields)


class LttngParser:
    """Parses the babeltrace-like text format back into events.

    Entry and exit lines are paired per (pid, syscall-name) in file
    order, tolerating interleaving across pids the way a real multi-CPU
    trace interleaves.  Unpaired entries (a syscall still in flight
    when the trace stopped) are dropped, matching the prototype's
    behaviour.

    For sharded analysis, :meth:`parse_records` additionally surfaces
    the pairing residue a mid-file shard produces: exit lines whose
    entries precede the shard (*orphan exits*) and entry lines whose
    exits follow it (left in :attr:`pending_entries` after iteration).
    The parallel executor stitches these back together across shard
    boundaries; plain :meth:`parse` treats orphan exits as skipped
    lines, exactly as before.
    """

    def __init__(self, strict: bool = False, fast: bool = True) -> None:
        self.strict = strict
        #: use the string-ops fast path for writer-shaped lines; False
        #: forces every line through the regex grammar (benchmarks use
        #: this to measure the legacy path).
        self.fast = fast
        self.skipped_lines = 0
        #: nonblank lines the grammar rejected (a subset of skipped).
        self.malformed_lines = 0
        #: (pid, name) -> pending entry records, set after an iteration
        #: of :meth:`parse_records` is exhausted.
        self.pending_entries: dict[tuple[int, str], list[tuple[int, str, dict[str, Any]]]] = {}

    def parse_line(self, line: str) -> tuple[str, str, int, int, str, dict[str, Any]] | None:
        """Parse one line into (kind, name, ts, pid, comm, fields)."""
        stripped = line.strip()
        if self.fast:
            m = _WRITER_RE.match(stripped)
            if m is not None:
                g = m.groups()
                body = g[9]
                if body is None:
                    # Exit alternative: ret was captured by the regex.
                    ns = _ts_ns(g[0]) + int(g[1])
                    return "exit", g[2], ns, int(g[4]), g[3], {"ret": int(g[5])}
                if "{" not in body and "}" not in body and "\\" not in body:
                    fields = _fast_fields(body)
                    if fields is not None:
                        ns = _ts_ns(g[0]) + int(g[1])
                        return "entry", g[6], ns, int(g[8]), g[7], fields
                # Braces/escapes derail the regex block splitter — the
                # slow path must decide what such a line means.
        match = _LINE_RE.match(stripped)
        if match is None:
            if stripped:
                if self.strict:
                    raise LttngParseError(f"unparseable line: {line!r}")
                self.malformed_lines += 1
            self.skipped_lines += 1
            return None
        ns = (
            (int(match["h"]) * 3600 + int(match["m"]) * 60 + int(match["s"]))
            * _NS_PER_SEC
            + int(match["ns"])
        )
        fields: dict[str, Any] = {}
        pid = 0
        comm = ""
        for block in _FIELD_BLOCK_RE.findall(match["rest"]):
            for key, raw in _FIELD_RE.findall(block):
                value = _parse_value(raw)
                if key == "pid":
                    if not isinstance(value, int):
                        # Grammar-shaped line with a non-numeric pid:
                        # reject as malformed instead of crashing.
                        if self.strict:
                            raise LttngParseError(f"bad pid in line: {line!r}")
                        self.malformed_lines += 1
                        self.skipped_lines += 1
                        return None
                    pid = value
                elif key == "procname":
                    comm = str(value)
                elif key == "cpu_id":
                    continue
                else:
                    fields[key] = value
        kind = match["kind"]
        if kind == "exit" and not isinstance(fields.get("ret", 0), int):
            # Exit line with a non-integer ret: reject as malformed
            # instead of crashing the pairing stage downstream.
            if self.strict:
                raise LttngParseError(f"bad ret in line: {line!r}")
            self.malformed_lines += 1
            self.skipped_lines += 1
            return None
        return kind, match["name"], ns, pid, comm, fields

    def parse_records(
        self, lines: Iterable[str]
    ) -> Iterator[tuple[str, SyscallEvent | OrphanExit]]:
        """Yield ``("event", event)`` / ``("orphan", exit_info)`` records.

        Records appear in exit-line order — the order the sequential
        parser yields events — so a consumer can stitch shard streams
        back together position-exactly.  After exhaustion,
        :attr:`pending_entries` holds entries still awaiting exits.
        """
        pending: dict[tuple[int, str], list[tuple[int, str, dict[str, Any]]]] = {}
        self.pending_entries = pending
        for line in lines:
            parsed = self.parse_line(line)
            if parsed is None:
                continue
            kind, name, ns, pid, comm, fields = parsed
            key = (pid, name)
            if kind == "entry":
                pending.setdefault(key, []).append((ns, comm, fields))
                continue
            queue = pending.get(key)
            if not queue:
                # Exit without entry: either the trace started mid-call
                # (sequential parse skips it) or this is a mid-file
                # shard whose entry lives in the previous shard.
                yield "orphan", (ns, name, pid, comm, fields)
                continue
            entry_ns, entry_comm, args = queue.pop(0)
            yield "event", pair_event(name, args, fields, pid, entry_comm or comm, entry_ns)

    def parse(self, lines: Iterable[str]) -> Iterator[SyscallEvent]:
        """Yield flattened events from entry/exit line pairs."""
        for kind, payload in self.parse_records(lines):
            if kind == "event":
                yield payload  # type: ignore[misc]
            else:
                # Exit without entry: trace started mid-call; skip.
                self.skipped_lines += 1

    def parse_text(self, text: str) -> list[SyscallEvent]:
        return list(self.parse(text.splitlines()))

    def iter_parse_file(self, path: str) -> Iterator[SyscallEvent]:
        """Stream events from disk without materializing the trace."""
        with open(path, encoding="utf-8") as handle:
            yield from self.parse(handle)

    def parse_file(self, path: str) -> list[SyscallEvent]:
        return list(self.iter_parse_file(path))


def pair_event(
    name: str,
    entry_args: dict[str, Any],
    exit_fields: Mapping[str, Any],
    pid: int,
    comm: str,
    entry_ns: int,
) -> SyscallEvent:
    """Flatten one entry/exit pair into an event (shared with fixup)."""
    retval = int(exit_fields.get("ret", 0))
    return make_event(
        name,
        entry_args,
        retval,
        -retval if retval < 0 else 0,
        pid=pid,
        comm=comm,
        timestamp=entry_ns,
    )
