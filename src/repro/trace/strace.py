"""strace output parser: an alternate trace ingestion path.

IOCov's architecture separates *capture* from *analysis*: anything that
yields (syscall, args, retval) records can feed the analyzer.  strace
is the most widely available capture tool, so this parser turns lines
like

.. code-block:: text

    openat(AT_FDCWD, "/mnt/test/f0", O_WRONLY|O_CREAT|O_TRUNC, 0644) = 3
    write(3, "abc"..., 4096) = 4096
    open("/mnt/test/missing", O_RDONLY) = -1 ENOENT (No such file or directory)

into :class:`~repro.trace.events.SyscallEvent` records.  Symbolic flag
expressions (``O_WRONLY|O_CREAT``) are evaluated against the constant
tables in :mod:`repro.vfs.constants`; positional arguments are mapped
to names using the per-syscall signatures below so that downstream
partitioners see the same argument names regardless of capture tool.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Iterator

from repro.trace.events import SyscallEvent, make_event
from repro.vfs import constants
from repro.vfs.errors import ERRNO_BY_NAME

#: Positional argument names per syscall (as strace prints them).
SYSCALL_SIGNATURES: dict[str, tuple[str, ...]] = {
    "open": ("pathname", "flags", "mode"),
    "openat": ("dfd", "pathname", "flags", "mode"),
    "openat2": ("dfd", "pathname", "how", "size"),
    "creat": ("pathname", "mode"),
    "close": ("fd",),
    "read": ("fd", "buf", "count"),
    "pread64": ("fd", "buf", "count", "pos"),
    "readv": ("fd", "vec", "vlen"),
    "preadv": ("fd", "vec", "vlen", "pos"),
    "write": ("fd", "buf", "count"),
    "pwrite64": ("fd", "buf", "count", "pos"),
    "writev": ("fd", "vec", "vlen"),
    "pwritev": ("fd", "vec", "vlen", "pos"),
    "lseek": ("fd", "offset", "whence"),
    "truncate": ("path", "length"),
    "ftruncate": ("fd", "length"),
    "mkdir": ("pathname", "mode"),
    "mkdirat": ("dfd", "pathname", "mode"),
    "chmod": ("pathname", "mode"),
    "fchmod": ("fd", "mode"),
    "fchmodat": ("dfd", "pathname", "mode", "flags"),
    "chdir": ("filename",),
    "fchdir": ("fd",),
    "setxattr": ("pathname", "name", "value", "size", "flags"),
    "lsetxattr": ("pathname", "name", "value", "size", "flags"),
    "fsetxattr": ("fd", "name", "value", "size", "flags"),
    "getxattr": ("pathname", "name", "value", "size"),
    "lgetxattr": ("pathname", "name", "value", "size"),
    "fgetxattr": ("fd", "name", "value", "size"),
    "link": ("oldpath", "newpath"),
    "access": ("pathname", "mode"),
    "statfs": ("pathname", "buf"),
    "unlink": ("pathname",),
    "rmdir": ("pathname",),
    "rename": ("oldpath", "newpath"),
    "symlink": ("target", "linkpath"),
    "stat": ("pathname", "statbuf"),
    "lstat": ("pathname", "statbuf"),
    "fstat": ("fd", "statbuf"),
    "dup": ("fildes",),
    "dup2": ("oldfd", "newfd"),
    "fsync": ("fd",),
    "fdatasync": ("fd",),
    "sync": (),
}

#: Symbol tables used to evaluate OR-expressions in strace output.
_SYMBOLS: dict[str, int] = {}
_SYMBOLS.update(constants.OPEN_FLAG_NAMES)
_SYMBOLS.update(constants.SEEK_WHENCE_NAMES)
_SYMBOLS.update(constants.MODE_BIT_NAMES)
_SYMBOLS.update(constants.XATTR_FLAG_NAMES)
_SYMBOLS["AT_FDCWD"] = constants.AT_FDCWD
_SYMBOLS["AT_SYMLINK_NOFOLLOW"] = constants.AT_SYMLINK_NOFOLLOW
_SYMBOLS["AT_EMPTY_PATH"] = constants.AT_EMPTY_PATH
_SYMBOLS["O_NDELAY"] = constants.O_NDELAY

#: line shape:  name(args) = ret [ERRNO (message)]
#: (kept as a plain string so the batch parser can recompile it in
#: multiline chunk mode; group order: pid, ts, name, args, ret, errname)
_CALL_PATTERN = (
    r"^(?:\[pid\s+(?P<pid>\d+)\]\s+)?"
    r"(?:(?P<ts>\d+\.\d+|\d+:\d+:\d+\.\d+)\s+)?"
    r"(?P<name>\w+)\((?P<args>.*)\)\s*=\s*"
    r"(?P<ret>-?\d+|\?)"
    r"(?:\s+(?P<errname>E[A-Z0-9]+)\s*(?:\([^)]*\))?)?\s*$"
)
_CALL_RE = re.compile(_CALL_PATTERN)

#: Lines that legitimately produce no event (signal/exit annotations,
#: interrupted-call halves, calls with unknown return) — skipped but
#: not *malformed*.
_NOISE_PREFIXES = ("--- ", "+++ ")


class StraceParseError(ValueError):
    """A line could not be parsed in strict mode."""


def _split_args(text: str) -> list[str]:
    """Split a strace argument list at top-level commas."""
    parts: list[str] = []
    depth = 0
    in_string = False
    escaped = False
    current: list[str] = []
    for char in text:
        if in_string:
            current.append(char)
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
            current.append(char)
        elif char in "([{":
            depth += 1
            current.append(char)
        elif char in ")]}":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_arg(text: str) -> Any:
    """Parse one strace argument token into a Python value."""
    text = text.strip()
    if not text:
        return None
    if text.startswith('"'):
        # Strings may be truncated: "abc"... — strip the ellipsis.
        end = text.rfind('"')
        body = text[1:end]
        return body.encode("latin-1", "backslashreplace").decode("unicode_escape")
    if text == "NULL":
        return None
    if "|" in text or text in _SYMBOLS:
        value = 0
        known = True
        for token in text.split("|"):
            token = token.strip()
            if token in _SYMBOLS:
                value |= _SYMBOLS[token]
            else:
                try:
                    value |= int(token, 0)
                except ValueError:
                    known = False
                    break
        if known:
            return value
    # strace prints modes C-style: a leading zero means octal.
    if len(text) > 1 and text[0] == "0" and all(c in "01234567" for c in text[1:]):
        return int(text, 8)
    try:
        return int(text, 0)
    except ValueError:
        return text


class StraceParser:
    """Parses strace `-f -e trace=...` style output into events."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.skipped_lines = 0
        #: nonblank lines the grammar rejected that are not recognized
        #: noise (signals, interrupted calls) — a subset of skipped.
        self.malformed_lines = 0

    def parse_line(self, line: str) -> SyscallEvent | None:
        """Parse one completed-call line; returns None for noise lines."""
        line = line.strip()
        if not line or line.endswith("<unfinished ...>") or "resumed>" in line:
            self.skipped_lines += 1
            return None
        match = _CALL_RE.match(line)
        if match is None:
            if self.strict:
                raise StraceParseError(f"unparseable line: {line!r}")
            self.skipped_lines += 1
            if not line.startswith(_NOISE_PREFIXES) and not line.endswith("= ?"):
                self.malformed_lines += 1
            return None
        name = match["name"]
        raw_args = _split_args(match["args"])
        signature = SYSCALL_SIGNATURES.get(name)
        args: dict[str, Any] = {}
        for index, token in enumerate(raw_args):
            if signature and index < len(signature):
                key = signature[index]
            else:
                key = f"arg{index}"
            args[key] = _parse_arg(token)
        # Buffer contents are not coverage-relevant; drop them like LTTng.
        args.pop("buf", None)
        args.pop("statbuf", None)
        args.pop("vec", None)

        ret_text = match["ret"]
        if ret_text == "?":
            self.skipped_lines += 1
            return None
        retval = int(ret_text)
        err = 0
        if retval < 0:
            errname = match["errname"]
            err = ERRNO_BY_NAME.get(errname, -retval) if errname else -retval
            retval = -err
        pid = int(match["pid"]) if match["pid"] else 0
        return make_event(name, args, retval, err, pid=pid)

    def parse(self, lines: Iterable[str]) -> Iterator[SyscallEvent]:
        for line in lines:
            event = self.parse_line(line)
            if event is not None:
                yield event

    def parse_text(self, text: str) -> list[SyscallEvent]:
        return list(self.parse(text.splitlines()))

    def iter_parse_file(self, path: str) -> Iterator[SyscallEvent]:
        """Stream events from disk without materializing the trace."""
        with open(path, encoding="utf-8") as handle:
            yield from self.parse(handle)

    def parse_file(self, path: str) -> list[SyscallEvent]:
        return list(self.iter_parse_file(path))
