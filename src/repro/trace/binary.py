"""``.rbt`` — repro binary trace: a compact columnar trace container.

Text traces pay their parse cost on *every* analysis run.  Converting
once (``repro convert``) amortizes that cost: the binary layout needs
no grammar, no argument tokenizer and no string interning on read —
decoding is a handful of ``array.frombytes``/``json.loads`` calls per
frame instead of per-event Python work.

Layout (all integers little-endian, varints are unsigned LEB128)::

    magic   8 bytes  b"\\x89RBT\\r\\n\\x1a\\n"
    version u8       (currently 1)
    header  uvarint length + UTF-8 JSON object
            {"format": "lttng", "parse_stats": {...}, ...}
    frame*  uvarint payload length + payload   (length > 0)
    end     uvarint 0                          (explicit terminator)

Frame payload::

    n_events  uvarint
    names     u32 id per event + string table     (see *id column*)
    comms     u32 id per event + string table
    retvals   scalar column
    errnos    scalar column
    pids      scalar column
    timestamps scalar column
    n_keys    uvarint, then per argument key:
        key     uvarint length + UTF-8 bytes
        tag u8  0 = int column: n presence bytes, then i64 per present
                1 = str column: u32 per event (0 = absent, else
                    1-based string-table id) + string table
                2 = obj column: n presence bytes, then a JSON array
                    holding the present values in order

    scalar column: tag u8 0 = n * i64; 1 = uvarint length + JSON array
    id column:     n * u32 indexes + uvarint length + JSON string table
    string table:  JSON array of strings, referenced by index

The terminator makes truncation *detectable*: a stream that ends
mid-frame or before the zero-length frame raises
:class:`RbtTruncatedError` instead of silently yielding fewer events.

Decoding produces columnar :class:`~repro.trace.batch.EventBatch`
objects whose argument dicts are built lazily — consumers that only
need counts or names never pay for dict construction at all.
"""

from __future__ import annotations

import json
import sys
from array import array
from typing import Any, BinaryIO, Iterable, Iterator

from repro.trace.batch import (
    DEFAULT_CHUNK_CHARS,
    EventBatch,
    Row,
    _read_chunks,
    make_batch_parser,
)

MAGIC = b"\x89RBT\r\n\x1a\n"
VERSION = 1

#: Events per frame the writer targets (frames decode independently).
DEFAULT_FRAME_EVENTS = 8192

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_BIG_ENDIAN = sys.byteorder == "big"

_JSON_SEPARATORS = (",", ":")


class RbtError(ValueError):
    """Base class for ``.rbt`` container errors."""


class RbtFormatError(RbtError):
    """The byte stream violates the ``.rbt`` grammar."""


class RbtTruncatedError(RbtError):
    """The stream ended before the explicit terminator frame."""


# -- varints -----------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(buf, pos: int) -> tuple[int, int]:
    """Decode one LEB128 uvarint at *pos*; returns (value, new_pos).

    Raises :class:`RbtTruncatedError` when the buffer ends mid-varint.
    """
    result = 0
    shift = 0
    end = len(buf)
    while True:
        if pos >= end:
            raise RbtTruncatedError("byte stream ends inside a varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise RbtFormatError("varint too long")


# -- column encoding ---------------------------------------------------------


def _dump_json(value: Any) -> bytes:
    return json.dumps(value, separators=_JSON_SEPARATORS, ensure_ascii=False).encode(
        "utf-8"
    )


def _append_blob(out: bytearray, blob: bytes) -> None:
    _write_uvarint(out, len(blob))
    out += blob


def _encode_scalar_column(out: bytearray, values: list) -> None:
    """tag 0: packed i64; tag 1: JSON fallback for exotic values."""
    packable = all(
        type(v) is int and _I64_MIN <= v <= _I64_MAX for v in values
    )
    if packable:
        out.append(0)
        col = array("q", values)
        if _BIG_ENDIAN:
            col.byteswap()
        out += col.tobytes()
    else:
        out.append(1)
        _append_blob(out, _dump_json(values))


def _encode_id_column(out: bytearray, values: list) -> None:
    """Dictionary-encode a low-cardinality string column (names, comms)."""
    table: dict[str, int] = {}
    ids = array("I", bytes(0))
    append = ids.append
    for value in values:
        idx = table.get(value)
        if idx is None:
            idx = len(table)
            table[value] = idx
        append(idx)
    if _BIG_ENDIAN:
        ids.byteswap()
    out += ids.tobytes()
    _append_blob(out, _dump_json(list(table)))


def _encode_arg_columns(out: bytearray, argses: list) -> None:
    """Pivot per-event dicts into per-key columns."""
    keys: dict[str, None] = {}
    for args in argses:
        for key in args:
            keys[key] = None
    _write_uvarint(out, len(keys))
    n = len(argses)
    missing = _MISSING
    for key in keys:
        _append_blob(out, key.encode("utf-8"))
        values = [args.get(key, missing) for args in argses]
        present = [v for v in values if v is not missing]
        if all(type(v) is int and _I64_MIN <= v <= _I64_MAX for v in present):
            out.append(0)
            out += bytes(1 if v is not missing else 0 for v in values)
            col = array("q", present)
            if _BIG_ENDIAN:
                col.byteswap()
            out += col.tobytes()
        elif all(type(v) is str for v in present):
            out.append(1)
            table: dict[str, int] = {}
            ids = array("I", bytes(0))
            append = ids.append
            for v in values:
                if v is missing:
                    append(0)
                    continue
                idx = table.get(v)
                if idx is None:
                    idx = len(table)
                    table[v] = idx
                append(idx + 1)
            if _BIG_ENDIAN:
                ids.byteswap()
            out += ids.tobytes()
            _append_blob(out, _dump_json(list(table)))
        else:
            out.append(2)
            out += bytes(1 if v is not missing else 0 for v in values)
            _append_blob(out, _dump_json([_jsonable(v) for v in present]))


_MISSING = object()


def _jsonable(value: Any) -> Any:
    """Coerce an argument value into a JSON-representable shape.

    Tuples become lists (their event equality already treats them as
    sequences only through ``.args`` dict comparisons on decode, and
    the text parsers never produce tuples).
    """
    if isinstance(value, tuple):
        return list(value)
    return value


def encode_batch(rows: Iterable[Row]) -> bytes:
    """Encode one batch of rows into a frame *payload* (no length prefix)."""
    rows = list(rows)
    out = bytearray()
    _write_uvarint(out, len(rows))
    if not rows:
        return bytes(out)
    names, argses, retvals, errnos, pids, comms, timestamps = map(list, zip(*rows))
    _encode_id_column(out, names)
    _encode_id_column(out, comms)
    _encode_scalar_column(out, retvals)
    _encode_scalar_column(out, errnos)
    _encode_scalar_column(out, pids)
    _encode_scalar_column(out, timestamps)
    _encode_arg_columns(out, argses)
    return bytes(out)


# -- column decoding ---------------------------------------------------------


def _i64_from(view: memoryview, count: int) -> array:
    col = array("q")
    col.frombytes(view[: count * 8])
    if _BIG_ENDIAN:
        col.byteswap()
    return col


def _u32_from(view: memoryview, count: int):
    col = array("I")
    if col.itemsize == 4:
        col.frombytes(view[: count * 4])
        if _BIG_ENDIAN:
            col.byteswap()
        return col
    # Exotic platform where unsigned int is not 32-bit: decode portably.
    raw = bytes(view[: count * 4])
    return [
        int.from_bytes(raw[i : i + 4], "little") for i in range(0, len(raw), 4)
    ]


def _take_blob(view: memoryview, pos: int) -> tuple[bytes, int]:
    length, pos = _read_uvarint(view, pos)
    if pos + length > len(view):
        raise RbtTruncatedError("frame ends inside a length-prefixed blob")
    return bytes(view[pos : pos + length]), pos + length


def _decode_scalar_column(view: memoryview, pos: int, n: int):
    if pos >= len(view):
        raise RbtTruncatedError("frame ends before a scalar column tag")
    tag = view[pos]
    pos += 1
    if tag == 0:
        if pos + n * 8 > len(view):
            raise RbtTruncatedError("frame ends inside an i64 column")
        return _i64_from(view[pos:], n), pos + n * 8
    if tag == 1:
        blob, pos = _take_blob(view, pos)
        values = json.loads(blob)
        if len(values) != n:
            raise RbtFormatError("JSON scalar column length mismatch")
        return values, pos
    raise RbtFormatError(f"unknown scalar column tag {tag}")


def _decode_id_column(view: memoryview, pos: int, n: int):
    if pos + n * 4 > len(view):
        raise RbtTruncatedError("frame ends inside an id column")
    ids = _u32_from(view[pos:], n)
    pos += n * 4
    blob, pos = _take_blob(view, pos)
    table = json.loads(blob)
    try:
        return [table[i] for i in ids], pos
    except IndexError:
        raise RbtFormatError("id column references past the string table") from None


class _IntArgFill:
    """Lazy filler for a packed-int argument column."""

    __slots__ = ("presence", "values")

    def __init__(self, presence: bytes, values) -> None:
        self.presence = presence
        self.values = values

    def __call__(self, key: str, argses: list) -> None:
        index = 0
        for i, flag in enumerate(self.presence):
            if flag:
                argses[i][key] = self.values[index]
                index += 1


class _StrArgFill:
    """Lazy filler for a dictionary-encoded string argument column."""

    __slots__ = ("ids", "table")

    def __init__(self, ids, table: list) -> None:
        self.ids = ids
        self.table = table

    def __call__(self, key: str, argses: list) -> None:
        table = self.table
        for i, idx in enumerate(self.ids):
            if idx:
                argses[i][key] = table[idx - 1]


class _ObjArgFill:
    """Lazy filler for a JSON-encoded argument column."""

    __slots__ = ("presence", "values")

    def __init__(self, presence: bytes, values: list) -> None:
        self.presence = presence
        self.values = values

    def __call__(self, key: str, argses: list) -> None:
        index = 0
        for i, flag in enumerate(self.presence):
            if flag:
                argses[i][key] = self.values[index]
                index += 1


def _decode_arg_columns(view: memoryview, pos: int, n: int):
    n_keys, pos = _read_uvarint(view, pos)
    cols = []
    for _ in range(n_keys):
        key_bytes, pos = _take_blob(view, pos)
        key = key_bytes.decode("utf-8")
        if pos >= len(view):
            raise RbtTruncatedError("frame ends before an argument column tag")
        tag = view[pos]
        pos += 1
        if tag == 0:
            if pos + n > len(view):
                raise RbtTruncatedError("frame ends inside a presence column")
            presence = bytes(view[pos : pos + n])
            pos += n
            count = sum(presence)
            if pos + count * 8 > len(view):
                raise RbtTruncatedError("frame ends inside an i64 arg column")
            values = _i64_from(view[pos:], count)
            pos += count * 8
            cols.append((key, _IntArgFill(presence, values)))
        elif tag == 1:
            if pos + n * 4 > len(view):
                raise RbtTruncatedError("frame ends inside a string arg column")
            ids = _u32_from(view[pos:], n)
            pos += n * 4
            blob, pos = _take_blob(view, pos)
            table = json.loads(blob)
            cols.append((key, _StrArgFill(ids, table)))
        elif tag == 2:
            if pos + n > len(view):
                raise RbtTruncatedError("frame ends inside a presence column")
            presence = bytes(view[pos : pos + n])
            pos += n
            blob, pos = _take_blob(view, pos)
            values = json.loads(blob)
            if len(values) != sum(presence):
                raise RbtFormatError("JSON arg column length mismatch")
            cols.append((key, _ObjArgFill(presence, values)))
        else:
            raise RbtFormatError(f"unknown argument column tag {tag}")
    return cols, pos


def decode_batch(payload: bytes) -> EventBatch:
    """Decode one frame payload into a columnar :class:`EventBatch`."""
    view = memoryview(payload)
    n, pos = _read_uvarint(view, 0)
    if n == 0:
        return EventBatch.from_rows([])
    names, pos = _decode_id_column(view, pos, n)
    comms, pos = _decode_id_column(view, pos, n)
    retvals, pos = _decode_scalar_column(view, pos, n)
    errnos, pos = _decode_scalar_column(view, pos, n)
    pids, pos = _decode_scalar_column(view, pos, n)
    timestamps, pos = _decode_scalar_column(view, pos, n)
    arg_cols, pos = _decode_arg_columns(view, pos, n)
    if pos != len(view):
        raise RbtFormatError("trailing bytes after the last frame column")
    return EventBatch.from_columns(
        names, None, retvals, errnos, pids, comms, timestamps, arg_cols=arg_cols
    )


# -- container writer --------------------------------------------------------


class RbtWriter:
    """Streams batches into an ``.rbt`` container.

    Args:
        sink: a binary file-like object.
        header: JSON-serializable metadata stored in the container
            header (``format`` is conventional; ``parse_stats`` carries
            the text-parse drop counters across the conversion).
    """

    def __init__(self, sink: BinaryIO, header: dict[str, Any] | None = None) -> None:
        self._sink = sink
        self.events_written = 0
        self.frames_written = 0
        prefix = bytearray(MAGIC)
        prefix.append(VERSION)
        _append_blob(prefix, _dump_json(header or {}))
        sink.write(bytes(prefix))

    def write_rows(self, rows: Iterable[Row]) -> int:
        """Encode *rows* as one frame; returns the events written."""
        payload = encode_batch(rows)
        count, _ = _read_uvarint(payload, 0)
        if count == 0:
            return 0
        frame = bytearray()
        _write_uvarint(frame, len(payload))
        self._sink.write(bytes(frame))
        self._sink.write(payload)
        self.events_written += count
        self.frames_written += 1
        return count

    def write_batch(self, batch: EventBatch) -> int:
        return self.write_rows(batch.rows())

    def close(self) -> None:
        """Write the explicit terminator frame."""
        self._sink.write(b"\x00")

    def __enter__(self) -> "RbtWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def encode_stream(
    batches: Iterable[EventBatch], header: dict[str, Any] | None = None
) -> bytes:
    """Encode *batches* into a complete in-memory ``.rbt`` container."""
    import io

    sink = io.BytesIO()
    with RbtWriter(sink, header) as writer:
        for batch in batches:
            writer.write_batch(batch)
    return sink.getvalue()


# -- container reader --------------------------------------------------------


class RbtDecoder:
    """Incremental ``.rbt`` decoder for network/streamed payloads.

    Feed arbitrary byte pieces; complete frames decode as they arrive.
    ``end()`` validates that the stream terminated cleanly.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._header: dict[str, Any] | None = None
        self._finished = False
        self.events_decoded = 0
        self.frames_decoded = 0

    @property
    def header(self) -> dict[str, Any] | None:
        """The container header, available once the prefix has arrived."""
        return self._header

    @property
    def finished(self) -> bool:
        """True once the terminator frame has been consumed."""
        return self._finished

    def feed(self, data: bytes) -> list[EventBatch]:
        """Consume *data*; return the batches completed by it."""
        if self._finished and data:
            raise RbtFormatError("bytes after the terminator frame")
        self._buffer += data
        batches: list[EventBatch] = []
        buf = self._buffer
        pos = 0
        if self._header is None:
            pos = self._try_header()
            if pos < 0:
                return batches
            buf = self._buffer
        while True:
            try:
                length, after = _read_uvarint(buf, pos)
            except RbtTruncatedError:
                break  # mid-varint: wait for more bytes
            if length == 0:
                self._finished = True
                if after != len(buf):
                    raise RbtFormatError("bytes after the terminator frame")
                pos = after
                break
            if after + length > len(buf):
                break  # incomplete frame: wait for more bytes
            batch = decode_batch(bytes(buf[after : after + length]))
            self.events_decoded += len(batch)
            self.frames_decoded += 1
            batches.append(batch)
            pos = after + length
        if pos:
            del self._buffer[:pos]
        return batches

    def _try_header(self) -> int:
        """Parse the magic/version/header prefix; -1 if incomplete."""
        buf = self._buffer
        if len(buf) < len(MAGIC) + 1:
            if bytes(buf[: len(MAGIC)]) != MAGIC[: len(buf)]:
                raise RbtFormatError("bad magic: not an .rbt stream")
            return -1
        if bytes(buf[: len(MAGIC)]) != MAGIC:
            raise RbtFormatError("bad magic: not an .rbt stream")
        version = buf[len(MAGIC)]
        if version != VERSION:
            raise RbtFormatError(f"unsupported .rbt version {version}")
        pos = len(MAGIC) + 1
        try:
            length, after = _read_uvarint(buf, pos)
        except RbtTruncatedError:
            return -1
        if after + length > len(buf):
            return -1
        try:
            header = json.loads(bytes(buf[after : after + length]))
        except ValueError:
            raise RbtFormatError("container header is not valid JSON") from None
        if not isinstance(header, dict):
            raise RbtFormatError("container header must be a JSON object")
        self._header = header
        return after + length

    def end(self) -> None:
        """Assert the stream ended exactly at the terminator."""
        if self._header is None:
            raise RbtTruncatedError("stream ended inside the container header")
        if not self._finished:
            raise RbtTruncatedError("stream ended before the terminator frame")
        if self._buffer:
            raise RbtFormatError("bytes after the terminator frame")


class RbtReader:
    """Reads an ``.rbt`` file; iterating yields :class:`EventBatch`es."""

    #: Bytes per read while streaming frames off disk.
    READ_SIZE = 1 << 20

    def __init__(self, path: str) -> None:
        self.path = path
        self._decoder = RbtDecoder()
        self._header: dict[str, Any] | None = None

    @property
    def header(self) -> dict[str, Any]:
        if self._header is None:
            decoder = RbtDecoder()
            with open(self.path, "rb") as handle:
                while decoder.header is None:
                    piece = handle.read(4096)
                    if not piece:
                        decoder.end()  # raises RbtTruncatedError
                    decoder.feed(piece)
            self._header = decoder.header
        return self._header

    def __iter__(self) -> Iterator[EventBatch]:
        decoder = RbtDecoder()
        with open(self.path, "rb") as handle:
            while True:
                piece = handle.read(self.READ_SIZE)
                if not piece:
                    break
                yield from decoder.feed(piece)
        decoder.end()
        self._header = decoder.header


def iter_rbt_batches(path: str) -> Iterator[EventBatch]:
    """Stream decoded batches from an ``.rbt`` file."""
    return iter(RbtReader(path))


def read_rbt_header(path: str) -> dict[str, Any]:
    """Read just the container header of an ``.rbt`` file."""
    return RbtReader(path).header


def read_rbt_events(path: str):
    """Materialize every event in an ``.rbt`` file (compat/test shim)."""
    events = []
    for batch in iter_rbt_batches(path):
        events.extend(batch.iter_events())
    return events


# -- text -> binary conversion ----------------------------------------------


def convert_file(
    src: str,
    dst: str,
    fmt: str,
    *,
    chunk_chars: int = DEFAULT_CHUNK_CHARS,
    frame_events: int = DEFAULT_FRAME_EVENTS,
    extra_header: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Convert a text trace at *src* into an ``.rbt`` file at *dst*.

    Returns the conversion summary (event/frame counts plus the text
    parser's drop counters, which are also stored in the container
    header so later analyses can surface them).
    """
    parser = make_batch_parser(fmt)
    pending: list[Row] = []
    events = 0
    with open(dst, "wb") as sink:
        header: dict[str, Any] = {"format": fmt, "source": src}
        header.update(extra_header or {})
        # Parse stats are only final once the whole text is read, and
        # they belong in the header, so frames are staged in memory and
        # written after the prefix (encoded frames are smaller than the
        # text they replace).
        frames: list[bytes] = []
        for chunk in _read_chunks(src, chunk_chars):
            pending.extend(parser.parse_chunk(chunk))
            while len(pending) >= frame_events:
                frames.append(encode_batch(pending[:frame_events]))
                events += frame_events
                del pending[:frame_events]
        if pending:
            frames.append(encode_batch(pending))
            events += len(pending)
            pending = []
        header["parse_stats"] = parser.stats()
        header["events"] = events
        writer_prefix = bytearray(MAGIC)
        writer_prefix.append(VERSION)
        _append_blob(writer_prefix, _dump_json(header))
        sink.write(bytes(writer_prefix))
        for payload in frames:
            frame = bytearray()
            _write_uvarint(frame, len(payload))
            sink.write(bytes(frame))
            sink.write(payload)
        sink.write(b"\x00")
    return {
        "format": fmt,
        "events": events,
        "frames": len(frames),
        "parse_stats": parser.stats(),
    }
