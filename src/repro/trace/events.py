"""Syscall trace event model.

A :class:`SyscallEvent` is the unit of information IOCov consumes: one
record per syscall invocation carrying the syscall name, its arguments,
and its outcome.  The schema deliberately matches what LTTng's syscall
tracepoints provide (entry arguments + exit return value), flattened
into a single record the way the IOCov prototype's analyzer sees them.

This module has no dependency on the VFS so that trace parsing and
analysis can run on externally captured traces without pulling in the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping


@dataclass(frozen=True)
class SyscallEvent:
    """One traced syscall invocation.

    Attributes:
        name: the syscall name as the kernel exposes it (variant names
            preserved: ``openat``, ``pwrite64``, …).
        args: argument name -> value.  Values are ints, strings
            (paths, xattr names), or lists of ints (iovec lengths).
            Buffer *contents* are never recorded, matching LTTng.
        retval: raw kernel return value (negative errno on failure).
        errno: positive errno on failure, 0 on success (redundant with
            retval but convenient).
        pid: issuing process id.
        comm: issuing process name (LTTng records this per event).
        timestamp: monotonic event time in nanoseconds.
    """

    name: str
    args: Mapping[str, Any]
    retval: int
    errno: int = 0
    pid: int = 0
    comm: str = ""
    timestamp: int = 0

    @property
    def ok(self) -> bool:
        """Whether the syscall succeeded (retval >= 0)."""
        return self.retval >= 0

    def arg(self, name: str, default: Any = None) -> Any:
        """Fetch one argument by name, with a default."""
        return self.args.get(name, default)

    def paths(self) -> Iterator[str]:
        """Yield every string-valued argument that looks like a path.

        Used by the trace filter to decide whether the event touches
        the tester's mount point.
        """
        for key, value in self.args.items():
            if isinstance(value, str) and key in ("path", "pathname", "oldpath", "newpath", "target"):
                yield value


def make_event(
    name: str,
    args: Mapping[str, Any],
    retval: int,
    errno: int = 0,
    *,
    pid: int = 0,
    comm: str = "",
    timestamp: int = 0,
) -> SyscallEvent:
    """Construct a :class:`SyscallEvent` with a defensive args copy."""
    return SyscallEvent(
        name=name,
        args=dict(args),
        retval=retval,
        errno=errno,
        pid=pid,
        comm=comm,
        timestamp=timestamp,
    )
