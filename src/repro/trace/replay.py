"""Trace replay: re-execute a captured trace against a live VFS.

The paper traces testers with LTTng partly because the same group's
Re-Animator work (Akgun et al., SYSTOR '20) showed such traces can be
*replayed* with high fidelity.  This module is the replay half: feed a
parsed trace (live events, LTTng text, or strace) to
:class:`TraceReplayer` and it re-issues every syscall against a target
:class:`~repro.vfs.syscalls.SyscallInterface`, reporting where the
replayed outcome diverges from the recorded one.

Uses:

* validate that a trace is self-consistent (replaying a recorder's own
  trace onto a fresh FS must reproduce every outcome);
* port a captured workload onto a differently configured FS and see
  which outcomes change (a poor-man's differential test from a trace);
* turn an external strace capture into a living workload for the
  simulated suites.

File descriptors are remapped (the replay target hands out its own fd
numbers); write payloads are reconstructed as zero-fill of the recorded
count, since traces do not carry data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.trace.events import SyscallEvent

if TYPE_CHECKING:  # circular at runtime: vfs.syscalls emits trace events
    from repro.vfs.syscalls import SyscallInterface, SyscallResult


@dataclass
class ReplayDivergence:
    """One event whose replayed outcome differs from the recording."""

    index: int
    event: SyscallEvent
    replay_retval: int
    replay_errno: int

    def describe(self) -> str:
        return (
            f"#{self.index} {self.event.name}: recorded "
            f"(ret={self.event.retval}, errno={self.event.errno}) vs replayed "
            f"(ret={self.replay_retval}, errno={self.replay_errno})"
        )


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    replayed: int = 0
    skipped: int = 0
    divergences: list[ReplayDivergence] = field(default_factory=list)

    @property
    def faithful(self) -> bool:
        return not self.divergences

    def render_text(self) -> str:
        lines = [
            f"replayed {self.replayed} events"
            f" ({self.skipped} skipped, {len(self.divergences)} divergent)"
        ]
        lines.extend("  " + d.describe() for d in self.divergences[:20])
        return "\n".join(lines)


#: Syscalls whose success retval is an fd (compared by ok-ness only).
_FD_RETURNING = frozenset({"open", "openat", "openat2", "creat"})


class TraceReplayer:
    """Re-executes trace events against a target interface."""

    def __init__(self, target: SyscallInterface) -> None:
        self.target = target
        #: recorded fd -> replay fd
        self._fd_map: dict[int, int] = {}
        self._handlers: dict[str, Callable[[SyscallEvent], SyscallResult | None]] = {
            "open": self._replay_open,
            "openat": self._replay_open,
            "openat2": self._replay_open,
            "creat": self._replay_open,
            "close": self._replay_close,
            "read": self._replay_read,
            "pread64": self._replay_read,
            "readv": self._replay_readv,
            "write": self._replay_write,
            "pwrite64": self._replay_write,
            "writev": self._replay_writev,
            "lseek": self._replay_lseek,
            "truncate": lambda e: self.target.truncate(
                e.arg("path") or e.arg("pathname"), e.arg("length", 0)
            ),
            "ftruncate": lambda e: self.target.ftruncate(
                self._fd(e.arg("fd")), e.arg("length", 0)
            ),
            "mkdir": lambda e: self.target.mkdir(
                e.arg("pathname"), e.arg("mode", 0o755)
            ),
            "mkdirat": lambda e: self.target.mkdir(
                e.arg("pathname"), e.arg("mode", 0o755)
            ),
            "chmod": lambda e: self.target.chmod(e.arg("pathname"), e.arg("mode", 0)),
            "fchmod": lambda e: self.target.fchmod(
                self._fd(e.arg("fd")), e.arg("mode", 0)
            ),
            "fchmodat": lambda e: self.target.fchmodat(
                -100, e.arg("pathname"), e.arg("mode", 0), e.arg("flags", 0)
            ),
            "chdir": lambda e: self.target.chdir(e.arg("filename")),
            "fchdir": lambda e: self.target.fchdir(self._fd(e.arg("fd"))),
            "setxattr": self._replay_setxattr,
            "lsetxattr": self._replay_setxattr,
            "fsetxattr": self._replay_fsetxattr,
            "getxattr": lambda e: self.target.getxattr(
                e.arg("pathname"), e.arg("name", ""), e.arg("size", 0)
            ),
            "lgetxattr": lambda e: self.target.lgetxattr(
                e.arg("pathname"), e.arg("name", ""), e.arg("size", 0)
            ),
            "fgetxattr": lambda e: self.target.fgetxattr(
                self._fd(e.arg("fd")), e.arg("name", ""), e.arg("size", 0)
            ),
            "unlink": lambda e: self.target.unlink(e.arg("pathname")),
            "rmdir": lambda e: self.target.rmdir(e.arg("pathname")),
            "rename": lambda e: self.target.rename(
                e.arg("oldpath"), e.arg("newpath")
            ),
            "link": lambda e: self.target.link(e.arg("oldpath"), e.arg("newpath")),
            "symlink": lambda e: self.target.symlink(
                e.arg("target", ""), e.arg("linkpath")
            ),
            "stat": lambda e: self.target.stat(e.arg("pathname")),
            "lstat": lambda e: self.target.lstat(e.arg("pathname")),
            "fstat": lambda e: self.target.fstat(self._fd(e.arg("fd"))),
            "access": lambda e: self.target.access(e.arg("pathname"), e.arg("mode", 0)),
            "statfs": lambda e: self.target.statfs(e.arg("pathname")),
            "fsync": lambda e: self.target.fsync(self._fd(e.arg("fd"))),
            "fdatasync": lambda e: self.target.fdatasync(self._fd(e.arg("fd"))),
            "sync": lambda e: self.target.sync(),
        }

    # -- fd translation ------------------------------------------------------

    def _fd(self, recorded_fd: Any) -> int:
        if isinstance(recorded_fd, int):
            return self._fd_map.get(recorded_fd, recorded_fd)
        return -1

    # -- per-family handlers ------------------------------------------------------

    def _replay_open(self, event: SyscallEvent) -> SyscallResult:
        result = self.target.open(
            event.arg("pathname"),
            event.arg("flags", 0) or 0,
            event.arg("mode", 0o644) or 0o644,
        )
        if event.ok and result.ok:
            self._fd_map[event.retval] = result.retval
        return result

    def _replay_close(self, event: SyscallEvent) -> SyscallResult:
        recorded = event.arg("fd")
        result = self.target.close(self._fd(recorded))
        if isinstance(recorded, int):
            self._fd_map.pop(recorded, None)
        return result

    def _replay_read(self, event: SyscallEvent) -> SyscallResult:
        fd = self._fd(event.arg("fd"))
        count = event.arg("count", 0) or 0
        if "pos" in event.args:
            return self.target.pread64(fd, count, event.arg("pos", 0))
        return self.target.read(fd, count)

    def _replay_readv(self, event: SyscallEvent) -> SyscallResult:
        fd = self._fd(event.arg("fd"))
        count = event.arg("count", 0) or 0
        vlen = max(1, event.arg("vlen", 1) or 1)
        base = count // vlen
        lens = [base] * vlen
        lens[-1] += count - base * vlen
        return self.target.readv(fd, lens)

    def _replay_write(self, event: SyscallEvent) -> SyscallResult:
        fd = self._fd(event.arg("fd"))
        count = event.arg("count", 0) or 0
        if "pos" in event.args:
            return self.target.pwrite64(fd, count=count, offset=event.arg("pos", 0))
        return self.target.write(fd, count=count)

    def _replay_writev(self, event: SyscallEvent) -> SyscallResult:
        fd = self._fd(event.arg("fd"))
        count = event.arg("count", 0) or 0
        vlen = max(1, event.arg("vlen", 1) or 1)
        base = count // vlen
        sizes = [base] * vlen
        sizes[-1] += count - base * vlen
        return self.target.writev(fd, [b"\0" * size for size in sizes])

    def _replay_lseek(self, event: SyscallEvent) -> SyscallResult:
        return self.target.lseek(
            self._fd(event.arg("fd")),
            event.arg("offset", 0) or 0,
            event.arg("whence", 0) or 0,
        )

    def _replay_setxattr(self, event: SyscallEvent) -> SyscallResult:
        size = event.arg("size", 0) or 0
        method = getattr(self.target, event.name)
        return method(event.arg("pathname"), event.arg("name", ""), b"", size=size)

    def _replay_fsetxattr(self, event: SyscallEvent) -> SyscallResult:
        size = event.arg("size", 0) or 0
        return self.target.fsetxattr(
            self._fd(event.arg("fd")), event.arg("name", ""), b"", size=size
        )

    # -- comparison ------------------------------------------------------------

    @staticmethod
    def _matches(event: SyscallEvent, result: SyscallResult) -> bool:
        if event.name in _FD_RETURNING:
            # fd numbering is environment-specific: compare outcome only.
            return event.ok == result.ok and event.errno == result.errno
        return event.retval == result.retval and event.errno == result.errno

    # -- entry point ------------------------------------------------------------

    def replay(self, events: Iterable[SyscallEvent]) -> ReplayReport:
        """Re-execute *events* in order; report fidelity."""
        report = ReplayReport()
        for index, event in enumerate(events):
            handler = self._handlers.get(event.name)
            if handler is None:
                report.skipped += 1
                continue
            result = handler(event)
            report.replayed += 1
            if result is not None and not self._matches(event, result):
                report.divergences.append(
                    ReplayDivergence(
                        index=index,
                        event=event,
                        replay_retval=result.retval,
                        replay_errno=result.errno,
                    )
                )
        return report
