"""Syzkaller program-log parser (the paper's future-work ingestion path).

Syzkaller does not trace syscalls; it *logs the programs it executes*
in its declarative syntax::

    r0 = openat(0xffffffffffffff9c, &(0x7f0000000040)='./file0\\x00', 0x42, 0x1ff)
    write(r0, &(0x7f0000000080)="616263", 0x3)
    close(r0)

The paper notes that evaluating fuzzers requires parsing these
descriptions rather than using LTTng.  This module implements that
parser: each program line becomes a :class:`SyscallEvent` whose
arguments are decoded (pointer-to-string arguments become the string,
resource identifiers like ``r0`` become small placeholder fds, hex
constants become ints).

Limitation, inherent to the source: syzkaller logs record *inputs
only* — there is no return value — so events carry ``retval=0`` and
are useful for **input coverage** but contribute nothing to output
coverage.  The analyzer handles this by simply seeing only successful
outputs from such traces.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Iterator, Mapping

from repro.trace.events import SyscallEvent, make_event
from repro.trace.strace import SYSCALL_SIGNATURES
from repro.vfs import constants

#: (kept as a plain string so the batch parser can recompile it in
#: multiline chunk mode; group order: res, name, args)
_CALL_PATTERN = r"^(?:(?P<res>r\d+)\s*=\s*)?(?P<name>\w+)\$?\w*\((?P<args>.*)\)\s*$"
_CALL_RE = re.compile(_CALL_PATTERN)

#: syzkaller renders AT_FDCWD as the 64-bit two's complement constant.
_AT_FDCWD_U64 = 0xFFFFFFFFFFFFFF9C

_STRING_PTR_RE = re.compile(r"&\(0x[0-9a-f]+\)\s*=?\s*'(?P<s>[^']*)'")
_HEXDATA_PTR_RE = re.compile(r'&\(0x[0-9a-f]+\)\s*=?\s*"(?P<h>[0-9a-fA-F]*)"')


def _split_args(text: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    escaped = False
    for char in text:
        if quote:
            current.append(char)
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current.append(char)
        elif char in "([{":
            depth += 1
            current.append(char)
        elif char in ")]}":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class SyzkallerParser:
    """Parses syzkaller reproducer/log programs into input-only events.

    Args:
        resources: initial resource table (``r0`` -> placeholder fd),
            used by the sharded executor to resume parsing mid-file
            with the bindings earlier shards established.  The
            placeholder allocator continues from the table's size, so
            a resumed parse assigns the same fds a sequential parse
            would.
    """

    def __init__(self, resources: Mapping[str, int] | None = None) -> None:
        self.skipped_lines = 0
        #: lines the program grammar rejected (for syzkaller every
        #: skipped line is a grammar reject: comments and blanks
        #: return None without counting).
        self.malformed_lines = 0
        #: resource name (r0) -> placeholder fd value
        self._resources: dict[str, int] = dict(resources or {})

    def _decode_arg(self, token: str) -> Any:
        token = token.strip()
        if not token:
            return None
        if token in self._resources:
            return self._resources[token]
        match = _STRING_PTR_RE.search(token)
        if match:
            return match["s"].replace("\\x00", "").replace("\x00", "")
        match = _HEXDATA_PTR_RE.search(token)
        if match:
            # A data buffer: only its length matters for coverage.
            return len(match["h"]) // 2
        if token.startswith("&("):
            return None  # opaque pointer (struct) — not coverage-tracked
        if token == "nil":
            return None
        try:
            value = int(token, 0)
        except ValueError:
            return token
        if value == _AT_FDCWD_U64:
            return constants.AT_FDCWD
        return value

    def parse_line(self, line: str) -> SyscallEvent | None:
        line = line.split("#", 1)[0].strip()
        if not line:
            return None
        match = _CALL_RE.match(line)
        if match is None:
            self.skipped_lines += 1
            self.malformed_lines += 1
            return None
        name = match["name"]
        tokens = _split_args(match["args"])
        signature = SYSCALL_SIGNATURES.get(name)
        args: dict[str, Any] = {}
        for index, token in enumerate(tokens):
            key = (
                signature[index]
                if signature and index < len(signature)
                else f"arg{index}"
            )
            args[key] = self._decode_arg(token)
        args.pop("buf", None)
        args.pop("vec", None)
        if match["res"]:
            # The program binds the result to a resource; hand out a
            # deterministic placeholder fd for later references.
            fd = 3 + len(self._resources)
            self._resources[match["res"]] = fd
        return make_event(name, args, 0, 0)

    def parse(self, lines: Iterable[str]) -> Iterator[SyscallEvent]:
        for line in lines:
            event = self.parse_line(line)
            if event is not None:
                yield event

    def parse_text(self, text: str) -> list[SyscallEvent]:
        return list(self.parse(text.splitlines()))

    def iter_parse_file(self, path: str) -> Iterator[SyscallEvent]:
        """Stream events from disk without materializing the trace."""
        with open(path, encoding="utf-8") as handle:
            yield from self.parse(handle)

    def parse_file(self, path: str) -> list[SyscallEvent]:
        return list(self.iter_parse_file(path))


def scan_resource_bindings(line: str, resources: dict[str, int]) -> None:
    """Apply one line's resource binding (if any) to *resources*.

    The cheap sequential pre-scan the sharded executor runs to give
    each shard the exact resource table a sequential parse would have
    at its start line.  Mirrors :meth:`SyzkallerParser.parse_line`'s
    binding rule precisely: a full call match with an ``rN =`` prefix
    allocates placeholder fd ``3 + len(resources)``.
    """
    line = line.split("#", 1)[0].strip()
    if not line:
        return
    match = _CALL_RE.match(line)
    if match is not None and match["res"]:
        resources[match["res"]] = 3 + len(resources)
