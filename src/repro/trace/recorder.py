"""In-memory trace recorder: the LTTng equivalent for the simulated VFS.

LTTng attaches to kernel tracepoints and streams syscall records to a
consumer.  Here, :class:`TraceRecorder` subscribes to a
:class:`~repro.vfs.syscalls.SyscallInterface` and accumulates
:class:`~repro.trace.events.SyscallEvent` records.  The recorder is
deliberately dumb — no filtering, no interpretation — because in the
paper's architecture filtering and analysis belong to IOCov, not the
tracer.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.trace.events import SyscallEvent


class TraceRecorder:
    """Accumulates syscall events from one or more traced interfaces."""

    def __init__(self) -> None:
        self._events: list[SyscallEvent] = []
        self._attached: list[object] = []
        self.enabled = True

    # -- collection ----------------------------------------------------------

    def __call__(self, event: SyscallEvent) -> None:
        """Listener entry point (subscribe this object directly)."""
        if self.enabled:
            self._events.append(event)

    def attach(self, interface) -> None:
        """Start tracing a :class:`SyscallInterface`."""
        interface.subscribe(self)
        self._attached.append(interface)

    def detach_all(self) -> None:
        """Stop tracing every attached interface."""
        for interface in self._attached:
            interface.unsubscribe(self)
        self._attached.clear()

    def pause(self) -> None:
        self.enabled = False

    def resume(self) -> None:
        self.enabled = True

    # -- access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SyscallEvent]:
        return iter(self._events)

    def iter_events(self) -> Iterator[SyscallEvent]:
        """Zero-copy iterator over the recorded events, arrival order.

        Do not record into this object while iterating — appending
        during iteration is undefined, exactly as for a plain list.
        """
        return iter(self._events)

    @property
    def events(self) -> list[SyscallEvent]:
        """A **copy** of the recorded events, in arrival order.

        Each access copies the full list so callers can mutate or keep
        the result while recording continues.  For read-only traversal
        prefer iterating the recorder itself (or :meth:`iter_events`),
        which is zero-copy; to take ownership of the buffer without
        copying, use :meth:`drain`.
        """
        return list(self._events)

    def drain(self) -> list[SyscallEvent]:
        """Hand over the internal event buffer without copying.

        The recorder starts over with an empty buffer; the returned
        list is owned by the caller.
        """
        events = self._events
        self._events = []
        return events

    def clear(self) -> None:
        self._events.clear()

    def extend(self, events: Iterable[SyscallEvent]) -> None:
        """Append externally produced events (e.g. from a parsed file)."""
        self._events.extend(events)
