"""Batch-columnar trace parsing: chunk-at-a-time instead of line-at-a-time.

The per-line parsers build one :class:`~repro.trace.events.SyscallEvent`
object per record, which caps text ingest nearly an order of magnitude
below the analyzer's counting throughput.  This module closes that gap
by working on **event batches**:

* :class:`EventBatch` holds a block of parsed events either as compact
  rows (one tuple per event — what the text parsers produce) or as
  parallel columns (what the binary ``.rbt`` decoder produces, see
  :mod:`repro.trace.binary`).  Both views iterate identically.
* :class:`LttngBatchParser` / :class:`StraceBatchParser` /
  :class:`SyzkallerBatchParser` parse whole text chunks with one
  multiline ``findall`` over a strict precompiled grammar, falling back
  to the existing per-line parsers for any chunk that contains lines
  the strict grammar declines.  The fallback makes every batch parse
  *equal by construction* to the sequential per-line parse of the same
  text: the fast path can only decline, never disagree.

Throughput notes: the chunk grammars validate all structure inside the
regex engine (one C call per chunk), field/argument parsing is memoized
on the part strings that repeat across a trace (``flags = 577``,
``AT_FDCWD``), and each event costs one tuple append instead of a
dataclass construction.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Iterator

from repro.trace.events import SyscallEvent, make_event
from repro.trace.lttng import (
    LttngParser,
    _WRITER_RE_M,
    _fast_fields,
    _ts_ns,
)
from repro.trace.strace import (
    _CALL_PATTERN as _STRACE_PATTERN,
    _CALL_RE as _STRACE_RE,
    _parse_arg,
    _split_args,
    StraceParser,
    SYSCALL_SIGNATURES,
)
from repro.trace.syzkaller import (
    _CALL_PATTERN as _SYZ_PATTERN,
    _split_args as _syz_split_args,
    SyzkallerParser,
)
from repro.vfs.errors import ERRNO_BY_NAME

#: Target text-chunk size for file batch readers (characters).
DEFAULT_CHUNK_CHARS = 1 << 20

#: One parsed event as the batch parsers carry it.
Row = tuple  # (name, args, retval, errno, pid, comm, timestamp)

_ROW_FIELDS = ("name", "args", "retval", "errno", "pid", "comm", "timestamp")

_MISS = object()

#: Shared decimal-token -> int memo (pids, retvals repeat heavily).
_INT_CACHE: dict[str, int] = {}
_INT_CACHE_CAP = 65536


def _cached_int(text: str) -> int:
    value = _INT_CACHE.get(text)
    if value is None:
        value = int(text)
        if len(_INT_CACHE) < _INT_CACHE_CAP:
            _INT_CACHE[text] = value
    return value


def make_parse_stats(
    fmt: str, skipped: int, malformed: int, unpaired: int
) -> dict[str, Any]:
    """Fixed-key-order parse statistics (serial/sharded byte parity)."""
    return {
        "format": fmt,
        "skipped_lines": skipped,
        "malformed_lines": malformed,
        "unpaired_entries": unpaired,
    }


class EventBatch:
    """A block of parsed syscall events.

    Storage is one of two interchangeable forms:

    * **rows** — a list of ``(name, args, retval, errno, pid, comm,
      timestamp)`` tuples.  The text batch parsers produce this: one
      append per event, no object construction.
    * **columns** — parallel sequences per field (numeric fields as
      ``array('q')`` where they fit), with syscall args held as
      per-key columns.  The binary decoder produces this without any
      per-event Python work; argument dicts are materialized lazily
      the first time rows are requested.
    """

    __slots__ = ("_rows", "_cols", "_arg_cols")

    def __init__(self, rows=None, cols=None, arg_cols=None) -> None:
        self._rows = rows
        #: (names, argses, retvals, errnos, pids, comms, timestamps)
        self._cols = cols
        self._arg_cols = arg_cols

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: list[Row]) -> "EventBatch":
        return cls(rows=rows)

    @classmethod
    def from_events(cls, events: Iterable[SyscallEvent]) -> "EventBatch":
        return cls(
            rows=[
                (e.name, e.args, e.retval, e.errno, e.pid, e.comm, e.timestamp)
                for e in events
            ]
        )

    @classmethod
    def from_columns(
        cls, names, argses, retvals, errnos, pids, comms, timestamps, arg_cols=None
    ) -> "EventBatch":
        """Columnar constructor (binary decode path).

        *argses* may be None when *arg_cols* (the per-key columns, see
        :mod:`repro.trace.binary`) is given; dicts are then built
        lazily on first row access.
        """
        return cls(
            cols=[names, argses, retvals, errnos, pids, comms, timestamps],
            arg_cols=arg_cols,
        )

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return len(self._cols[0])

    def _materialize_args(self) -> list:
        cols = self._cols
        if cols[1] is None:
            n = len(cols[0])
            argses = [dict() for _ in range(n)]
            for key, fill in self._arg_cols:
                fill(key, argses)
            cols[1] = argses
        return cols[1]

    def rows(self) -> list[Row]:
        """The batch as row tuples (materialized once for columns)."""
        if self._rows is None:
            names, _, retvals, errnos, pids, comms, timestamps = self._cols
            self._rows = list(
                zip(names, self._materialize_args(), retvals, errnos, pids, comms, timestamps)
            )
        return self._rows

    def iter_rows(self) -> Iterator[Row]:
        if self._rows is not None:
            return iter(self._rows)
        names, _, retvals, errnos, pids, comms, timestamps = self._cols
        return zip(names, self._materialize_args(), retvals, errnos, pids, comms, timestamps)

    def iter_events(self) -> Iterator[SyscallEvent]:
        """Yield one :class:`SyscallEvent` per row (compat shim)."""
        for name, args, retval, errno, pid, comm, timestamp in self.iter_rows():
            yield make_event(
                name, args, retval, errno, pid=pid, comm=comm, timestamp=timestamp
            )

    def to_events(self) -> list[SyscallEvent]:
        return list(self.iter_events())

    def event_at(self, index: int) -> SyscallEvent:
        name, args, retval, errno, pid, comm, timestamp = self.rows()[index]
        return make_event(
            name, args, retval, errno, pid=pid, comm=comm, timestamp=timestamp
        )


def _read_chunks(path: str, chunk_chars: int) -> Iterator[str]:
    """Yield newline-aligned text chunks of roughly *chunk_chars*."""
    with open(path, encoding="utf-8") as handle:
        while True:
            chunk = handle.read(chunk_chars)
            if not chunk:
                return
            if chunk[-1] != "\n":
                chunk += handle.readline()
            yield chunk


def _line_count(chunk: str) -> int:
    lines = chunk.count("\n")
    if chunk and not chunk.endswith("\n"):
        lines += 1
    return lines


class LttngBatchParser:
    """Chunk-mode LTTng text parsing into :class:`EventBatch` rows.

    Equivalent to ``LttngParser().parse(...)`` on the same lines: same
    FIFO entry/exit pairing per (pid, name), same orphan-exit skipping,
    same skipped/malformed accounting.  The pairing table lives on the
    instance so pairs may span chunk boundaries.
    """

    format = "lttng"

    def __init__(self) -> None:
        #: per-line fallback (and the skipped/malformed counters for
        #: lines the strict grammar declines).
        self._parser = LttngParser()
        self._pending: dict[tuple[int, str], list] = {}
        self.orphan_exits = 0
        self.events_parsed = 0

    # -- counters ------------------------------------------------------------

    @property
    def skipped_lines(self) -> int:
        """Matches ``LttngParser.parse``: rejects plus orphan exits."""
        return self._parser.skipped_lines + self.orphan_exits

    @property
    def malformed_lines(self) -> int:
        return self._parser.malformed_lines

    @property
    def unpaired_entries(self) -> int:
        """Entry lines still awaiting their exits."""
        return sum(len(queue) for queue in self._pending.values())

    def stats(self) -> dict[str, Any]:
        return make_parse_stats(
            self.format, self.skipped_lines, self.malformed_lines, self.unpaired_entries
        )

    # -- parsing -------------------------------------------------------------

    def parse_chunk(self, chunk: str) -> list[Row]:
        """Parse one newline-aligned text chunk into rows."""
        matches = _WRITER_RE_M.findall(chunk)
        if len(matches) == _line_count(chunk):
            rows = self._consume_matches(matches)
            if rows is not None:
                self.events_parsed += len(rows)
                return rows
        rows = self._consume_lines(chunk.splitlines())
        self.events_parsed += len(rows)
        return rows

    def parse_lines(self, lines: Iterable[str]) -> list[Row]:
        rows = self._consume_lines(lines)
        self.events_parsed += len(rows)
        return rows

    def iter_file_batches(
        self, path: str, chunk_chars: int = DEFAULT_CHUNK_CHARS
    ) -> Iterator[EventBatch]:
        for chunk in _read_chunks(path, chunk_chars):
            rows = self.parse_chunk(chunk)
            if rows:
                yield EventBatch.from_rows(rows)

    def _consume_matches(self, matches: list[tuple]) -> list[Row] | None:
        """Fast path over findall tuples; None means redo per-line.

        Pairing state mutates as matches are consumed, so the pending
        table is snapshotted up front and restored on decline.
        """
        pending = self._pending
        snapshot = {key: list(queue) for key, queue in pending.items()}
        orphans_before = self.orphan_exits
        rows: list[Row] = []
        append = rows.append
        ts_ns = _ts_ns
        cached_int = _cached_int
        fast_fields = _fast_fields
        for ts, nsf, xname, xcomm, xpid, xret, ename, ecomm, epid, body in matches:
            if xname:
                # Exit line: ret was captured by the grammar.
                key = (cached_int(xpid), xname)
                queue = pending.get(key)
                if not queue:
                    # Exit without entry: trace started mid-call; the
                    # sequential parser skips it too.
                    self.orphan_exits += 1
                    continue
                entry_ns, entry_comm, fields = queue.pop(0)
                ret = cached_int(xret)
                append(
                    (
                        xname,
                        fields,
                        ret,
                        -ret if ret < 0 else 0,
                        key[0],
                        entry_comm or xcomm,
                        entry_ns,
                    )
                )
            else:
                if "{" in body or "}" in body or "\\" in body:
                    fields = None
                else:
                    fields = fast_fields(body)
                if fields is None:
                    # Odd field block: the permissive grammar must
                    # decide what this chunk means.
                    self._pending = snapshot
                    self.orphan_exits = orphans_before
                    return None
                key = (cached_int(epid), ename)
                queue = pending.get(key)
                entry = (ts_ns(ts) + int(nsf), ecomm, fields)
                if queue is None:
                    pending[key] = [entry]
                else:
                    queue.append(entry)
        return rows

    def _consume_lines(self, lines: Iterable[str]) -> list[Row]:
        """Per-line fallback sharing the pairing table and counters."""
        rows: list[Row] = []
        parser = self._parser
        pending = self._pending
        for line in lines:
            parsed = parser.parse_line(line)
            if parsed is None:
                continue
            kind, name, ns, pid, comm, fields = parsed
            key = (pid, name)
            if kind == "entry":
                pending.setdefault(key, []).append((ns, comm, fields))
                continue
            queue = pending.get(key)
            if not queue:
                self.orphan_exits += 1
                continue
            entry_ns, entry_comm, args = queue.pop(0)
            ret = int(fields.get("ret", 0))
            rows.append(
                (name, args, ret, -ret if ret < 0 else 0, pid, entry_comm or comm, entry_ns)
            )
        return rows


#: Chunk-mode variants of the per-line grammars.
_STRACE_RE_M = re.compile("(?m)" + _STRACE_PATTERN)
_SYZ_RE_M = re.compile("(?m)" + _SYZ_PATTERN)

#: Argument keys the per-line parsers drop (buffer contents are not
#: coverage-relevant).
_STRACE_DROP_KEYS = frozenset({"buf", "statbuf", "vec"})
_SYZ_DROP_KEYS = frozenset({"buf", "vec"})

#: Positional fallback names, preallocated for the common arities.
_ARGN = tuple(f"arg{i}" for i in range(16))

#: strace argument-token -> parsed value memo (flag expressions,
#: AT_FDCWD, fds and modes repeat; values are immutable).
_STRACE_ARG_CACHE: dict[str, Any] = {}
_ARG_CACHE_CAP = 16384

#: Tokens in one strace argument list: maximal runs of quoted strings
#: and non-comma text.  When joining the tokens back with "," exactly
#: reconstructs the argument text, the token boundaries provably sit at
#: top-level commas and the fast split equals `_split_args`.
_STRACE_TOKEN_RE = re.compile(r'(?:"(?:[^"\\]|\\.)*"|[^",])+|"')
#: Any bracket (opener *or* closer: a stray closer changes the
#: char-loop splitter's depth) routes to the char-loop splitter.
_BRACKET_RE = re.compile(r"[()\[\]{}]")

#: Same reconstruction trick for syzkaller, with single-level bracket
#: groups allowed (pointer arguments carry parens) and escape-aware
#: quoted strings matching the char-loop splitter's escape handling.
_SYZ_TOKEN_RE = re.compile(
    r"(?:'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\""
    r"|\([^()]*\)|\[[^][]*\]|\{[^{}]*\}|[^,'\"()\[\]{}])+"
)


def _fast_split_strace(text: str) -> list[str]:
    if not text:
        return []
    if _BRACKET_RE.search(text) is None:
        tokens = _STRACE_TOKEN_RE.findall(text)
        if ",".join(tokens) == text:
            return [token.strip() for token in tokens]
    return _split_args(text)


def _fast_split_syz(text: str) -> list[str]:
    if not text:
        return []
    tokens = _SYZ_TOKEN_RE.findall(text)
    if ",".join(tokens) == text:
        return [token.strip() for token in tokens]
    return _syz_split_args(text)


def _strace_arg_value(token: str) -> Any:
    if token and token[0] == '"' and "\\" not in token:
        # Truncated-string ellipsis strip without the escape decoder.
        return token[1 : token.rfind('"')]
    value = _STRACE_ARG_CACHE.get(token, _MISS)
    if value is _MISS:
        value = _parse_arg(token)
        if len(_STRACE_ARG_CACHE) < _ARG_CACHE_CAP:
            _STRACE_ARG_CACHE[token] = value
    return value


class StraceBatchParser:
    """Chunk-mode strace parsing into :class:`EventBatch` rows."""

    format = "strace"

    def __init__(self) -> None:
        self._parser = StraceParser()
        self.events_parsed = 0

    @property
    def skipped_lines(self) -> int:
        return self._parser.skipped_lines

    @property
    def malformed_lines(self) -> int:
        return self._parser.malformed_lines

    unpaired_entries = 0

    def stats(self) -> dict[str, Any]:
        return make_parse_stats(
            self.format, self.skipped_lines, self.malformed_lines, 0
        )

    def parse_chunk(self, chunk: str) -> list[Row]:
        # parse_line short-circuits interrupted-call halves *before*
        # the grammar, so their presence anywhere sends the chunk down
        # the per-line path.
        if "<unfinished ...>" not in chunk and "resumed>" not in chunk:
            matches = _STRACE_RE_M.findall(chunk)
            if len(matches) == _line_count(chunk):
                rows: list[Row] = []
                build = self._row_from_groups
                for groups in matches:
                    row = build(*groups)
                    if row is not None:
                        rows.append(row)
                self.events_parsed += len(rows)
                return rows
        rows = self._consume_lines(chunk.splitlines())
        self.events_parsed += len(rows)
        return rows

    def parse_lines(self, lines: Iterable[str]) -> list[Row]:
        rows = self._consume_lines(lines)
        self.events_parsed += len(rows)
        return rows

    def iter_file_batches(
        self, path: str, chunk_chars: int = DEFAULT_CHUNK_CHARS
    ) -> Iterator[EventBatch]:
        for chunk in _read_chunks(path, chunk_chars):
            rows = self.parse_chunk(chunk)
            if rows:
                yield EventBatch.from_rows(rows)

    def _row_from_groups(self, pid_s, ts, name, argstr, ret_s, errname) -> Row | None:
        if ret_s == "?":
            self._parser.skipped_lines += 1
            return None
        signature = SYSCALL_SIGNATURES.get(name)
        args: dict[str, Any] = {}
        if signature is None:
            for index, token in enumerate(_fast_split_strace(argstr)):
                key = _ARGN[index] if index < 16 else f"arg{index}"
                args[key] = _strace_arg_value(token)
        else:
            sig_len = len(signature)
            for index, token in enumerate(_fast_split_strace(argstr)):
                if index < sig_len:
                    key = signature[index]
                    if key in _STRACE_DROP_KEYS:
                        continue
                else:
                    key = _ARGN[index] if index < 16 else f"arg{index}"
                args[key] = _strace_arg_value(token)
        retval = _cached_int(ret_s)
        err = 0
        if retval < 0:
            err = ERRNO_BY_NAME.get(errname, -retval) if errname else -retval
            retval = -err
        pid = _cached_int(pid_s) if pid_s else 0
        return (name, args, retval, err, pid, "", 0)

    def _consume_lines(self, lines: Iterable[str]) -> list[Row]:
        rows: list[Row] = []
        parser = self._parser
        for line in lines:
            event = parser.parse_line(line)
            if event is not None:
                rows.append(
                    (
                        event.name,
                        event.args,
                        event.retval,
                        event.errno,
                        event.pid,
                        event.comm,
                        event.timestamp,
                    )
                )
        return rows


class SyzkallerBatchParser:
    """Chunk-mode syzkaller program parsing (input-only events).

    Resource bindings are order-dependent, so the chunk fast path
    replays matches strictly in line order against the same resource
    table the per-line parser would build.
    """

    format = "syzkaller"

    def __init__(self, resources=None) -> None:
        self._parser = SyzkallerParser(resources)
        self.events_parsed = 0

    @property
    def skipped_lines(self) -> int:
        return self._parser.skipped_lines

    @property
    def malformed_lines(self) -> int:
        return self._parser.malformed_lines

    unpaired_entries = 0

    def stats(self) -> dict[str, Any]:
        return make_parse_stats(
            self.format, self.skipped_lines, self.malformed_lines, 0
        )

    def parse_chunk(self, chunk: str) -> list[Row]:
        # Comments would be stripped by parse_line before matching, so
        # their presence sends the chunk down the per-line path.
        if "#" not in chunk:
            matches = _SYZ_RE_M.findall(chunk)
            if len(matches) == _line_count(chunk):
                rows: list[Row] = []
                build = self._row_from_groups
                for groups in matches:
                    rows.append(build(*groups))
                self.events_parsed += len(rows)
                return rows
        rows = self._consume_lines(chunk.splitlines())
        self.events_parsed += len(rows)
        return rows

    def parse_lines(self, lines: Iterable[str]) -> list[Row]:
        rows = self._consume_lines(lines)
        self.events_parsed += len(rows)
        return rows

    def iter_file_batches(
        self, path: str, chunk_chars: int = DEFAULT_CHUNK_CHARS
    ) -> Iterator[EventBatch]:
        for chunk in _read_chunks(path, chunk_chars):
            rows = self.parse_chunk(chunk)
            if rows:
                yield EventBatch.from_rows(rows)

    def _row_from_groups(self, res, name, argstr) -> Row:
        parser = self._parser
        resources = parser._resources
        decode = parser._decode_arg
        signature = SYSCALL_SIGNATURES.get(name)
        args: dict[str, Any] = {}
        sig_len = len(signature) if signature is not None else 0
        for index, token in enumerate(_fast_split_syz(argstr)):
            if index < sig_len:
                key = signature[index]
                if key in _SYZ_DROP_KEYS:
                    continue
            else:
                key = _ARGN[index] if index < 16 else f"arg{index}"
            value = resources.get(token, _MISS)
            if value is _MISS:
                value = decode(token)
            args[key] = value
        if res:
            resources[res] = 3 + len(resources)
        return (name, args, 0, 0, 0, "", 0)

    def _consume_lines(self, lines: Iterable[str]) -> list[Row]:
        rows: list[Row] = []
        parser = self._parser
        for line in lines:
            event = parser.parse_line(line)
            if event is not None:
                rows.append(
                    (
                        event.name,
                        event.args,
                        event.retval,
                        event.errno,
                        event.pid,
                        event.comm,
                        event.timestamp,
                    )
                )
        return rows


#: format name -> batch parser factory
BATCH_PARSERS = {
    "lttng": LttngBatchParser,
    "strace": StraceBatchParser,
    "syzkaller": SyzkallerBatchParser,
}


def make_batch_parser(fmt: str):
    """Build the batch parser for *fmt* (``lttng``/``strace``/``syzkaller``)."""
    try:
        return BATCH_PARSERS[fmt]()
    except KeyError:
        raise ValueError(f"unknown trace format: {fmt!r}") from None
