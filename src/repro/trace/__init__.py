"""Syscall tracing: event model, recorder, and trace-format codecs.

Capture paths into the IOCov analyzer:

* live: :class:`TraceRecorder` attached to a
  :class:`~repro.vfs.syscalls.SyscallInterface` (the LTTng equivalent);
* offline LTTng/babeltrace text: :class:`LttngParser`;
* offline strace text: :class:`StraceParser`;
* syzkaller program logs (input-only): :class:`SyzkallerParser`.
"""

from repro.trace.events import SyscallEvent, make_event
from repro.trace.lttng import LttngParseError, LttngParser, LttngWriter
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import ReplayDivergence, ReplayReport, TraceReplayer
from repro.trace.strace import StraceParseError, StraceParser
from repro.trace.syzkaller import SyzkallerParser

__all__ = [
    "LttngParseError",
    "LttngParser",
    "LttngWriter",
    "ReplayDivergence",
    "ReplayReport",
    "StraceParseError",
    "StraceParser",
    "SyscallEvent",
    "SyzkallerParser",
    "TraceRecorder",
    "TraceReplayer",
    "make_event",
]
