"""Syscall tracing: event model, recorder, and trace-format codecs.

Capture paths into the IOCov analyzer:

* live: :class:`TraceRecorder` attached to a
  :class:`~repro.vfs.syscalls.SyscallInterface` (the LTTng equivalent);
* offline LTTng/babeltrace text: :class:`LttngParser`;
* offline strace text: :class:`StraceParser`;
* syzkaller program logs (input-only): :class:`SyzkallerParser`;
* batch-columnar parsing of any text format: :class:`EventBatch` and
  :func:`make_batch_parser` (chunk-at-a-time, several times faster
  than the per-line readers, result-identical by construction);
* binary ``.rbt`` container: :func:`convert_file`, :class:`RbtReader`,
  :class:`RbtWriter`, :class:`RbtDecoder` — parse once, analyze at
  decode speed.
"""

from repro.trace.batch import (
    EventBatch,
    LttngBatchParser,
    StraceBatchParser,
    SyzkallerBatchParser,
    make_batch_parser,
    make_parse_stats,
)
from repro.trace.binary import (
    RbtDecoder,
    RbtError,
    RbtFormatError,
    RbtReader,
    RbtTruncatedError,
    RbtWriter,
    convert_file,
    decode_batch,
    encode_batch,
    iter_rbt_batches,
    read_rbt_events,
    read_rbt_header,
)
from repro.trace.events import SyscallEvent, make_event
from repro.trace.lttng import LttngParseError, LttngParser, LttngWriter
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import ReplayDivergence, ReplayReport, TraceReplayer
from repro.trace.strace import StraceParseError, StraceParser
from repro.trace.syzkaller import SyzkallerParser

__all__ = [
    "EventBatch",
    "LttngBatchParser",
    "LttngParseError",
    "LttngParser",
    "LttngWriter",
    "RbtDecoder",
    "RbtError",
    "RbtFormatError",
    "RbtReader",
    "RbtTruncatedError",
    "RbtWriter",
    "ReplayDivergence",
    "ReplayReport",
    "StraceBatchParser",
    "StraceParseError",
    "StraceParser",
    "SyscallEvent",
    "SyzkallerBatchParser",
    "SyzkallerParser",
    "TraceRecorder",
    "TraceReplayer",
    "convert_file",
    "decode_batch",
    "encode_batch",
    "iter_rbt_batches",
    "make_batch_parser",
    "make_event",
    "make_parse_stats",
    "read_rbt_events",
    "read_rbt_header",
]
